//! The unified provenance database facade.
//!
//! §2.3: "The architecture is designed to support multiple DBMS options,
//! including MongoDB for filtering and aggregation, LMDB for high-frequency
//! key–value inserts, and Neo4j for graph traversal queries." This facade
//! fans one insert out to all three backends and exposes a single Query API.
//!
//! The ingest hot path is write-optimized, LSM-style:
//!
//! * [`ProvenanceDatabase::insert_batch_shared`] — the streaming fast path —
//!   appends the broker's own `Arc<TaskMessage>` handles to a pending log
//!   and returns; no serialization, no index maintenance, no per-backend
//!   work. This is what a keeper thread calls with each flush batch.
//! * The first query (or any backend accessor) **materializes** the pending
//!   log into all three views in one batched pass: each message is
//!   serialized exactly once and that single `Arc<Value>` is shared by the
//!   document store, the KV store, and the graph node's properties; each
//!   backend is updated under a single lock acquisition per batch.
//! * [`ProvenanceDatabase::insert_batch`] is the eager path for callers
//!   holding plain `&TaskMessage`s: it materializes immediately (after
//!   draining any pending log, so arrival order is preserved).

use crate::cache::PlanCache;
use crate::csr::CsrGraph;
use crate::document::DocumentStore;
use crate::graph::{GraphBatch, GraphStore};
use crate::kv::KvStore;
use crate::pager::{self, ColdSegment, ColdShard, PagerCore, PagerStats};
use crate::query::{DocQuery, GroupSpec, Op};
use crate::segment::{self, SegmentMeta};
use crate::snapshot::StoreSnapshot;
use crate::wal::{self, SyncPolicy, WalWriter};
use parking_lot::Mutex;
use prov_model::{Map, ProvRelation, TaskMessage, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs of a durable store (see [`ProvenanceDatabase::open_with`]).
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// WAL sync policy (default: `PROVDB_WAL_SYNC`, else batch).
    pub sync: SyncPolicy,
    /// Arrivals the WAL may accumulate before a seal is attempted
    /// (default: `PROVDB_SEAL_ROWS`, else 32768). Sealing granularity is
    /// additionally bounded below by one `PROVDB_CHUNK` chunk per shard.
    pub seal_every: u64,
    /// Sealed runs one shard may accumulate before they are compacted
    /// into one segment (default 4).
    pub compact_fanin: usize,
    /// Replay the full sealed history into memory at open instead of
    /// attaching it as a lazily paged cold prefix (default: the
    /// `PROVDB_EAGER_OPEN` env var, truthy when set to anything but
    /// `0`/`false`; else lazy). Lazy open reads only the segment
    /// directory, the zone-map footers, and the WAL tail — open time is
    /// independent of sealed history — and answers every query
    /// byte-identically to an eager open (the out-of-core differential
    /// suite pins this).
    pub eager_open: bool,
    /// Resident-set byte budget for paged cold chunks (default:
    /// `PROVDB_RESIDENT_MB` in MiB, else 256 MiB). Ignored by eager
    /// opens, which never page.
    pub resident_bytes: Option<usize>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::from_env(),
            seal_every: std::env::var("PROVDB_SEAL_ROWS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(32_768),
            compact_fanin: 4,
            eager_open: std::env::var("PROVDB_EAGER_OPEN")
                .map(|v| {
                    let t = v.trim();
                    !t.is_empty() && t != "0" && !t.eq_ignore_ascii_case("false")
                })
                .unwrap_or(false),
            resident_bytes: None,
        }
    }
}

/// Observability snapshot of a durable store's on-disk state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableStats {
    /// Arrivals serialized to the WAL since the store was created
    /// (sealed ones included).
    pub logged: u64,
    /// Arrivals not yet covered by sealed segments (the WAL tail a
    /// recovery would replay).
    pub wal_tail: u64,
    /// Per-shard sealed row count (uniform across shards).
    pub sealed_slots: u64,
    /// Sealed segment files currently on disk.
    pub segments: usize,
    /// Sealed runs merged away by compaction so far.
    pub compactions: u64,
}

/// WAL half of the durable state: the appender plus the next arrival
/// index. One lock, taken on every materialization pass.
struct WalState {
    writer: WalWriter,
    next_seq: u64,
}

/// Segment half of the durable state: sealed coverage and the catalog.
struct SealState {
    /// Rows of every shard covered by sealed segments (current epoch).
    slots: u64,
    segments: Vec<SegmentMeta>,
    compactions: u64,
}

/// Everything [`ProvenanceDatabase::open`] attaches to make the store
/// durable. Lock order: `flusher` → `wal` → `seal` (durability locks
/// are only ever taken under the flusher lock, so seals, rotations, and
/// appends serialize with materialization).
struct Durability {
    dir: PathBuf,
    wal_path: PathBuf,
    sync: SyncPolicy,
    seal_every: u64,
    compact_fanin: usize,
    wal: Mutex<WalState>,
    seal: Mutex<SealState>,
}

/// Unified provenance database over document + KV + graph backends.
///
/// The backends are reached through [`ProvenanceDatabase::documents`],
/// [`ProvenanceDatabase::kv`], and [`ProvenanceDatabase::graph`], which
/// first materialize any pending stream ingest so readers always observe
/// every accepted message.
pub struct ProvenanceDatabase {
    documents: DocumentStore,
    kv: KvStore,
    graph: GraphStore,
    /// Accepted-but-not-yet-materialized stream messages (the write-ahead
    /// portion of the LSM-style ingest path). Held as the broker's own
    /// `Arc`s: accepting a message is one pointer append. Never held
    /// during materialization, so accepts stay non-blocking.
    pending: Mutex<Vec<Arc<TaskMessage>>>,
    /// Serializes materialization passes. Lock order: `flusher` before
    /// `pending`; accept takes only `pending`.
    flusher: Mutex<()>,
    inserts: AtomicU64,
    /// Shared plan-keyed result cache, consulted by every
    /// [`StoreSnapshot`] of this database (entries are keyed on the
    /// snapshot generation, so one cache serves all generations safely).
    plan_cache: PlanCache,
    /// Generation-keyed CSR graph memo: many snapshots of one generation
    /// share a single compaction (see [`crate::csr`]). Rebuilt lazily on
    /// first graph read after the generation moves.
    csr: Mutex<Option<(u64, Arc<CsrGraph>)>>,
    /// WAL + sealed-segment state when the store was opened durably
    /// ([`ProvenanceDatabase::open`]); `None` for in-memory stores, which
    /// pay nothing for the feature.
    durability: Option<Durability>,
    /// Set by a lazy open: the KV and graph backends do not yet hold the
    /// sealed prefix. The first KV/graph read hydrates them in one pass
    /// (see [`hydrate_backends`](Self::hydrate_backends)); until then,
    /// materialization skips their fan-out — hydration replays every
    /// document in arrival order, so rows ingested while cold are covered
    /// by that same pass.
    backends_cold: AtomicBool,
}

impl ProvenanceDatabase {
    /// Fresh empty database with hash indexes on the hot equality fields
    /// and a sorted numeric index on `started_at` for time-range queries.
    /// The document store's shard and scan-thread counts auto-tune to the
    /// core count (`PROVDB_SHARDS` / `PROVDB_THREADS` override them).
    pub fn new() -> Self {
        Self::with_store(DocumentStore::new())
    }

    /// [`new`] with an explicit document-store shard count (query results
    /// are shard-count invariant; the count only tunes concurrency).
    /// Benchmarks and tests use this to exercise multi-shard paths —
    /// notably the shard-parallel scans — on single-core machines.
    ///
    /// [`new`]: ProvenanceDatabase::new
    pub fn with_shards(nshards: usize) -> Self {
        Self::with_store(DocumentStore::with_shards(nshards))
    }

    fn with_store(documents: DocumentStore) -> Self {
        documents.create_index("task_id");
        documents.create_index("activity_id");
        documents.create_index("workflow_id");
        documents.create_range_index("started_at");
        documents.enable_columnar();
        Self {
            documents,
            kv: KvStore::new(),
            graph: GraphStore::new(),
            pending: Mutex::new(Vec::new()),
            flusher: Mutex::new(()),
            inserts: AtomicU64::new(0),
            plan_cache: PlanCache::default(),
            csr: Mutex::new(None),
            durability: None,
            backends_cold: AtomicBool::new(false),
        }
    }

    /// Open (or create) a **durable** store rooted at `dir`, with the
    /// default [`DurabilityOptions`] (env-resolved sync policy and seal
    /// threshold).
    ///
    /// Recovery is replay: the sealed segments under `dir` provide the
    /// bulk of the arrival sequence, the WAL tail provides the rest, and
    /// the longest contiguous arrival prefix is re-materialized through
    /// the exact ingest path a live store uses — so a crashed-and-
    /// recovered store answers every query byte-identically to one that
    /// never crashed (the recovery differential suite pins this).
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Arc<Self>> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`open`](Self::open) with explicit options.
    pub fn open_with(dir: impl AsRef<Path>, opts: DurabilityOptions) -> std::io::Result<Arc<Self>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal_path = dir.join("wal.log");

        let segs = segment::scan_dir(&dir)?;
        let records = wal::read_records(&wal_path)?;
        let mut db = Self::with_store(DocumentStore::new());
        let n = db.documents.shard_count() as u64;
        let chunk = crate::columnar::chunk_rows() as u64;

        // Sealed coverage of the *current* epoch: contiguous-from-zero
        // runs matching this store's shard count and chunk size; the
        // uniform sealed-slot mark is their minimum over shards.
        // Segments from other epochs stay in the catalog (they still
        // serve recovery and pruning) but don't advance the mark.
        let slots = (0..n)
            .map(|s| {
                let mut runs: Vec<&SegmentMeta> = segs
                    .iter()
                    .filter(|m| {
                        m.nshards as u64 == n && m.shard as u64 == s && m.chunk as u64 == chunk
                    })
                    .collect();
                runs.sort_by_key(|m| m.start);
                let mut covered = 0u64;
                for m in runs {
                    if m.start == covered {
                        covered = m.end;
                    } else {
                        break;
                    }
                }
                covered
            })
            .min()
            .unwrap_or(0);

        // Lazy by default: attach the sealed coverage as a paged cold
        // prefix instead of replaying it, so open cost is the segment
        // directory + footers + WAL tail, not the sealed history. Any
        // footer that fails to load falls back to the eager replay below
        // (which reads whole documents and so tolerates more damage).
        let cold = if slots > 0 && !opts.eager_open {
            Self::build_cold(&segs, n, chunk, slots, opts.resident_bytes)
        } else {
            None
        };

        let next = if let Some((core, shards, masks)) = cold {
            // Only arrivals past the cold coverage are materialized: the
            // tail of epoch segments sealed beyond the uniform mark, any
            // other-epoch segments reaching past it, and the WAL tail —
            // deduped by arrival index exactly like the eager path.
            let base = slots * n;
            let mut by_seq: std::collections::BTreeMap<u64, Value> =
                std::collections::BTreeMap::new();
            for seg in &segs {
                let max_seq = (seg.end.saturating_sub(1)) * seg.nshards as u64 + seg.shard as u64;
                if seg.n_docs == 0 || max_seq < base {
                    continue;
                }
                for (i, doc) in segment::read_docs(seg)?.into_iter().enumerate() {
                    let seq = (seg.start + i as u64) * seg.nshards as u64 + seg.shard as u64;
                    if seq >= base {
                        by_seq.entry(seq).or_insert(doc);
                    }
                }
            }
            for r in &records {
                if r.seq < base {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = by_seq.entry(r.seq) {
                    if let Some(doc) = r.decode() {
                        e.insert(doc);
                    }
                }
            }
            let mut assembled = Vec::with_capacity(by_seq.len());
            let mut next = base;
            while let Some(doc) = by_seq.remove(&next) {
                assembled.push(doc);
                next += 1;
            }

            // Normalize the WAL before appending to it: a torn tail
            // record must not be left in front of fresh appends.
            wal::rewrite(&wal_path, &records)?;

            // Attach order matters: the cold prefix must be in place
            // before the tail materializes (ids continue from it), the
            // recovered pushdown masks before any query plans against
            // the columns, and `backends_cold` before `materialize_docs`
            // so the tail skips the KV/graph fan-out it would otherwise
            // double-apply when hydration later replays ids from zero.
            db.backends_cold.store(true, Ordering::Release);
            db.documents.apply_columnar_report(masks);
            db.documents.attach_cold(core, shards);
            db.materialize_docs(assembled);
            next
        } else {
            // Eager replay: assemble the whole arrival sequence — sealed
            // segments first (each names the arrival indexes it covers —
            // shard-count changes across restarts are handled because
            // the mapping is stored per segment), then the WAL's valid
            // prefix; duplicates (a crash between segment rename and WAL
            // rotation) dedupe by arrival index.
            let mut by_seq: std::collections::BTreeMap<u64, Value> =
                std::collections::BTreeMap::new();
            for seg in &segs {
                for (i, doc) in segment::read_docs(seg)?.into_iter().enumerate() {
                    let slot = seg.start + i as u64;
                    by_seq
                        .entry(slot * seg.nshards as u64 + seg.shard as u64)
                        .or_insert(doc);
                }
            }
            for r in &records {
                if let std::collections::btree_map::Entry::Vacant(e) = by_seq.entry(r.seq) {
                    if let Some(doc) = r.decode() {
                        e.insert(doc);
                    }
                }
            }
            let mut assembled = Vec::with_capacity(by_seq.len());
            let mut next = 0u64;
            while let Some(doc) = by_seq.remove(&next) {
                assembled.push(doc);
                next += 1;
            }

            // Normalize the WAL before appending to it: a torn tail
            // record must not be left in front of fresh appends (replay
            // would stop at the tear and lose them).
            wal::rewrite(&wal_path, &records)?;

            // Replay through the live ingest path. Round-robin routing
            // from a zero router makes arrival `k` land on shard
            // `k % n`, slot `k / n` — the same ids as the original run,
            // so query output (which orders by id) is reproduced
            // exactly.
            db.materialize_docs(assembled);
            next
        };
        db.inserts.store(next, Ordering::Relaxed);

        let writer = WalWriter::open(&wal_path, opts.sync)?;
        db.durability = Some(Durability {
            dir,
            wal_path,
            sync: opts.sync,
            seal_every: opts.seal_every,
            compact_fanin: opts.compact_fanin.max(2),
            wal: Mutex::new(WalState {
                writer,
                next_seq: next,
            }),
            seal: Mutex::new(SealState {
                slots,
                segments: segs,
                compactions: 0,
            }),
        });
        Ok(Arc::new(db))
    }

    /// Build the per-shard cold prefixes for a lazy open: for each shard,
    /// the contiguous-from-zero chain of current-epoch segments covering
    /// `slots` rows, each opened (the held fd keeps paged reads safe even
    /// if compaction later unlinks the file) with its zone-map footer
    /// decoded. Returns `None` — eager fallback — if any file or footer
    /// fails to load (e.g. a pre-mask-format footer). Also accumulates
    /// the OR of the footers' pushdown masks, which equals the live
    /// store's masks over those rows: every sealed document's mask bits
    /// were stamped into some footer at its seal, and seal-time masks
    /// only ever contain bits contributed by documents still in the
    /// append-only store.
    #[allow(clippy::type_complexity)]
    fn build_cold(
        segs: &[SegmentMeta],
        n: u64,
        chunk: u64,
        slots: u64,
        budget: Option<usize>,
    ) -> Option<(Arc<PagerCore>, Vec<ColdShard>, crate::columnar::PushReport)> {
        let budget = budget
            .or_else(pager::env_resident_bytes)
            .unwrap_or(pager::DEFAULT_RESIDENT_BYTES);
        let core = Arc::new(PagerCore::new(budget));
        let mut masks = crate::columnar::PushReport::default();
        let mut shards = Vec::with_capacity(n as usize);
        for s in 0..n {
            let mut metas: Vec<&SegmentMeta> = segs
                .iter()
                .filter(|m| {
                    m.nshards as u64 == n
                        && m.shard as u64 == s
                        && m.chunk as u64 == chunk
                        && m.start < slots
                })
                .collect();
            metas.sort_by_key(|m| m.start);
            let mut covered = 0u64;
            let mut cold_segs = Vec::with_capacity(metas.len());
            for m in metas {
                if covered >= slots {
                    break;
                }
                if m.start != covered {
                    return None;
                }
                covered = m.end;
                let file = std::fs::File::open(&m.path).ok()?;
                let zones = segment::read_footer(m).ok()?;
                masks.irregular |= zones.irregular;
                masks.poison |= zones.poison;
                cold_segs.push(ColdSegment::new((*m).clone(), file, zones));
            }
            if covered < slots {
                return None;
            }
            shards.push(ColdShard::new(
                slots as usize,
                chunk as usize,
                cold_segs,
                Arc::clone(&core),
                s as usize,
            ));
        }
        Some((core, shards, masks))
    }

    /// One-shot KV/graph hydration after a lazy open: replay every
    /// document in arrival order through the same fan-out as
    /// [`materialize`](Self::materialize), in bounded batches. Runs under
    /// the flusher lock, so it serializes with ingest; documents
    /// materialized while the backends were cold were skipped there and
    /// are covered here (id order *is* arrival order). Document-only
    /// workloads never pay this — it triggers on the first KV or graph
    /// read.
    fn hydrate_backends(&self) {
        if !self.backends_cold.load(Ordering::Acquire) {
            return;
        }
        let _flush = self.flusher.lock();
        if !self.backends_cold.load(Ordering::Acquire) {
            return;
        }
        let empty_props = Arc::new(Value::object(Map::new()));
        let mut kv_rows: Vec<(String, Arc<Value>)> = Vec::new();
        let mut graph = GraphBatch::new();
        self.documents.for_each_doc_in_id_order(|doc| {
            if let Some(msg) = TaskMessage::from_value(doc) {
                kv_rows.push((format!("task/{}", msg.task_id.as_str()), doc.clone()));
                graph.upsert_node_shared(msg.task_id.as_str(), "prov:Activity", doc.clone());
                for dep in &msg.depends_on {
                    graph.add_edge(
                        msg.task_id.as_str(),
                        dep.as_str(),
                        ProvRelation::WasInformedBy.as_str(),
                    );
                }
                if let Some(agent) = &msg.agent_id {
                    graph.upsert_node_shared(agent.as_str(), "prov:Agent", empty_props.clone());
                    graph.add_edge(
                        msg.task_id.as_str(),
                        agent.as_str(),
                        ProvRelation::WasAssociatedWith.as_str(),
                    );
                }
            }
            if kv_rows.len() >= 8192 {
                self.kv.put_batch(std::mem::take(&mut kv_rows));
                self.graph
                    .apply_batch(std::mem::replace(&mut graph, GraphBatch::new()));
            }
        });
        self.kv.put_batch(kv_rows);
        self.graph.apply_batch(graph);
        self.backends_cold.store(false, Ordering::Release);
    }

    /// Chunk-pager counters: cache hits, chunks paged in and evicted,
    /// chunks skipped by zone pruning before any I/O, and the current
    /// resident set. All zero for in-memory stores and eager opens, which
    /// never page.
    pub fn pager_stats(&self) -> PagerStats {
        self.documents.pager_stats()
    }

    /// Shared handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The document backend, with pending ingest materialized.
    pub fn documents(&self) -> &DocumentStore {
        self.flush_views();
        &self.documents
    }

    /// The document backend *without* flushing pending ingest — for
    /// metadata-only probes (e.g. pushdown capability checks during query
    /// planning) that must not pay a materialization.
    pub(crate) fn documents_unflushed(&self) -> &DocumentStore {
        &self.documents
    }

    /// The KV backend, with pending ingest materialized (and, after a
    /// lazy open, the sealed prefix hydrated).
    pub fn kv(&self) -> &KvStore {
        self.hydrate_backends();
        self.flush_views();
        &self.kv
    }

    /// The KV backend without flushing — for snapshot reads, whose
    /// creation already materialized everything they may observe.
    pub(crate) fn kv_unflushed(&self) -> &KvStore {
        self.hydrate_backends();
        &self.kv
    }

    /// The graph backend, with pending ingest materialized (and, after a
    /// lazy open, the sealed prefix hydrated).
    pub fn graph(&self) -> &GraphStore {
        self.hydrate_backends();
        self.flush_views();
        &self.graph
    }

    /// The graph backend without flushing — see [`kv_unflushed`].
    ///
    /// [`kv_unflushed`]: ProvenanceDatabase::kv_unflushed
    pub(crate) fn graph_unflushed(&self) -> &GraphStore {
        self.hydrate_backends();
        &self.graph
    }

    /// The shared plan-keyed result cache (see [`crate::cache`]).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// CSR graph compaction covering **at least** generation `generation`
    /// (the graph backend has no per-row high-water mark, so like every
    /// graph read through a snapshot this is a superset view; each
    /// [`StoreSnapshot`] pins the first build it observes, making its own
    /// reads repeatable). Memoized: concurrent snapshots of one generation
    /// share a single compaction pass.
    pub(crate) fn csr_for(&self, generation: u64) -> Arc<CsrGraph> {
        // Hydrate *before* consulting the memo: a build over cold (still
        // empty) backends must never be memoized.
        self.hydrate_backends();
        {
            let memo = self.csr.lock();
            if let Some((g, csr)) = memo.as_ref() {
                if generation <= *g {
                    return Arc::clone(csr);
                }
            }
        }
        // The coverage floor must be read *before* flushing: a message
        // counted by `generation()` here is already in the pending log
        // (the count bumps under the pending lock, after the append), so
        // the flush below materializes it and the build covers it.
        let floor = self.generation().max(generation);
        self.flush_views();
        let mut memo = self.csr.lock();
        if let Some((g, csr)) = memo.as_ref() {
            if floor <= *g {
                return Arc::clone(csr);
            }
        }
        let built = Arc::new(CsrGraph::build(&self.graph));
        *memo = Some((floor, Arc::clone(&built)));
        built
    }

    /// Pin the store's current contents as an immutable read view.
    ///
    /// Cheap by construction: one materialization pass for whatever is
    /// pending (usually empty under a steady query load), then one
    /// refcount bump plus a per-shard row high-water mark — no data is
    /// copied. Reads through the returned [`StoreSnapshot`] never flush
    /// and never wait on ingest again: the shards are append-only, so
    /// rows below the high-water mark are immutable, and columnar state
    /// that *can* move later (dictionary growth, poison flags, zone
    /// widening) only ever moves monotonically — the bounded kernels
    /// re-check servability at execution time and fall back to the
    /// snapshot's own oracle frame, never to newer data.
    ///
    /// The generation is captured under the pending-log lock — the same
    /// lock [`insert_batch_shared`] bumps the counter under — and the
    /// whole capture runs under the flusher lock, so the high-water mark
    /// covers exactly the first `generation` accepted messages. (Callers
    /// that bypass the facade and insert into [`documents`] directly are
    /// outside this accounting, as they already are for [`generation`].)
    ///
    /// [`insert_batch_shared`]: ProvenanceDatabase::insert_batch_shared
    /// [`documents`]: ProvenanceDatabase::documents
    /// [`generation`]: ProvenanceDatabase::generation
    pub fn snapshot(self: &Arc<Self>) -> Arc<StoreSnapshot> {
        let _flush = self.flusher.lock();
        let (generation, batch) = {
            let mut pending = self.pending.lock();
            (
                self.inserts.load(Ordering::Relaxed),
                std::mem::take(&mut *pending),
            )
        };
        if !batch.is_empty() {
            self.materialize(batch.iter().map(|m| m.as_ref()));
        }
        let hwm = self.documents.shard_rows();
        Arc::new(StoreSnapshot::new(Arc::clone(self), generation, hwm))
    }

    /// Streaming ingest fast path: accept already-shared messages (the
    /// broker's deliveries) by appending their handles to the pending log.
    /// Costs one `Arc` clone per message; all view maintenance is deferred
    /// to the next query and then done batched.
    pub fn insert_batch_shared(&self, msgs: impl IntoIterator<Item = Arc<TaskMessage>>) -> usize {
        let mut pending = self.pending.lock();
        let before = pending.len();
        pending.extend(msgs);
        let n = pending.len() - before;
        self.inserts.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Materialize every pending stream message into the three views.
    /// Queries and backend accessors call this automatically; it is public
    /// so ingest-heavy callers can choose their own flush points.
    ///
    /// Two-phase: the pending log is swapped out under its own short-lived
    /// lock (so concurrent accepts never wait on materialization), while a
    /// separate flusher lock serializes materialization passes — a reader
    /// that raced an in-progress flush blocks here until that flush's
    /// messages are fully visible, preserving read-your-accepts.
    pub fn flush_views(&self) {
        let _flush = self.flusher.lock();
        let batch = std::mem::take(&mut *self.pending.lock());
        if batch.is_empty() {
            return;
        }
        self.materialize(batch.iter().map(|m| m.as_ref()));
    }

    /// Insert one task message into all three backends (eager path).
    pub fn insert(&self, msg: &TaskMessage) {
        self.insert_batch(std::iter::once(msg));
    }

    /// Eager bulk insert for callers holding owned messages: one
    /// serialization per message, one batch per backend. Drains the pending
    /// log first so view order matches arrival order.
    ///
    /// The flusher lock is held across the drain *and* this batch's own
    /// materialization + count bump, so a concurrent [`snapshot`] can
    /// never observe the rows of a half-accounted eager batch (its
    /// high-water mark and generation are captured under the same lock).
    ///
    /// [`snapshot`]: ProvenanceDatabase::snapshot
    pub fn insert_batch<'a>(&self, msgs: impl IntoIterator<Item = &'a TaskMessage>) -> usize {
        let _flush = self.flusher.lock();
        let batch = std::mem::take(&mut *self.pending.lock());
        if !batch.is_empty() {
            self.materialize(batch.iter().map(|m| m.as_ref()));
        }
        let n = self.materialize(msgs);
        self.inserts.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Build one batch per backend and apply each under a single lock
    /// acquisition. Returns how many messages were materialized.
    fn materialize<'a>(&self, msgs: impl IntoIterator<Item = &'a TaskMessage>) -> usize {
        let mut docs: Vec<Arc<Value>> = Vec::new();
        let mut kv_rows: Vec<(String, Arc<Value>)> = Vec::new();
        let mut graph = GraphBatch::new();
        // While the KV/graph backends are cold (lazy open, not yet read),
        // skip their fan-out: hydration replays every document — these
        // included — in arrival order before the first KV/graph read.
        let cold = self.backends_cold.load(Ordering::Acquire);
        // Agent nodes carry no properties of their own; share one object.
        let empty_props = Arc::new(Value::object(Map::new()));
        for msg in msgs {
            // One serialization, shared by the document, KV, and graph
            // backends: the activity node's properties *are* the document
            // (a superset of the {activity_id, hostname, status} projection
            // the per-message path used to copy out), so property-graph
            // ingest costs no map construction at all.
            let doc = Arc::new(msg.to_value());
            if !cold {
                kv_rows.push((format!("task/{}", msg.task_id.as_str()), doc.clone()));
                graph.upsert_node_shared(msg.task_id.as_str(), "prov:Activity", doc.clone());
                for dep in &msg.depends_on {
                    graph.add_edge(
                        msg.task_id.as_str(),
                        dep.as_str(),
                        ProvRelation::WasInformedBy.as_str(),
                    );
                }
                if let Some(agent) = &msg.agent_id {
                    graph.upsert_node_shared(agent.as_str(), "prov:Agent", empty_props.clone());
                    graph.add_edge(
                        msg.task_id.as_str(),
                        agent.as_str(),
                        ProvRelation::WasAssociatedWith.as_str(),
                    );
                }
            }
            docs.push(doc);
        }
        let n = docs.len();
        if n == 0 {
            return 0;
        }
        // Durable stores serialize the drained batch into the WAL before
        // any view observes it; the arrival index is assigned here, under
        // the flusher lock every materialization holds. A WAL that cannot
        // take the batch must not pretend it did — all whole-store state
        // is already unrecoverable at that point, so fail loudly.
        if let Some(d) = &self.durability {
            let mut wal_state = d.wal.lock();
            let base = wal_state.next_seq;
            wal_state
                .writer
                .append(base, &docs)
                .expect("provdb: WAL append failed");
            wal_state.next_seq += n as u64;
        }
        self.documents.insert_many_shared(docs);
        if !cold {
            self.kv.put_batch(kv_rows);
            self.graph.apply_batch(graph);
        }
        if self.durability.is_some() {
            // Best-effort: a failed seal leaves everything in the WAL,
            // which is bigger but just as durable.
            let _ = self.seal_locked(false);
        }
        n
    }

    /// Replay path of [`open_with`](Self::open_with): materialize
    /// already-serialized documents through the same fan-out as
    /// [`materialize`](Self::materialize) — same KV keys, same graph
    /// nodes and edges, same shard routing — but without re-serializing
    /// or re-logging anything. Must mirror `materialize` exactly; the
    /// recovery differential suite holds the two to byte-identical query
    /// answers.
    fn materialize_docs(&self, raw: Vec<Value>) {
        let mut docs: Vec<Arc<Value>> = Vec::with_capacity(raw.len());
        let mut kv_rows: Vec<(String, Arc<Value>)> = Vec::new();
        let mut graph = GraphBatch::new();
        // Lazy open defers the KV/graph fan-out of the whole replay to
        // the first KV/graph read (see `hydrate_backends`).
        let cold = self.backends_cold.load(Ordering::Acquire);
        let empty_props = Arc::new(Value::object(Map::new()));
        for v in raw {
            let doc = Arc::new(v);
            // Documents written by `materialize` always decode (they are
            // `to_value` output); the guard only protects against a
            // hand-corrupted directory.
            if !cold {
                if let Some(msg) = TaskMessage::from_value(&doc) {
                    kv_rows.push((format!("task/{}", msg.task_id.as_str()), doc.clone()));
                    graph.upsert_node_shared(msg.task_id.as_str(), "prov:Activity", doc.clone());
                    for dep in &msg.depends_on {
                        graph.add_edge(
                            msg.task_id.as_str(),
                            dep.as_str(),
                            ProvRelation::WasInformedBy.as_str(),
                        );
                    }
                    if let Some(agent) = &msg.agent_id {
                        graph.upsert_node_shared(agent.as_str(), "prov:Agent", empty_props.clone());
                        graph.add_edge(
                            msg.task_id.as_str(),
                            agent.as_str(),
                            ProvRelation::WasAssociatedWith.as_str(),
                        );
                    }
                }
            }
            docs.push(doc);
        }
        if docs.is_empty() {
            return;
        }
        self.documents.insert_many_shared(docs);
        if !cold {
            self.kv.put_batch(kv_rows);
            self.graph.apply_batch(graph);
        }
    }

    /// Seal everything sealable now: drain pending ingest, then write
    /// per-shard segments for every complete chunk of materialized rows
    /// and rotate the sealed records out of the WAL. Returns the sealed
    /// per-shard row count. No-op (`Ok(0)`) on in-memory stores.
    pub fn seal_now(&self) -> std::io::Result<u64> {
        let _flush = self.flusher.lock();
        let batch = std::mem::take(&mut *self.pending.lock());
        if !batch.is_empty() {
            self.materialize(batch.iter().map(|m| m.as_ref()));
        }
        self.seal_locked(true)
    }

    /// Seal sealed-but-uncovered rows into per-shard segments. Caller
    /// holds the flusher lock (directly or via `materialize`). With
    /// `force`, seals whenever at least one whole chunk per shard is
    /// uncovered; otherwise only once `seal_every` arrivals accumulated.
    fn seal_locked(&self, force: bool) -> std::io::Result<u64> {
        let Some(d) = &self.durability else {
            return Ok(0);
        };
        let nshards = self.documents.shard_count() as u64;
        let chunk = crate::columnar::chunk_rows() as u64;
        let next_seq = d.wal.lock().next_seq;
        let slots = d.seal.lock().slots;
        if !force && next_seq.saturating_sub(slots * nshards) < d.seal_every {
            return Ok(slots);
        }
        // Seal uniformly: every shard advances to the same chunk-aligned
        // row count, so the covered arrivals are exactly `0..m * n`.
        let m_new = ((next_seq / nshards) / chunk) * chunk;
        if m_new <= slots {
            return Ok(slots);
        }
        let mut new_metas = Vec::with_capacity(nshards as usize);
        for s in 0..nshards {
            let (docs, zones) = self
                .documents
                .seal_export(s as usize, slots as usize, m_new as usize)
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "provdb: columnar sidecar out of sync with documents",
                    )
                })?;
            new_metas.push(segment::write_segment(
                &d.dir,
                nshards as u32,
                s as u32,
                slots,
                chunk as u32,
                &docs,
                &zones,
            )?);
        }
        // Rotate: the WAL keeps only arrivals past the sealed coverage.
        // Segments are synced and renamed first, so a crash anywhere in
        // here loses nothing — at worst the WAL still holds (and replay
        // dedupes) records the segments already cover.
        {
            let mut wal_state = d.wal.lock();
            let cutoff = m_new * nshards;
            let tail: Vec<wal::RawRecord> = wal::read_records(&d.wal_path)?
                .into_iter()
                .filter(|r| r.seq >= cutoff)
                .collect();
            wal::rewrite(&d.wal_path, &tail)?;
            let written = wal_state.writer.written();
            let mut writer = WalWriter::open(&d.wal_path, d.sync)?;
            writer.set_written(written);
            wal_state.writer = writer;
        }
        let mut seal = d.seal.lock();
        seal.slots = m_new;
        seal.segments.extend(new_metas);
        Self::compact_catalog(d, &mut seal, d.compact_fanin)?;
        Ok(m_new)
    }

    /// Compact sealed runs: merge every maximal contiguous same-shard
    /// chain of at least `fanin` segments into one. Runs off the accept
    /// path (seal time or explicit call), never under shard locks.
    fn compact_catalog(d: &Durability, seal: &mut SealState, fanin: usize) -> std::io::Result<()> {
        let mut groups: std::collections::BTreeMap<(u32, u32), Vec<SegmentMeta>> =
            std::collections::BTreeMap::new();
        for m in seal.segments.drain(..) {
            groups.entry((m.nshards, m.shard)).or_default().push(m);
        }
        let mut rebuilt = Vec::new();
        for (_, mut metas) in groups {
            metas.sort_by_key(|m| m.start);
            let mut i = 0;
            while i < metas.len() {
                // Maximal contiguous chain starting at i (equal chunk
                // sizes — compaction rebuilds zones at that granularity).
                let mut j = i + 1;
                while j < metas.len()
                    && metas[j].start == metas[j - 1].end
                    && metas[j].chunk == metas[i].chunk
                {
                    j += 1;
                }
                if j - i >= fanin {
                    let merged = segment::compact_runs(&d.dir, &metas[i..j])?;
                    seal.compactions += (j - i) as u64;
                    rebuilt.push(merged);
                } else {
                    rebuilt.extend(metas[i..j].iter().cloned());
                }
                i = j;
            }
        }
        seal.segments = rebuilt;
        Ok(())
    }

    /// Merge every contiguous run of two or more sealed segments per
    /// shard right now. Returns how many segment files remain. No-op on
    /// in-memory stores.
    pub fn compact_segments(&self) -> std::io::Result<usize> {
        let _flush = self.flusher.lock();
        let Some(d) = &self.durability else {
            return Ok(0);
        };
        let mut seal = d.seal.lock();
        Self::compact_catalog(d, &mut seal, 2)?;
        Ok(seal.segments.len())
    }

    /// On-disk durability counters; `None` for in-memory stores.
    pub fn durable_stats(&self) -> Option<DurableStats> {
        let d = self.durability.as_ref()?;
        let logged = d.wal.lock().next_seq;
        let seal = d.seal.lock();
        Some(DurableStats {
            logged,
            wal_tail: logged.saturating_sub(seal.slots * self.documents.shard_count() as u64),
            sealed_slots: seal.slots,
            segments: seal.segments.len(),
            compactions: seal.compactions,
        })
    }

    /// Consult only the serialized segment footers: how many sealed
    /// segments provably contain no document matching
    /// `field op lit` (frame comparison semantics)? Returns
    /// `(pruned, total)`; `None` for in-memory stores. This is the
    /// on-disk scan contract: a pruned segment never needs its
    /// documents read.
    pub fn sealed_prune_report(
        &self,
        field: &str,
        op: dataframe::CmpOp,
        lit: &Value,
    ) -> Option<(usize, usize)> {
        let d = self.durability.as_ref()?;
        let seal = d.seal.lock();
        let total = seal.segments.len();
        let mut pruned = 0;
        for meta in &seal.segments {
            if let Ok(footer) = segment::read_footer(meta) {
                if segment::segment_prunes(meta, &footer, field, op, lit) {
                    pruned += 1;
                }
            }
        }
        Some((pruned, total))
    }

    /// Total messages accepted (materialized or still pending).
    pub fn insert_count(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Store generation: bumps on every accepted insert. Callers caching
    /// anything derived from the store's contents (e.g. a fully
    /// materialized query frame) key the cache on this and rebuild only
    /// when it moves. Currently an alias of [`insert_count`]; a future
    /// delete/compact path must keep bumping the generation even where it
    /// leaves the insert count alone.
    ///
    /// [`insert_count`]: ProvenanceDatabase::insert_count
    pub fn generation(&self) -> u64 {
        self.insert_count()
    }

    /// Point lookup by task id (KV fast path).
    pub fn get_task(&self, task_id: &str) -> Option<TaskMessage> {
        self.kv()
            .get(&format!("task/{task_id}"))
            .and_then(|v| TaskMessage::from_value(&v))
    }

    /// Filter/sort/limit query against the document backend. Results are
    /// shared handles into the store — no deep clones.
    pub fn find(&self, query: &DocQuery) -> Vec<Arc<Value>> {
        self.documents().find(query)
    }

    /// Count matching documents.
    pub fn count(&self, query: &DocQuery) -> usize {
        self.documents().count(query)
    }

    /// Group-and-aggregate against the document backend.
    pub fn aggregate(&self, query: &DocQuery, group: &GroupSpec) -> Vec<Value> {
        self.documents().aggregate(query, group)
    }

    /// All tasks of one workflow execution.
    pub fn workflow_tasks(&self, workflow_id: &str) -> Vec<Arc<Value>> {
        self.find(&DocQuery::new().filter("workflow_id", Op::Eq, workflow_id))
    }

    /// Multi-hop upstream lineage (graph fast path).
    pub fn lineage(&self, task_id: &str, max_depth: usize) -> Vec<(String, usize)> {
        self.graph().upstream_lineage(task_id, max_depth)
    }
}

impl Default for ProvenanceDatabase {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::TaskMessageBuilder;

    fn msgs() -> Vec<TaskMessage> {
        vec![
            TaskMessageBuilder::new("t0", "wf-1", "generate_conformer")
                .generates("energy", -154.9)
                .span(10.0, 11.0)
                .build(),
            TaskMessageBuilder::new("t1", "wf-1", "run_dft")
                .depends_on("t0")
                .generates("energy", -155.2)
                .span(11.0, 19.0)
                .build(),
            TaskMessageBuilder::new("t2", "wf-1", "postprocess")
                .depends_on("t1")
                .generates("bd_energy", 98.6)
                .span(19.0, 19.5)
                .agent("prov-agent")
                .build(),
        ]
    }

    #[test]
    fn insert_fans_out_to_all_backends() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        assert_eq!(db.insert_count(), 3);
        assert_eq!(db.documents().len(), 3);
        assert_eq!(db.kv().len(), 3);
        assert!(db.graph().node_count() >= 3);
    }

    #[test]
    fn point_lookup_roundtrips() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        let t1 = db.get_task("t1").unwrap();
        assert_eq!(t1.activity_id.as_str(), "run_dft");
        assert!(db.get_task("nope").is_none());
    }

    #[test]
    fn document_queries_work() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        let out = db.find(
            &DocQuery::new()
                .filter("activity_id", Op::Eq, "run_dft")
                .project(&["task_id"]),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(db.workflow_tasks("wf-1").len(), 3);
        assert_eq!(
            db.count(&DocQuery::new().filter("started_at", Op::Gte, 11.0)),
            2
        );
    }

    #[test]
    fn streaming_accept_is_visible_at_next_query() {
        let db = ProvenanceDatabase::new();
        let shared: Vec<Arc<TaskMessage>> = msgs().into_iter().map(Arc::new).collect();
        assert_eq!(db.insert_batch_shared(shared.iter().cloned()), 3);
        // Accepted immediately…
        assert_eq!(db.insert_count(), 3);
        // …and every read path materializes the views first.
        assert_eq!(db.count(&DocQuery::new()), 3);
        assert_eq!(db.documents().len(), 3);
        assert_eq!(db.kv().len(), 3);
        assert!(db.graph().node_count() >= 3);
        assert_eq!(db.get_task("t1").unwrap().activity_id.as_str(), "run_dft");
        // Mixed eager + streaming ingest preserves arrival order.
        db.insert(&TaskMessageBuilder::new("t3", "wf-1", "tail").build());
        db.insert_batch_shared(std::iter::once(Arc::new(
            TaskMessageBuilder::new("t4", "wf-1", "tail2").build(),
        )));
        let out = db.find(&DocQuery::new().project(&["task_id"]));
        let ids: Vec<&str> = out
            .iter()
            .filter_map(|d| d.get("task_id").and_then(Value::as_str))
            .collect();
        assert_eq!(ids, vec!["t0", "t1", "t2", "t3", "t4"]);
    }

    #[test]
    fn document_and_kv_share_one_allocation() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        let from_docs = db.find(&DocQuery::new().filter("task_id", Op::Eq, "t1"));
        let from_kv = db.kv().get("task/t1").unwrap();
        assert!(Arc::ptr_eq(&from_docs[0], &from_kv));
    }

    #[test]
    fn lineage_traverses_graph() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        let up = db.lineage("t2", 10);
        let ids: Vec<&str> = up.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["t1", "t0"]);
    }

    #[test]
    fn agent_association_recorded() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        assert!(db.graph().node("prov-agent").is_some());
        assert_eq!(
            db.graph().neighbors_out("t2", "prov:wasAssociatedWith"),
            vec!["prov-agent".to_string()]
        );
    }
}
