//! The unified provenance database facade.
//!
//! §2.3: "The architecture is designed to support multiple DBMS options,
//! including MongoDB for filtering and aggregation, LMDB for high-frequency
//! key–value inserts, and Neo4j for graph traversal queries." This facade
//! fans one insert out to all three backends and exposes a single Query API.

use crate::document::DocumentStore;
use crate::graph::GraphStore;
use crate::kv::KvStore;
use crate::query::{DocQuery, GroupSpec, Op};
use prov_model::{Map, ProvRelation, TaskMessage, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Unified provenance database over document + KV + graph backends.
pub struct ProvenanceDatabase {
    /// Document collection of raw task messages.
    pub documents: DocumentStore,
    /// KV store keyed `task/<task_id>` (plus `workflow/<id>` rollups).
    pub kv: KvStore,
    /// PROV property graph.
    pub graph: GraphStore,
    inserts: AtomicU64,
}

impl ProvenanceDatabase {
    /// Fresh empty database with indexes on the hot common fields.
    pub fn new() -> Self {
        let documents = DocumentStore::new();
        documents.create_index("task_id");
        documents.create_index("activity_id");
        documents.create_index("workflow_id");
        Self {
            documents,
            kv: KvStore::new(),
            graph: GraphStore::new(),
            inserts: AtomicU64::new(0),
        }
    }

    /// Shared handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Insert one task message into all three backends.
    pub fn insert(&self, msg: &TaskMessage) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let doc = msg.to_value();
        self.documents.insert(doc.clone());
        self.kv.put(format!("task/{}", msg.task_id.as_str()), doc);

        // Graph: task activity node + lineage/association edges.
        let mut props = Map::new();
        props.insert(
            "activity_id".into(),
            Value::from(msg.activity_id.as_str()),
        );
        props.insert("hostname".into(), Value::from(msg.hostname.as_str()));
        props.insert("status".into(), Value::from(msg.status.as_str()));
        self.graph
            .upsert_node(msg.task_id.as_str(), "prov:Activity", props);
        for dep in &msg.depends_on {
            self.graph.add_edge(
                msg.task_id.as_str(),
                dep.as_str(),
                ProvRelation::WasInformedBy.as_str(),
            );
        }
        if let Some(agent) = &msg.agent_id {
            self.graph
                .upsert_node(agent.as_str(), "prov:Agent", Map::new());
            self.graph.add_edge(
                msg.task_id.as_str(),
                agent.as_str(),
                ProvRelation::WasAssociatedWith.as_str(),
            );
        }
    }

    /// Bulk insert.
    pub fn insert_batch<'a>(&self, msgs: impl IntoIterator<Item = &'a TaskMessage>) -> usize {
        let mut n = 0;
        for m in msgs {
            self.insert(m);
            n += 1;
        }
        n
    }

    /// Total inserts performed.
    pub fn insert_count(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Point lookup by task id (KV fast path).
    pub fn get_task(&self, task_id: &str) -> Option<TaskMessage> {
        self.kv
            .get(&format!("task/{task_id}"))
            .and_then(|v| TaskMessage::from_value(&v))
    }

    /// Filter/sort/limit query against the document backend.
    pub fn find(&self, query: &DocQuery) -> Vec<Value> {
        self.documents.find(query)
    }

    /// Count matching documents.
    pub fn count(&self, query: &DocQuery) -> usize {
        self.documents.count(query)
    }

    /// Group-and-aggregate against the document backend.
    pub fn aggregate(&self, query: &DocQuery, group: &GroupSpec) -> Vec<Value> {
        self.documents.aggregate(query, group)
    }

    /// All tasks of one workflow execution.
    pub fn workflow_tasks(&self, workflow_id: &str) -> Vec<Value> {
        self.find(&DocQuery::new().filter("workflow_id", Op::Eq, workflow_id))
    }

    /// Multi-hop upstream lineage (graph fast path).
    pub fn lineage(&self, task_id: &str, max_depth: usize) -> Vec<(String, usize)> {
        self.graph.upstream_lineage(task_id, max_depth)
    }
}

impl Default for ProvenanceDatabase {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::TaskMessageBuilder;

    fn msgs() -> Vec<TaskMessage> {
        vec![
            TaskMessageBuilder::new("t0", "wf-1", "generate_conformer")
                .generates("energy", -154.9)
                .span(10.0, 11.0)
                .build(),
            TaskMessageBuilder::new("t1", "wf-1", "run_dft")
                .depends_on("t0")
                .generates("energy", -155.2)
                .span(11.0, 19.0)
                .build(),
            TaskMessageBuilder::new("t2", "wf-1", "postprocess")
                .depends_on("t1")
                .generates("bd_energy", 98.6)
                .span(19.0, 19.5)
                .agent("prov-agent")
                .build(),
        ]
    }

    #[test]
    fn insert_fans_out_to_all_backends() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        assert_eq!(db.insert_count(), 3);
        assert_eq!(db.documents.len(), 3);
        assert_eq!(db.kv.len(), 3);
        assert!(db.graph.node_count() >= 3);
    }

    #[test]
    fn point_lookup_roundtrips() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        let t1 = db.get_task("t1").unwrap();
        assert_eq!(t1.activity_id.as_str(), "run_dft");
        assert!(db.get_task("nope").is_none());
    }

    #[test]
    fn document_queries_work() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        let out = db.find(
            &DocQuery::new()
                .filter("activity_id", Op::Eq, "run_dft")
                .project(&["task_id"]),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(db.workflow_tasks("wf-1").len(), 3);
        assert_eq!(db.count(&DocQuery::new().filter("started_at", Op::Gte, 11.0)), 2);
    }

    #[test]
    fn lineage_traverses_graph() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        let up = db.lineage("t2", 10);
        let ids: Vec<&str> = up.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["t1", "t0"]);
    }

    #[test]
    fn agent_association_recorded() {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs());
        assert!(db.graph.node("prov-agent").is_some());
        assert_eq!(
            db.graph
                .neighbors_out("t2", "prov:wasAssociatedWith"),
            vec!["prov-agent".to_string()]
        );
    }
}
