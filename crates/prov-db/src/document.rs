//! Document store — the MongoDB-shaped backend ("filtering and
//! aggregation", §2.3). Stores JSON documents, supports dotted-path
//! filters, projections, sorts, limits, group-by aggregation, and hash
//! indexes on hot fields.

use crate::query::{Condition, DocQuery, GroupSpec, Op};
use parking_lot::RwLock;
use prov_model::{Map, Value};
use std::collections::HashMap;

/// An in-memory JSON document collection.
#[derive(Default)]
pub struct DocumentStore {
    docs: RwLock<Vec<Value>>,
    /// field path → (value text → doc indices)
    indexes: RwLock<HashMap<String, HashMap<String, Vec<usize>>>>,
}

impl DocumentStore {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.read().len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert one document; returns its index.
    pub fn insert(&self, doc: Value) -> usize {
        let mut docs = self.docs.write();
        let idx = docs.len();
        let mut indexes = self.indexes.write();
        for (path, index) in indexes.iter_mut() {
            if let Some(v) = doc.get_path(path) {
                index.entry(v.display_plain()).or_default().push(idx);
            }
        }
        docs.push(doc);
        idx
    }

    /// Bulk insert; returns how many were stored.
    pub fn insert_many(&self, batch: Vec<Value>) -> usize {
        let n = batch.len();
        for d in batch {
            self.insert(d);
        }
        n
    }

    /// Create a hash index over a dotted field path (idempotent).
    pub fn create_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        if indexes.contains_key(path) {
            return;
        }
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, d) in self.docs.read().iter().enumerate() {
            if let Some(v) = d.get_path(path) {
                index.entry(v.display_plain()).or_default().push(i);
            }
        }
        indexes.insert(path.to_string(), index);
    }

    /// Fetch a document by index.
    pub fn get(&self, idx: usize) -> Option<Value> {
        self.docs.read().get(idx).cloned()
    }

    /// Run a query: filter → sort → limit → project.
    pub fn find(&self, query: &DocQuery) -> Vec<Value> {
        let docs = self.docs.read();
        let mut hits: Vec<usize> = match self.candidates(&docs, &query.conditions) {
            Some(c) => c
                .into_iter()
                .filter(|&i| query.matches(&docs[i]))
                .collect(),
            None => (0..docs.len()).filter(|&i| query.matches(&docs[i])).collect(),
        };
        if let Some((path, ascending)) = &query.sort {
            hits.sort_by(|&a, &b| {
                let va = docs[a].get_path(path).cloned().unwrap_or(Value::Null);
                let vb = docs[b].get_path(path).cloned().unwrap_or(Value::Null);
                let o = va.compare(&vb);
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            });
        }
        if let Some(n) = query.limit {
            hits.truncate(n);
        }
        hits.into_iter()
            .map(|i| project(&docs[i], &query.projection))
            .collect()
    }

    /// Count matching documents without materializing them.
    pub fn count(&self, query: &DocQuery) -> usize {
        let docs = self.docs.read();
        match self.candidates(&docs, &query.conditions) {
            Some(c) => c.into_iter().filter(|&i| query.matches(&docs[i])).count(),
            None => docs.iter().filter(|d| query.matches(d)).count(),
        }
    }

    /// Equality-indexed candidate set, when an index covers a condition.
    fn candidates(&self, _docs: &[Value], conditions: &[Condition]) -> Option<Vec<usize>> {
        let indexes = self.indexes.read();
        for c in conditions {
            if c.op == Op::Eq {
                if let Some(index) = indexes.get(&c.path) {
                    return Some(index.get(&c.value.display_plain()).cloned().unwrap_or_default());
                }
            }
        }
        None
    }

    /// Group matching documents by a key path and aggregate value paths.
    pub fn aggregate(&self, query: &DocQuery, group: &GroupSpec) -> Vec<Value> {
        let docs = self.find(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        });
        let mut buckets: Vec<(Value, Vec<&Value>)> = Vec::new();
        for d in &docs {
            let key = d.get_path(&group.key).cloned().unwrap_or(Value::Null);
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, items)) => items.push(d),
                None => buckets.push((key, vec![d])),
            }
        }
        buckets
            .into_iter()
            .map(|(key, items)| {
                let mut out = Map::new();
                out.insert("_id".into(), key);
                for agg in &group.aggs {
                    let vals: Vec<Value> = items
                        .iter()
                        .filter_map(|d| d.get_path(&agg.path))
                        .cloned()
                        .collect();
                    out.insert(agg.output_name(), agg.apply(&vals));
                }
                Value::Object(out)
            })
            .collect()
    }

    /// Distinct values of a path among matching documents.
    pub fn distinct(&self, query: &DocQuery, path: &str) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        for d in self.find(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        }) {
            if let Some(v) = d.get_path(path) {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

fn project(doc: &Value, projection: &[String]) -> Value {
    if projection.is_empty() {
        return doc.clone();
    }
    let mut out = Map::new();
    for p in projection {
        if let Some(v) = doc.get_path(p) {
            out.insert(p.clone(), v.clone());
        }
    }
    Value::Object(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggOp, Aggregate};
    use prov_model::obj;

    fn store() -> DocumentStore {
        let s = DocumentStore::new();
        for (i, (act, host, dur)) in [
            ("run_dft", "n0", 5.0),
            ("postprocess", "n0", 1.0),
            ("run_dft", "n1", 7.0),
            ("run_dft", "n1", 3.0),
        ]
        .iter()
        .enumerate()
        {
            s.insert(obj! {
                "task_id" => format!("t{i}"),
                "activity_id" => *act,
                "hostname" => *host,
                "generated" => obj! { "duration" => *dur },
            });
        }
        s
    }

    #[test]
    fn filter_and_project() {
        let s = store();
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .project(&["task_id", "generated.duration"]);
        let out = s.find(&q);
        assert_eq!(out.len(), 3);
        assert!(out[0].get("task_id").is_some());
        assert!(out[0].get("activity_id").is_none());
    }

    #[test]
    fn sort_and_limit() {
        let s = store();
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .sort_by("generated.duration", false)
            .limit(1);
        let out = s.find(&q);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].get_path("generated.duration").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn range_ops() {
        let s = store();
        let q = DocQuery::new().filter("generated.duration", Op::Gte, 3.0);
        assert_eq!(s.count(&q), 3);
        let q = DocQuery::new().filter("hostname", Op::Ne, "n0");
        assert_eq!(s.count(&q), 2);
        let q = DocQuery::new().filter("activity_id", Op::Contains, "dft");
        assert_eq!(s.count(&q), 3);
    }

    #[test]
    fn indexes_accelerate_equality() {
        let s = store();
        s.create_index("hostname");
        let q = DocQuery::new().filter("hostname", Op::Eq, "n1");
        assert_eq!(s.count(&q), 2);
        // Index also maintained for inserts after creation.
        s.insert(obj! {"task_id" => "t9", "hostname" => "n1"});
        assert_eq!(s.count(&q), 3);
    }

    #[test]
    fn aggregation_pipeline() {
        let s = store();
        let out = s.aggregate(
            &DocQuery::new(),
            &GroupSpec {
                key: "activity_id".into(),
                aggs: vec![
                    Aggregate {
                        path: "generated.duration".into(),
                        op: AggOp::Mean,
                    },
                    Aggregate {
                        path: "generated.duration".into(),
                        op: AggOp::Count,
                    },
                ],
            },
        );
        assert_eq!(out.len(), 2);
        let dft = out
            .iter()
            .find(|v| v.get("_id").and_then(Value::as_str) == Some("run_dft"))
            .unwrap();
        assert_eq!(
            dft.get("generated.duration_mean").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(
            dft.get("generated.duration_count").unwrap().as_i64(),
            Some(3)
        );
    }

    #[test]
    fn distinct_values() {
        let s = store();
        let hosts = s.distinct(&DocQuery::new(), "hostname");
        assert_eq!(hosts.len(), 2);
    }
}
