//! Document store — the MongoDB-shaped backend ("filtering and
//! aggregation", §2.3), rebuilt as a sharded, clone-free engine.
//!
//! Documents live as [`Arc<Value>`] in N independently locked shards, so
//! concurrent writers no longer serialize on one `RwLock<Vec<Value>>` and
//! `find`/`get` hand back shared handles instead of deep clones. Index keys
//! are content hashes ([`Value::stable_hash`]) rather than rendered
//! `String`s, so neither inserts nor probes allocate; equality conditions
//! intersect every available index (smallest set first), and range
//! predicates (`Gt`/`Gte`/`Lt`/`Lte`) can be served from a sorted numeric
//! index on hot fields such as `started_at`.
//!
//! Document ids interleave across shards: the document in shard `s` at
//! slot `k` has id `k * nshards + s`. Ids assigned by a single thread are
//! dense and ascending, and every query sorts its hits by id, so results
//! keep insertion order exactly as the single-lock engine did.

use crate::query::{Condition, DocQuery, GroupSpec, Op};
use parking_lot::RwLock;
use prov_model::{Map, Value};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Stable document id: `slot * nshards + shard`.
pub type DocId = usize;

/// Pass-through hasher for maps keyed by an already-mixed
/// [`Value::stable_hash`]: re-hashing a good 64-bit hash through SipHash
/// would only burn ingest cycles.
#[derive(Default)]
struct PrehashedKey(u64);

impl Hasher for PrehashedKey {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
    fn write(&mut self, bytes: &[u8]) {
        // Not used for u64 keys; keep a real hash as a safety net.
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

type PrehashedMap<V> = HashMap<u64, V, BuildHasherDefault<PrehashedKey>>;

/// Posting list that avoids a heap `Vec` for unique keys — on a store
/// indexed by `task_id`, every key is unique, so the old
/// one-`Vec`-per-key layout paid one allocation per ingested document.
enum IdList {
    One(DocId),
    Many(Vec<DocId>),
}

impl IdList {
    fn push(&mut self, id: DocId) {
        match self {
            IdList::One(first) => *self = IdList::Many(vec![*first, id]),
            IdList::Many(v) => v.push(id),
        }
    }

    fn to_vec(&self) -> Vec<DocId> {
        match self {
            IdList::One(id) => vec![*id],
            IdList::Many(v) => v.clone(),
        }
    }
}

/// Log-structured sorted numeric index: appends are O(1) on the ingest
/// path; the first range probe after a write burst merges the pending run
/// into the sorted run (amortized, like an LSM memtable flush).
#[derive(Default)]
struct RangeLog {
    /// `(order-encoded f64, doc id)`, sorted by key.
    sorted: Vec<(u64, DocId)>,
    /// Unmerged appends in arrival order.
    pending: Vec<(u64, DocId)>,
}

impl RangeLog {
    fn push(&mut self, key: u64, id: DocId) {
        self.pending.push((key, id));
    }

    fn merge(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.sorted.append(&mut self.pending);
        // pdqsort is near-linear on the mostly-sorted runs ingest produces.
        self.sorted.sort_unstable();
    }

    /// Ids with key satisfying `op bound` (callers merged `pending` first).
    fn probe(&self, op: Op, bound: u64, out: &mut Vec<DocId>) {
        let range = match op {
            Op::Gte => self.sorted.partition_point(|(k, _)| *k < bound)..self.sorted.len(),
            Op::Gt => self.sorted.partition_point(|(k, _)| *k <= bound)..self.sorted.len(),
            Op::Lte => 0..self.sorted.partition_point(|(k, _)| *k <= bound),
            Op::Lt => 0..self.sorted.partition_point(|(k, _)| *k < bound),
            _ => unreachable!("probe is only called for range operators"),
        };
        out.extend(self.sorted[range].iter().map(|(_, id)| *id));
    }
}

/// Indexes for one dotted field path.
#[derive(Default)]
struct FieldIndex {
    /// `stable_hash(value)` → ids of docs holding that value at the path.
    /// Hash collisions are harmless: every candidate is still checked with
    /// `DocQuery::matches` before it can reach a result set.
    eq: PrehashedMap<IdList>,
    /// Sorted numeric index (present only after `create_range_index`).
    range: Option<RangeLog>,
    /// Docs whose value at this path is non-numeric; unioned into every
    /// range-index candidate set because mixed-kind comparisons can still
    /// satisfy range operators (kind-tag ordering in `Value::compare`).
    non_numeric: Vec<DocId>,
}

/// Order-preserving encoding of an `f64` into sortable `u64` bits.
/// `-0.0` canonicalizes to `+0.0` first — `Value::compare` treats them as
/// equal, so they must share a key or range probes on a zero bound would
/// drop documents an unindexed scan returns. NaN never reaches this
/// function (NaN-valued docs go to the `non_numeric` catch-all instead).
fn range_key(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// An in-memory JSON document collection, sharded for write concurrency.
pub struct DocumentStore {
    shards: Box<[RwLock<Vec<Arc<Value>>>]>,
    /// Round-robin distribution counter (not an id source: ids derive from
    /// the slot a document actually lands in).
    router: AtomicUsize,
    indexes: RwLock<HashMap<String, FieldIndex>>,
}

impl Default for DocumentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentStore {
    /// Empty collection with one shard per available core (capped at 16).
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
            .clamp(1, 16);
        Self::with_shards(n)
    }

    /// Empty collection with an explicit shard count (≥ 1). Query results
    /// are shard-count-invariant; the count only tunes write concurrency.
    pub fn with_shards(nshards: usize) -> Self {
        let nshards = nshards.max(1);
        Self {
            shards: (0..nshards).map(|_| RwLock::new(Vec::new())).collect(),
            router: AtomicUsize::new(0),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Insert one document; returns its id.
    pub fn insert(&self, doc: impl Into<Arc<Value>>) -> DocId {
        self.insert_many_shared(vec![doc.into()])
            .expect("one doc inserted")
    }

    /// Bulk insert of owned documents; returns how many were stored.
    pub fn insert_many(&self, batch: Vec<Value>) -> usize {
        let n = batch.len();
        self.insert_many_shared(batch.into_iter().map(Arc::new).collect());
        n
    }

    /// The true batch path: distribute a batch round-robin over the shards,
    /// taking each shard's write lock **once**, then update every index
    /// under a single index-lock acquisition. Returns the id of the first
    /// inserted document (`None` for an empty batch).
    ///
    /// Lock order is indexes → shards, matching the readers, so an indexed
    /// probe never observes a document that is missing its index entries.
    pub fn insert_many_shared(&self, batch: Vec<Arc<Value>>) -> Option<DocId> {
        if batch.is_empty() {
            return None;
        }
        let nshards = self.shards.len();
        let base = self.router.fetch_add(batch.len(), Ordering::Relaxed);

        // Partition round-robin, preserving batch order within each shard.
        let mut per_shard: Vec<Vec<Arc<Value>>> = vec![Vec::new(); nshards];
        for (i, doc) in batch.into_iter().enumerate() {
            per_shard[(base + i) % nshards].push(doc);
        }

        let mut indexes = self.indexes.write();
        let mut first: Option<DocId> = None;
        for (s, docs) in per_shard.into_iter().enumerate() {
            if docs.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write();
            for doc in docs {
                let id = shard.len() * nshards + s;
                first = Some(first.map_or(id, |f| f.min(id)));
                for (path, index) in indexes.iter_mut() {
                    if let Some(v) = doc.get_path(path) {
                        index_insert(index, id, v);
                    }
                }
                shard.push(doc);
            }
        }
        first
    }

    /// Create a hash index over a dotted field path (idempotent).
    pub fn create_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        if indexes.contains_key(path) {
            return;
        }
        let mut index = FieldIndex::default();
        self.for_each_doc(|id, doc| {
            if let Some(v) = doc.get_path(path) {
                index_insert(&mut index, id, v);
            }
        });
        indexes.insert(path.to_string(), index);
    }

    /// Add a sorted numeric index over a dotted field path so range
    /// predicates (`Gt`/`Gte`/`Lt`/`Lte`) become index probes instead of
    /// full scans. Implies the hash index; idempotent.
    pub fn create_range_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        let index = indexes.entry(path.to_string()).or_default();
        if index.range.is_some() {
            return;
        }
        // Rebuild from scratch: existing docs need range entries even if the
        // hash side of the index already covered them.
        let mut rebuilt = FieldIndex {
            range: Some(RangeLog::default()),
            ..FieldIndex::default()
        };
        self.for_each_doc(|id, doc| {
            if let Some(v) = doc.get_path(path) {
                index_insert(&mut rebuilt, id, v);
            }
        });
        indexes.insert(path.to_string(), rebuilt);
    }

    /// Visit every document as `(id, &doc)` in shard order (used for index
    /// builds; callers hold the index write lock, honoring lock order).
    fn for_each_doc(&self, mut f: impl FnMut(DocId, &Arc<Value>)) {
        let nshards = self.shards.len();
        for (s, shard) in self.shards.iter().enumerate() {
            for (slot, doc) in shard.read().iter().enumerate() {
                f(slot * nshards + s, doc);
            }
        }
    }

    /// Fetch a document by id as a shared handle (no clone of the payload).
    pub fn get(&self, id: DocId) -> Option<Arc<Value>> {
        let nshards = self.shards.len();
        self.shards[id % nshards].read().get(id / nshards).cloned()
    }

    /// Run a query: filter → sort → limit → project. Results are shared
    /// handles; only projections materialize new documents.
    pub fn find(&self, query: &DocQuery) -> Vec<Arc<Value>> {
        let mut hits = self.matching(query);
        if let Some((path, ascending)) = &query.sort {
            // Stable sort over id-ordered hits: ties keep insertion order,
            // exactly like the single-lock engine.
            hits.sort_by(|(_, a), (_, b)| {
                let va = a.get_path(path).unwrap_or(&Value::Null);
                let vb = b.get_path(path).unwrap_or(&Value::Null);
                let o = va.compare(vb);
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            });
        }
        if let Some(n) = query.limit {
            hits.truncate(n);
        }
        hits.into_iter()
            .map(|(_, doc)| project(doc, &query.projection))
            .collect()
    }

    /// Count matching documents without materializing them.
    pub fn count(&self, query: &DocQuery) -> usize {
        match self.candidates(&query.conditions) {
            Some(ids) => {
                let nshards = self.shards.len();
                let mut n = 0;
                let mut ids = ids;
                ids.sort_unstable();
                let mut i = 0;
                while i < ids.len() {
                    let s = ids[i] % nshards;
                    let shard = self.shards[s].read();
                    while i < ids.len() && ids[i] % nshards == s {
                        if let Some(doc) = shard.get(ids[i] / nshards) {
                            if query.matches(doc) {
                                n += 1;
                            }
                        }
                        i += 1;
                    }
                }
                n
            }
            None => {
                let mut n = 0;
                for shard in self.shards.iter() {
                    n += shard.read().iter().filter(|d| query.matches(d)).count();
                }
                n
            }
        }
    }

    /// Matching `(id, doc)` pairs in id (= insertion) order.
    fn matching(&self, query: &DocQuery) -> Vec<(DocId, Arc<Value>)> {
        let nshards = self.shards.len();
        let mut hits: Vec<(DocId, Arc<Value>)> = Vec::new();
        match self.candidates(&query.conditions) {
            Some(mut ids) => {
                // Group by shard so each shard lock is taken at most once.
                ids.sort_unstable();
                ids.dedup();
                let mut i = 0;
                while i < ids.len() {
                    let s = ids[i] % nshards;
                    let shard = self.shards[s].read();
                    while i < ids.len() && ids[i] % nshards == s {
                        if let Some(doc) = shard.get(ids[i] / nshards) {
                            if query.matches(doc) {
                                hits.push((ids[i], doc.clone()));
                            }
                        }
                        i += 1;
                    }
                }
            }
            None => {
                for (s, shard) in self.shards.iter().enumerate() {
                    let shard = shard.read();
                    for (slot, doc) in shard.iter().enumerate() {
                        if query.matches(doc) {
                            hits.push((slot * nshards + s, doc.clone()));
                        }
                    }
                }
            }
        }
        hits.sort_unstable_by_key(|(id, _)| *id);
        hits
    }

    /// Index-driven candidate ids, or `None` when no condition is indexed.
    ///
    /// Every indexed `Eq` condition contributes a set (hash probe, zero
    /// allocation), and every range condition with a sorted index
    /// contributes one; the smallest set seeds the scan and the rest are
    /// intersected — the old engine took the *first* index hit only.
    fn candidates(&self, conditions: &[Condition]) -> Option<Vec<DocId>> {
        // Range probes read the sorted run, so any pending appends must be
        // merged first — that needs the write lock, taken only when a write
        // burst actually left unmerged entries (LSM-style amortization).
        let is_range = |op: Op| matches!(op, Op::Gt | Op::Gte | Op::Lt | Op::Lte);
        let indexes = self.indexes.read();
        let needs_merge = conditions.iter().any(|c| {
            is_range(c.op)
                && indexes
                    .get(&c.path)
                    .and_then(|i| i.range.as_ref())
                    .is_some_and(|r| !r.pending.is_empty())
        });
        let indexes = if needs_merge {
            drop(indexes);
            let mut w = self.indexes.write();
            for c in conditions {
                if is_range(c.op) {
                    if let Some(range) = w.get_mut(&c.path).and_then(|i| i.range.as_mut()) {
                        range.merge();
                    }
                }
            }
            drop(w);
            self.indexes.read()
        } else {
            indexes
        };

        let mut sets: Vec<Vec<DocId>> = Vec::new();
        for c in conditions {
            let Some(index) = indexes.get(&c.path) else {
                continue;
            };
            match c.op {
                Op::Eq => {
                    sets.push(
                        index
                            .eq
                            .get(&c.value.stable_hash())
                            .map(IdList::to_vec)
                            .unwrap_or_default(),
                    );
                }
                Op::Gt | Op::Gte | Op::Lt | Op::Lte => {
                    let (Some(range), Some(bound)) = (&index.range, c.value.as_f64()) else {
                        continue;
                    };
                    // A NaN bound compares Equal to every number under
                    // `Value::compare`; the sorted run cannot express that,
                    // so leave this condition to the scan filter.
                    if bound.is_nan() {
                        continue;
                    }
                    let mut ids: Vec<DocId> = Vec::new();
                    range.probe(c.op, range_key(bound), &mut ids);
                    // Non-numeric values compare by kind tag and may still
                    // satisfy the operator; keep them as candidates.
                    ids.extend_from_slice(&index.non_numeric);
                    sets.push(ids);
                }
                _ => {}
            }
        }
        if sets.is_empty() {
            return None;
        }
        // Smallest set first, then intersect the rest into it.
        sets.sort_by_key(Vec::len);
        let mut iter = sets.into_iter();
        let mut smallest = iter.next().expect("non-empty");
        for other in iter {
            let other: HashSet<DocId> = other.into_iter().collect();
            smallest.retain(|id| other.contains(id));
            if smallest.is_empty() {
                break;
            }
        }
        Some(smallest)
    }

    /// Group matching documents by a key path and aggregate value paths.
    ///
    /// Hash-grouped over the shard read guards: no full-document clones and
    /// no O(n·groups) linear bucket search — only the group keys and the
    /// aggregated leaf values are copied out. Groups keep first-seen order.
    pub fn aggregate(&self, query: &DocQuery, group: &GroupSpec) -> Vec<Value> {
        struct Bucket {
            key: Value,
            values: Vec<Vec<Value>>, // one list per aggregate
        }
        let mut buckets: Vec<Bucket> = Vec::new();
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();

        for (_, doc) in self.matching(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        }) {
            let key = doc.get_path(&group.key).unwrap_or(&Value::Null);
            let h = key.stable_hash();
            let slot = by_hash.entry(h).or_default();
            let idx = match slot.iter().find(|&&i| buckets[i].key == *key) {
                Some(&i) => i,
                None => {
                    buckets.push(Bucket {
                        key: key.clone(),
                        values: vec![Vec::new(); group.aggs.len()],
                    });
                    slot.push(buckets.len() - 1);
                    buckets.len() - 1
                }
            };
            for (a, agg) in group.aggs.iter().enumerate() {
                if let Some(v) = doc.get_path(&agg.path) {
                    buckets[idx].values[a].push(v.clone());
                }
            }
        }

        buckets
            .into_iter()
            .map(|b| {
                let mut out = Map::new();
                out.insert("_id".into(), b.key);
                for (agg, vals) in group.aggs.iter().zip(&b.values) {
                    out.insert(prov_model::Sym::from(agg.output_name()), agg.apply(vals));
                }
                Value::object(out)
            })
            .collect()
    }

    /// Distinct values of a path among matching documents, in first-seen
    /// order. Hash-set deduplication (the old engine was O(n²)
    /// `Vec::contains`).
    pub fn distinct(&self, query: &DocQuery, path: &str) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
        for (_, doc) in self.matching(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        }) {
            if let Some(v) = doc.get_path(path) {
                let slot = by_hash.entry(v.stable_hash()).or_default();
                if !slot.iter().any(|&i| out[i] == *v) {
                    out.push(v.clone());
                    slot.push(out.len() - 1);
                }
            }
        }
        out
    }
}

fn index_insert(index: &mut FieldIndex, id: DocId, value: &Value) {
    match index.eq.entry(value.stable_hash()) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(id),
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(IdList::One(id));
        }
    }
    if let Some(range) = &mut index.range {
        match value.as_f64() {
            // NaN has no place in a total order (`Value::compare` calls
            // mixed NaN comparisons Equal, so a NaN doc satisfies Lte AND
            // Gte); park it with the non-numeric catch-all candidates.
            Some(f) if !f.is_nan() => range.push(range_key(f), id),
            _ => index.non_numeric.push(id),
        }
    }
}

fn project(doc: Arc<Value>, projection: &[String]) -> Arc<Value> {
    if projection.is_empty() {
        return doc;
    }
    let mut out = Map::new();
    for p in projection {
        if let Some(v) = doc.get_path(p) {
            out.insert(prov_model::Sym::from(p.as_str()), v.clone());
        }
    }
    Arc::new(Value::object(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggOp, Aggregate};
    use prov_model::obj;

    fn store() -> DocumentStore {
        let s = DocumentStore::new();
        for (i, (act, host, dur)) in [
            ("run_dft", "n0", 5.0),
            ("postprocess", "n0", 1.0),
            ("run_dft", "n1", 7.0),
            ("run_dft", "n1", 3.0),
        ]
        .iter()
        .enumerate()
        {
            s.insert(obj! {
                "task_id" => format!("t{i}"),
                "activity_id" => *act,
                "hostname" => *host,
                "generated" => obj! { "duration" => *dur },
            });
        }
        s
    }

    #[test]
    fn filter_and_project() {
        let s = store();
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .project(&["task_id", "generated.duration"]);
        let out = s.find(&q);
        assert_eq!(out.len(), 3);
        assert!(out[0].get("task_id").is_some());
        assert!(out[0].get("activity_id").is_none());
    }

    #[test]
    fn sort_and_limit() {
        let s = store();
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .sort_by("generated.duration", false)
            .limit(1);
        let out = s.find(&q);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].get_path("generated.duration").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn range_ops() {
        let s = store();
        let q = DocQuery::new().filter("generated.duration", Op::Gte, 3.0);
        assert_eq!(s.count(&q), 3);
        let q = DocQuery::new().filter("hostname", Op::Ne, "n0");
        assert_eq!(s.count(&q), 2);
        let q = DocQuery::new().filter("activity_id", Op::Contains, "dft");
        assert_eq!(s.count(&q), 3);
    }

    #[test]
    fn indexes_accelerate_equality() {
        let s = store();
        s.create_index("hostname");
        let q = DocQuery::new().filter("hostname", Op::Eq, "n1");
        assert_eq!(s.count(&q), 2);
        // Index also maintained for inserts after creation.
        s.insert(obj! {"task_id" => "t9", "hostname" => "n1"});
        assert_eq!(s.count(&q), 3);
    }

    #[test]
    fn multiple_indexed_eq_conditions_intersect() {
        let s = store();
        s.create_index("hostname");
        s.create_index("activity_id");
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .filter("hostname", Op::Eq, "n0");
        assert_eq!(s.count(&q), 1);
        let hits = s.find(&q);
        assert_eq!(hits[0].get("task_id").and_then(Value::as_str), Some("t0"));
    }

    #[test]
    fn range_index_serves_range_predicates() {
        let s = store();
        s.create_range_index("generated.duration");
        for (op, expect) in [(Op::Gte, 3), (Op::Gt, 2), (Op::Lte, 2), (Op::Lt, 1)] {
            let q = DocQuery::new().filter("generated.duration", op, 3.0);
            assert_eq!(s.count(&q), expect, "{op:?}");
        }
        // Inserts after creation keep the sorted index live.
        s.insert(obj! {"generated" => obj! {"duration" => 9.5}});
        assert_eq!(
            s.count(&DocQuery::new().filter("generated.duration", Op::Gt, 7.0)),
            1
        );
        // Mixed-kind values are not lost to the numeric index.
        s.insert(obj! {"generated" => obj! {"duration" => "n/a"}});
        assert_eq!(
            s.count(&DocQuery::new().filter("generated.duration", Op::Gt, 7.0)),
            2 // 9.5 and the string (Str kind sorts above Float)
        );
    }

    #[test]
    fn range_index_handles_nan_and_signed_zero() {
        let indexed = DocumentStore::new();
        indexed.create_range_index("y");
        let plain = DocumentStore::new();
        for v in [
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Int(0),
            Value::Float(1.5),
        ] {
            let mut m = Map::new();
            m.insert("y".into(), v);
            indexed.insert(Value::object(m.clone()));
            plain.insert(Value::object(m));
        }
        // Indexed and unindexed stores must agree for every operator and
        // for zero / NaN bounds (compare() calls NaN comparisons Equal).
        for op in [Op::Gte, Op::Gt, Op::Lte, Op::Lt] {
            for bound in [
                Value::Float(0.0),
                Value::Float(-0.0),
                Value::Float(f64::NAN),
            ] {
                let q = DocQuery::new().filter("y", op, bound.clone());
                assert_eq!(indexed.count(&q), plain.count(&q), "{op:?} {bound:?}");
                // Compare rendered docs: NaN != NaN under PartialEq, but
                // both stores must return the same documents.
                assert_eq!(
                    format!("{:?}", indexed.find(&q)),
                    format!("{:?}", plain.find(&q)),
                    "{op:?} {bound:?}"
                );
            }
        }
    }

    #[test]
    fn find_returns_shared_handles() {
        let s = store();
        let a = s.find(&DocQuery::new().filter("task_id", Op::Eq, "t0"));
        let b = s.find(&DocQuery::new().filter("task_id", Op::Eq, "t0"));
        // Same allocation, not a deep clone.
        assert!(Arc::ptr_eq(&a[0], &b[0]));
    }

    #[test]
    fn ids_preserve_insertion_order_across_shards() {
        let s = DocumentStore::with_shards(4);
        for i in 0..10 {
            s.insert(obj! {"i" => i});
        }
        let out = s.find(&DocQuery::new());
        let got: Vec<i64> = out.iter().filter_map(|d| d.get("i")?.as_i64()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(s.get(7).unwrap().get("i").unwrap().as_i64(), Some(7));
    }

    #[test]
    fn aggregation_pipeline() {
        let s = store();
        let out = s.aggregate(
            &DocQuery::new(),
            &GroupSpec {
                key: "activity_id".into(),
                aggs: vec![
                    Aggregate {
                        path: "generated.duration".into(),
                        op: AggOp::Mean,
                    },
                    Aggregate {
                        path: "generated.duration".into(),
                        op: AggOp::Count,
                    },
                ],
            },
        );
        assert_eq!(out.len(), 2);
        let dft = out
            .iter()
            .find(|v| v.get("_id").and_then(Value::as_str) == Some("run_dft"))
            .unwrap();
        assert_eq!(
            dft.get("generated.duration_mean").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(
            dft.get("generated.duration_count").unwrap().as_i64(),
            Some(3)
        );
    }

    #[test]
    fn distinct_values() {
        let s = store();
        let hosts = s.distinct(&DocQuery::new(), "hostname");
        assert_eq!(hosts.len(), 2);
    }

    #[test]
    fn batch_insert_takes_one_pass() {
        let s = DocumentStore::with_shards(3);
        s.create_index("k");
        let batch: Vec<Value> = (0..100).map(|i| obj! {"k" => i % 5}).collect();
        assert_eq!(s.insert_many(batch), 100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.count(&DocQuery::new().filter("k", Op::Eq, 3)), 20);
    }
}
