//! Document store — the MongoDB-shaped backend ("filtering and
//! aggregation", §2.3), rebuilt as a sharded, clone-free engine.
//!
//! Documents live as [`Arc<Value>`] in N independently locked shards, so
//! concurrent writers no longer serialize on one `RwLock<Vec<Value>>` and
//! `find`/`get` hand back shared handles instead of deep clones. Index keys
//! are content hashes ([`Value::stable_hash`]) rather than rendered
//! `String`s, so neither inserts nor probes allocate; equality conditions
//! intersect every available index (smallest set first), and range
//! predicates (`Gt`/`Gte`/`Lt`/`Lte`) can be served from a sorted numeric
//! index on hot fields such as `started_at`.
//!
//! Document ids interleave across shards: the document in shard `s` at
//! slot `k` has id `k * nshards + s`. Ids assigned by a single thread are
//! dense and ascending, and every query sorts its hits by id, so results
//! keep insertion order exactly as the single-lock engine did.

use crate::columnar::{self, ColField, ColumnarShard};
use crate::query::{Condition, DocQuery, GroupSpec, Op};
use dataframe::CmpOp;
use parking_lot::RwLock;
use prov_model::{Map, Value};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicUsize, Ordering};
use std::sync::Arc;

/// Stable document id: `slot * nshards + shard`.
pub type DocId = usize;

/// Pass-through hasher for maps keyed by an already-mixed
/// [`Value::stable_hash`]: re-hashing a good 64-bit hash through SipHash
/// would only burn ingest cycles.
#[derive(Default)]
struct PrehashedKey(u64);

impl Hasher for PrehashedKey {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
    fn write(&mut self, bytes: &[u8]) {
        // Not used for u64 keys; keep a real hash as a safety net.
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

type PrehashedMap<V> = HashMap<u64, V, BuildHasherDefault<PrehashedKey>>;

/// Posting list that avoids a heap `Vec` for unique keys — on a store
/// indexed by `task_id`, every key is unique, so the old
/// one-`Vec`-per-key layout paid one allocation per ingested document.
enum IdList {
    One(DocId),
    Many(Vec<DocId>),
}

impl IdList {
    fn push(&mut self, id: DocId) {
        match self {
            IdList::One(first) => *self = IdList::Many(vec![*first, id]),
            IdList::Many(v) => v.push(id),
        }
    }

    fn to_vec(&self) -> Vec<DocId> {
        match self {
            IdList::One(id) => vec![*id],
            IdList::Many(v) => v.clone(),
        }
    }
}

/// Log-structured sorted numeric index: appends are O(1) on the ingest
/// path; the first range probe after a write burst merges the pending run
/// into the sorted run (amortized, like an LSM memtable flush).
#[derive(Default)]
struct RangeLog {
    /// `(order-encoded f64, doc id)`, sorted by key.
    sorted: Vec<(u64, DocId)>,
    /// Unmerged appends in arrival order.
    pending: Vec<(u64, DocId)>,
}

impl RangeLog {
    fn push(&mut self, key: u64, id: DocId) {
        self.pending.push((key, id));
    }

    fn merge(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.sorted.append(&mut self.pending);
        // pdqsort is near-linear on the mostly-sorted runs ingest produces.
        self.sorted.sort_unstable();
    }

    /// Ids with key satisfying `op bound` (callers merged `pending` first).
    fn probe(&self, op: Op, bound: u64, out: &mut Vec<DocId>) {
        let range = match op {
            Op::Gte => self.sorted.partition_point(|(k, _)| *k < bound)..self.sorted.len(),
            Op::Gt => self.sorted.partition_point(|(k, _)| *k <= bound)..self.sorted.len(),
            Op::Lte => 0..self.sorted.partition_point(|(k, _)| *k <= bound),
            Op::Lt => 0..self.sorted.partition_point(|(k, _)| *k < bound),
            _ => unreachable!("probe is only called for range operators"),
        };
        out.extend(self.sorted[range].iter().map(|(_, id)| *id));
    }
}

/// Indexes for one dotted field path.
#[derive(Default)]
struct FieldIndex {
    /// `stable_hash(value)` → ids of docs holding that value at the path.
    /// Hash collisions are harmless: every candidate is still checked with
    /// `DocQuery::matches` before it can reach a result set.
    eq: PrehashedMap<IdList>,
    /// Sorted numeric index (present only after `create_range_index`).
    range: Option<RangeLog>,
    /// Docs whose value at this path is non-numeric; unioned into every
    /// range-index candidate set because mixed-kind comparisons can still
    /// satisfy range operators (kind-tag ordering in `Value::compare`).
    non_numeric: Vec<DocId>,
}

/// Order-preserving encoding of an `f64` into sortable `u64` bits.
/// `-0.0` canonicalizes to `+0.0` first — `Value::compare` treats them as
/// equal, so they must share a key or range probes on a zero bound would
/// drop documents an unindexed scan returns. NaN never reaches this
/// function (NaN-valued docs go to the `non_numeric` catch-all instead).
fn range_key(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// One shard: its documents plus the slot-aligned columnar sidecar (the
/// sidecar stays empty until [`DocumentStore::enable_columnar`]).
#[derive(Default)]
struct Shard {
    docs: Vec<Arc<Value>>,
    cols: ColumnarShard,
}

/// Parse the `PROVDB_SHARDS` override: a positive integer, capped at 16
/// like the auto-tuned count. `None` leaves auto-tuning in effect.
fn shard_override(raw: Option<&str>) -> Option<usize> {
    raw?.trim()
        .parse::<usize>()
        .ok()
        .filter(|n| *n >= 1)
        .map(|n| n.min(16))
}

/// An in-memory JSON document collection, sharded for write concurrency.
pub struct DocumentStore {
    shards: Box<[RwLock<Shard>]>,
    /// Round-robin distribution counter (not an id source: ids derive from
    /// the slot a document actually lands in).
    router: AtomicUsize,
    indexes: RwLock<HashMap<String, FieldIndex>>,
    /// Whether the columnar sidecar is populated (see `crate::columnar`).
    columnar: AtomicBool,
    /// Columnar fields whose raw document values diverged from their
    /// decoded frame values (index hints disabled; see `crate::columnar`).
    col_irregular: AtomicU16,
    /// Columnar fields shadowed by a dataflow key (no longer servable).
    col_poison: AtomicU16,
}

impl Default for DocumentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentStore {
    /// Empty collection with one shard per available core (capped at 16).
    /// The `PROVDB_SHARDS` environment variable overrides the auto-tuned
    /// count (CI's shard-matrix leg forces 1 and 16 so shard-count-
    /// sensitive paths are exercised on single-core runners).
    pub fn new() -> Self {
        let shards = std::env::var("PROVDB_SHARDS").ok();
        let n = shard_override(shards.as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8)
                .clamp(1, 16)
        });
        Self::with_shards(n)
    }

    /// Empty collection with an explicit shard count (≥ 1). Query results
    /// are shard-count-invariant; the count only tunes write concurrency.
    pub fn with_shards(nshards: usize) -> Self {
        let nshards = nshards.max(1);
        Self {
            shards: (0..nshards)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            router: AtomicUsize::new(0),
            indexes: RwLock::new(HashMap::new()),
            columnar: AtomicBool::new(false),
            col_irregular: AtomicU16::new(0),
            col_poison: AtomicU16::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().docs.len()).sum()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().docs.is_empty())
    }

    /// Insert one document; returns its id.
    pub fn insert(&self, doc: impl Into<Arc<Value>>) -> DocId {
        self.insert_many_shared(vec![doc.into()])
            .expect("one doc inserted")
    }

    /// Bulk insert of owned documents; returns how many were stored.
    pub fn insert_many(&self, batch: Vec<Value>) -> usize {
        let n = batch.len();
        self.insert_many_shared(batch.into_iter().map(Arc::new).collect());
        n
    }

    /// The true batch path: distribute a batch round-robin over the shards,
    /// taking each shard's write lock **once**, then update every index
    /// under a single index-lock acquisition. Returns the id of the first
    /// inserted document (`None` for an empty batch).
    ///
    /// Lock order is indexes → shards, matching the readers, so an indexed
    /// probe never observes a document that is missing its index entries.
    pub fn insert_many_shared(&self, batch: Vec<Arc<Value>>) -> Option<DocId> {
        if batch.is_empty() {
            return None;
        }
        let nshards = self.shards.len();
        let base = self.router.fetch_add(batch.len(), Ordering::Relaxed);

        // Partition round-robin, preserving batch order within each shard.
        // Columnar extraction is pure, so it runs here, before any lock is
        // taken — the global index lock below must not serialize ingest on
        // per-document decode work. The flag read is only a hint: the
        // authoritative check happens under each shard's write lock (see
        // `enable_columnar`), and a batch that raced an enable extracts
        // the few unprepared rows inline there.
        let columnar_hint = self.columnar.load(Ordering::Acquire);
        type Prepared = (Arc<Value>, Option<columnar::ExtractedRow>);
        let mut per_shard: Vec<Vec<Prepared>> = (0..nshards).map(|_| Vec::new()).collect();
        for (i, doc) in batch.into_iter().enumerate() {
            let row = columnar_hint.then(|| columnar::extract(&doc));
            per_shard[(base + i) % nshards].push((doc, row));
        }

        let mut indexes = self.indexes.write();
        let mut first: Option<DocId> = None;
        for (s, docs) in per_shard.into_iter().enumerate() {
            if docs.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write();
            let columnar = self.columnar.load(Ordering::Acquire);
            for (doc, row) in docs {
                let id = shard.docs.len() * nshards + s;
                first = Some(first.map_or(id, |f| f.min(id)));
                for (path, index) in indexes.iter_mut() {
                    if let Some(v) = doc.get_path(path) {
                        index_insert(index, id, v);
                    }
                }
                if columnar {
                    let row = row.unwrap_or_else(|| columnar::extract(&doc));
                    self.apply_columnar_report(shard.cols.push_row(row));
                }
                shard.docs.push(doc);
            }
        }
        first
    }

    fn apply_columnar_report(&self, report: columnar::PushReport) {
        if report.irregular != 0 {
            self.col_irregular
                .fetch_or(report.irregular, Ordering::Release);
        }
        if report.poison != 0 {
            self.col_poison.fetch_or(report.poison, Ordering::Release);
        }
    }

    /// Create a hash index over a dotted field path (idempotent).
    pub fn create_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        if indexes.contains_key(path) {
            return;
        }
        let mut index = FieldIndex::default();
        self.for_each_doc(|id, doc| {
            if let Some(v) = doc.get_path(path) {
                index_insert(&mut index, id, v);
            }
        });
        indexes.insert(path.to_string(), index);
    }

    /// Add a sorted numeric index over a dotted field path so range
    /// predicates (`Gt`/`Gte`/`Lt`/`Lte`) become index probes instead of
    /// full scans. Implies the hash index; idempotent.
    pub fn create_range_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        let index = indexes.entry(path.to_string()).or_default();
        if index.range.is_some() {
            return;
        }
        // Rebuild from scratch: existing docs need range entries even if the
        // hash side of the index already covered them.
        let mut rebuilt = FieldIndex {
            range: Some(RangeLog::default()),
            ..FieldIndex::default()
        };
        self.for_each_doc(|id, doc| {
            if let Some(v) = doc.get_path(path) {
                index_insert(&mut rebuilt, id, v);
            }
        });
        indexes.insert(path.to_string(), rebuilt);
    }

    /// Visit every document as `(id, &doc)` in shard order (used for index
    /// builds; callers hold the index write lock, honoring lock order).
    fn for_each_doc(&self, mut f: impl FnMut(DocId, &Arc<Value>)) {
        let nshards = self.shards.len();
        for (s, shard) in self.shards.iter().enumerate() {
            for (slot, doc) in shard.read().docs.iter().enumerate() {
                f(slot * nshards + s, doc);
            }
        }
    }

    /// Fetch a document by id as a shared handle (no clone of the payload).
    pub fn get(&self, id: DocId) -> Option<Arc<Value>> {
        let nshards = self.shards.len();
        self.shards[id % nshards]
            .read()
            .docs
            .get(id / nshards)
            .cloned()
    }

    /// Run a query: filter → sort → limit → project. Results are shared
    /// handles; only projections materialize new documents.
    pub fn find(&self, query: &DocQuery) -> Vec<Arc<Value>> {
        let mut hits = self.matching(query);
        if let Some((path, ascending)) = &query.sort {
            // Stable sort over id-ordered hits: ties keep insertion order,
            // exactly like the single-lock engine.
            hits.sort_by(|(_, a), (_, b)| {
                let va = a.get_path(path).unwrap_or(&Value::Null);
                let vb = b.get_path(path).unwrap_or(&Value::Null);
                let o = va.compare(vb);
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            });
        }
        if let Some(n) = query.limit {
            hits.truncate(n);
        }
        hits.into_iter()
            .map(|(_, doc)| project(doc, &query.projection))
            .collect()
    }

    /// Count matching documents without materializing them.
    pub fn count(&self, query: &DocQuery) -> usize {
        match self.candidates(&query.conditions) {
            Some(ids) => {
                let nshards = self.shards.len();
                let mut n = 0;
                let mut ids = ids;
                ids.sort_unstable();
                let mut i = 0;
                while i < ids.len() {
                    let s = ids[i] % nshards;
                    let shard = self.shards[s].read();
                    while i < ids.len() && ids[i] % nshards == s {
                        if let Some(doc) = shard.docs.get(ids[i] / nshards) {
                            if query.matches(doc) {
                                n += 1;
                            }
                        }
                        i += 1;
                    }
                }
                n
            }
            None => {
                let mut n = 0;
                for shard in self.shards.iter() {
                    n += shard
                        .read()
                        .docs
                        .iter()
                        .filter(|d| query.matches(d))
                        .count();
                }
                n
            }
        }
    }

    /// Matching `(id, doc)` pairs in id (= insertion) order.
    fn matching(&self, query: &DocQuery) -> Vec<(DocId, Arc<Value>)> {
        let nshards = self.shards.len();
        let mut hits: Vec<(DocId, Arc<Value>)> = Vec::new();
        match self.candidates(&query.conditions) {
            Some(mut ids) => {
                // Group by shard so each shard lock is taken at most once.
                ids.sort_unstable();
                ids.dedup();
                let mut i = 0;
                while i < ids.len() {
                    let s = ids[i] % nshards;
                    let shard = self.shards[s].read();
                    while i < ids.len() && ids[i] % nshards == s {
                        if let Some(doc) = shard.docs.get(ids[i] / nshards) {
                            if query.matches(doc) {
                                hits.push((ids[i], doc.clone()));
                            }
                        }
                        i += 1;
                    }
                }
            }
            None => {
                for (s, shard) in self.shards.iter().enumerate() {
                    let shard = shard.read();
                    for (slot, doc) in shard.docs.iter().enumerate() {
                        if query.matches(doc) {
                            hits.push((slot * nshards + s, doc.clone()));
                        }
                    }
                }
            }
        }
        hits.sort_unstable_by_key(|(id, _)| *id);
        hits
    }

    /// Index-driven candidate ids, or `None` when no condition is indexed.
    ///
    /// Every indexed `Eq` condition contributes a set (hash probe, zero
    /// allocation), and every range condition with a sorted index
    /// contributes one; the smallest set seeds the scan and the rest are
    /// intersected — the old engine took the *first* index hit only.
    fn candidates(&self, conditions: &[Condition]) -> Option<Vec<DocId>> {
        // Range probes read the sorted run, so any pending appends must be
        // merged first — that needs the write lock, taken only when a write
        // burst actually left unmerged entries (LSM-style amortization).
        let is_range = |op: Op| matches!(op, Op::Gt | Op::Gte | Op::Lt | Op::Lte);
        let indexes = self.indexes.read();
        let needs_merge = conditions.iter().any(|c| {
            is_range(c.op)
                && indexes
                    .get(&c.path)
                    .and_then(|i| i.range.as_ref())
                    .is_some_and(|r| !r.pending.is_empty())
        });
        let indexes = if needs_merge {
            drop(indexes);
            let mut w = self.indexes.write();
            for c in conditions {
                if is_range(c.op) {
                    if let Some(range) = w.get_mut(&c.path).and_then(|i| i.range.as_mut()) {
                        range.merge();
                    }
                }
            }
            drop(w);
            self.indexes.read()
        } else {
            indexes
        };

        let mut sets: Vec<Vec<DocId>> = Vec::new();
        for c in conditions {
            let Some(index) = indexes.get(&c.path) else {
                continue;
            };
            match c.op {
                Op::Eq => {
                    sets.push(
                        index
                            .eq
                            .get(&c.value.stable_hash())
                            .map(IdList::to_vec)
                            .unwrap_or_default(),
                    );
                }
                Op::Gt | Op::Gte | Op::Lt | Op::Lte => {
                    let (Some(range), Some(bound)) = (&index.range, c.value.as_f64()) else {
                        continue;
                    };
                    // A NaN bound compares Equal to every number under
                    // `Value::compare`; the sorted run cannot express that,
                    // so leave this condition to the scan filter.
                    if bound.is_nan() {
                        continue;
                    }
                    let mut ids: Vec<DocId> = Vec::new();
                    range.probe(c.op, range_key(bound), &mut ids);
                    // Non-numeric values compare by kind tag and may still
                    // satisfy the operator; keep them as candidates.
                    ids.extend_from_slice(&index.non_numeric);
                    sets.push(ids);
                }
                _ => {}
            }
        }
        if sets.is_empty() {
            return None;
        }
        // Smallest set first, then intersect the rest into it.
        sets.sort_by_key(Vec::len);
        let mut iter = sets.into_iter();
        let mut smallest = iter.next().expect("non-empty");
        for other in iter {
            let other: HashSet<DocId> = other.into_iter().collect();
            smallest.retain(|id| other.contains(id));
            if smallest.is_empty() {
                break;
            }
        }
        Some(smallest)
    }

    /// Group matching documents by a key path and aggregate value paths.
    ///
    /// Hash-grouped over the shard read guards: no full-document clones and
    /// no O(n·groups) linear bucket search — only the group keys and the
    /// aggregated leaf values are copied out. Groups keep first-seen order.
    pub fn aggregate(&self, query: &DocQuery, group: &GroupSpec) -> Vec<Value> {
        struct Bucket {
            key: Value,
            values: Vec<Vec<Value>>, // one list per aggregate
        }
        let mut buckets: Vec<Bucket> = Vec::new();
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();

        for (_, doc) in self.matching(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        }) {
            let key = doc.get_path(&group.key).unwrap_or(&Value::Null);
            let h = key.stable_hash();
            let slot = by_hash.entry(h).or_default();
            let idx = match slot.iter().find(|&&i| buckets[i].key == *key) {
                Some(&i) => i,
                None => {
                    buckets.push(Bucket {
                        key: key.clone(),
                        values: vec![Vec::new(); group.aggs.len()],
                    });
                    slot.push(buckets.len() - 1);
                    buckets.len() - 1
                }
            };
            for (a, agg) in group.aggs.iter().enumerate() {
                if let Some(v) = doc.get_path(&agg.path) {
                    buckets[idx].values[a].push(v.clone());
                }
            }
        }

        buckets
            .into_iter()
            .map(|b| {
                let mut out = Map::new();
                out.insert("_id".into(), b.key);
                for (agg, vals) in group.aggs.iter().zip(&b.values) {
                    out.insert(prov_model::Sym::from(agg.output_name()), agg.apply(vals));
                }
                Value::object(out)
            })
            .collect()
    }

    /// Distinct values of a path among matching documents, in first-seen
    /// order. Hash-set deduplication (the old engine was O(n²)
    /// `Vec::contains`).
    pub fn distinct(&self, query: &DocQuery, path: &str) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
        for (_, doc) in self.matching(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        }) {
            if let Some(v) = doc.get_path(path) {
                let slot = by_hash.entry(v.stable_hash()).or_default();
                if !slot.iter().any(|&i| out[i] == *v) {
                    out.push(v.clone());
                    slot.push(out.len() - 1);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Columnar sidecar (see `crate::columnar` for the design and the
    // exactness contract).
    // ------------------------------------------------------------------

    /// Populate the columnar sidecar: hot scalar fields of every current
    /// and future document are kept as per-shard typed column vectors
    /// (idempotent; existing documents are backfilled under the shard
    /// write locks).
    pub fn enable_columnar(&self) {
        // Every shard write lock is held across the flag flip AND the
        // backfill, so a concurrent batch insert either fully precedes
        // this (its documents are backfilled here) or fully follows it
        // (it re-reads the flag under the shard lock and appends aligned
        // columnar rows) — no interleaving can misalign slots.
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        if self.columnar.swap(true, Ordering::AcqRel) {
            return;
        }
        for shard in guards.iter_mut() {
            let shard = &mut **shard;
            for slot in shard.cols.len()..shard.docs.len() {
                let report = shard.cols.push_doc(&shard.docs[slot]);
                self.apply_columnar_report(report);
            }
        }
    }

    /// Whether the columnar sidecar is populated.
    pub fn columnar_enabled(&self) -> bool {
        self.columnar.load(Ordering::Acquire)
    }

    /// Whether a frame column can currently be served from the sidecar:
    /// the sidecar is enabled, the column is a hot field, and no ingested
    /// dataflow key has poisoned it.
    pub fn columnar_servable(&self, column: &str) -> bool {
        self.columnar_field(column).is_some()
    }

    fn columnar_field(&self, column: &str) -> Option<ColField> {
        if !self.columnar_enabled() {
            return None;
        }
        let f = columnar::lookup(column)?;
        (self.col_poison.load(Ordering::Acquire) & columnar::field_bit(f) == 0).then_some(f)
    }

    /// Corpus-wide presence of a servable column: how many decodable
    /// documents provide it (`None` when the column is not servable).
    /// Answers frame column *existence* without touching a document.
    pub fn columnar_presence(&self, column: &str) -> Option<usize> {
        let f = self.columnar_field(column)?;
        Some(self.shards.iter().map(|s| s.read().cols.present(f)).sum())
    }

    /// Evaluate a conjunction of `column op literal` filters over the
    /// column vectors and return the surviving decodable document ids in
    /// id (= insertion) order, truncated to `limit`.
    ///
    /// Semantics are the *frame* comparison rules ([`dataframe::cmp_matches`])
    /// on the decoded cell values, so survivors match exactly the rows a
    /// full-frame filter would keep. Index probes are used as candidate
    /// pre-filters when safe (equality/range conjuncts on regular
    /// pass-through fields), intersected smallest-first by the index layer;
    /// every candidate is still verified against the vectors. Returns
    /// `None` when any filter column is not servable.
    pub fn columnar_scan(
        &self,
        filters: &[(&str, CmpOp, &Value)],
        limit: Option<usize>,
    ) -> Option<Vec<DocId>> {
        let fields: Vec<(ColField, CmpOp, &Value)> = filters
            .iter()
            .map(|(col, op, lit)| Some((self.columnar_field(col)?, *op, *lit)))
            .collect::<Option<_>>()?;
        if !self.columnar_enabled() {
            return None; // zero-filter scans still need the sidecar
        }

        // Index hints: conjuncts whose raw document values agree with
        // their decoded frame values can seed the scan from the hash /
        // sorted indexes (the index layer skips non-indexed paths and
        // intersects the rest smallest-first). `!=` can never hint.
        let irregular = self.col_irregular.load(Ordering::Acquire);
        let hints: Vec<Condition> = fields
            .iter()
            .filter(|(f, _, _)| columnar::hint_safe(*f, irregular))
            .filter_map(|(f, op, lit)| {
                let op = match op {
                    CmpOp::Eq => Op::Eq,
                    CmpOp::Lt => Op::Lt,
                    CmpOp::Le => Op::Lte,
                    CmpOp::Gt => Op::Gt,
                    CmpOp::Ge => Op::Gte,
                    CmpOp::Ne => return None,
                };
                Some(Condition {
                    path: columnar::field_name(*f).to_string(),
                    op,
                    value: (*lit).clone(),
                })
            })
            .collect();
        // Candidate generation may take the index write lock (range-log
        // merge); do it before the shard guards to respect lock order.
        let cand = self.candidates(&hints);

        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let survives = |shard: &Shard, slot: usize| {
            shard.cols.is_decodable(slot)
                && fields
                    .iter()
                    .all(|(f, op, lit)| shard.cols.matches(slot, *f, *op, lit))
        };
        let mut out: Vec<DocId> = Vec::new();
        let full = |out: &Vec<DocId>| limit.is_some_and(|n| out.len() >= n);
        match cand {
            Some(mut ids) => {
                ids.sort_unstable();
                ids.dedup();
                for id in ids {
                    let shard = &guards[id % nshards];
                    if survives(shard, id / nshards) {
                        out.push(id);
                        if full(&out) {
                            break;
                        }
                    }
                }
            }
            None => {
                // Slot-major over the shards: ids are `slot * n + shard`,
                // so this order is globally ascending and a pushed limit
                // can stop the scan early.
                let max_slots = guards.iter().map(|g| g.cols.len()).max().unwrap_or(0);
                'scan: for slot in 0..max_slots {
                    for (s, g) in guards.iter().enumerate() {
                        if slot < g.cols.len() && survives(g, slot) {
                            out.push(slot * nshards + s);
                            if full(&out) {
                                break 'scan;
                            }
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// The frame cells of a servable column for the given document ids, in
    /// order (`Null` where a row does not provide the column). `None` when
    /// the column is not servable.
    pub fn columnar_gather(&self, ids: &[DocId], column: &str) -> Option<Vec<Value>> {
        let f = self.columnar_field(column)?;
        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        Some(
            ids.iter()
                .map(|id| guards[id % nshards].cols.value(id / nshards, f))
                .collect(),
        )
    }

    /// Fetch documents by id, preserving order. Ids must come from a scan
    /// of this (append-only) store, so every id resolves.
    pub fn docs_for_ids(&self, ids: &[DocId]) -> Vec<Arc<Value>> {
        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        ids.iter()
            .map(|id| {
                guards[id % nshards]
                    .docs
                    .get(id / nshards)
                    .cloned()
                    .expect("scanned id resolves in an append-only store")
            })
            .collect()
    }
}

fn index_insert(index: &mut FieldIndex, id: DocId, value: &Value) {
    match index.eq.entry(value.stable_hash()) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(id),
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(IdList::One(id));
        }
    }
    if let Some(range) = &mut index.range {
        match value.as_f64() {
            // NaN has no place in a total order (`Value::compare` calls
            // mixed NaN comparisons Equal, so a NaN doc satisfies Lte AND
            // Gte); park it with the non-numeric catch-all candidates.
            Some(f) if !f.is_nan() => range.push(range_key(f), id),
            _ => index.non_numeric.push(id),
        }
    }
}

fn project(doc: Arc<Value>, projection: &[String]) -> Arc<Value> {
    if projection.is_empty() {
        return doc;
    }
    let mut out = Map::new();
    for p in projection {
        if let Some(v) = doc.get_path(p) {
            out.insert(prov_model::Sym::from(p.as_str()), v.clone());
        }
    }
    Arc::new(Value::object(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggOp, Aggregate};
    use prov_model::obj;

    fn store() -> DocumentStore {
        let s = DocumentStore::new();
        for (i, (act, host, dur)) in [
            ("run_dft", "n0", 5.0),
            ("postprocess", "n0", 1.0),
            ("run_dft", "n1", 7.0),
            ("run_dft", "n1", 3.0),
        ]
        .iter()
        .enumerate()
        {
            s.insert(obj! {
                "task_id" => format!("t{i}"),
                "activity_id" => *act,
                "hostname" => *host,
                "generated" => obj! { "duration" => *dur },
            });
        }
        s
    }

    #[test]
    fn filter_and_project() {
        let s = store();
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .project(&["task_id", "generated.duration"]);
        let out = s.find(&q);
        assert_eq!(out.len(), 3);
        assert!(out[0].get("task_id").is_some());
        assert!(out[0].get("activity_id").is_none());
    }

    #[test]
    fn sort_and_limit() {
        let s = store();
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .sort_by("generated.duration", false)
            .limit(1);
        let out = s.find(&q);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].get_path("generated.duration").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn range_ops() {
        let s = store();
        let q = DocQuery::new().filter("generated.duration", Op::Gte, 3.0);
        assert_eq!(s.count(&q), 3);
        let q = DocQuery::new().filter("hostname", Op::Ne, "n0");
        assert_eq!(s.count(&q), 2);
        let q = DocQuery::new().filter("activity_id", Op::Contains, "dft");
        assert_eq!(s.count(&q), 3);
    }

    #[test]
    fn indexes_accelerate_equality() {
        let s = store();
        s.create_index("hostname");
        let q = DocQuery::new().filter("hostname", Op::Eq, "n1");
        assert_eq!(s.count(&q), 2);
        // Index also maintained for inserts after creation.
        s.insert(obj! {"task_id" => "t9", "hostname" => "n1"});
        assert_eq!(s.count(&q), 3);
    }

    #[test]
    fn multiple_indexed_eq_conditions_intersect() {
        let s = store();
        s.create_index("hostname");
        s.create_index("activity_id");
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .filter("hostname", Op::Eq, "n0");
        assert_eq!(s.count(&q), 1);
        let hits = s.find(&q);
        assert_eq!(hits[0].get("task_id").and_then(Value::as_str), Some("t0"));
    }

    #[test]
    fn range_index_serves_range_predicates() {
        let s = store();
        s.create_range_index("generated.duration");
        for (op, expect) in [(Op::Gte, 3), (Op::Gt, 2), (Op::Lte, 2), (Op::Lt, 1)] {
            let q = DocQuery::new().filter("generated.duration", op, 3.0);
            assert_eq!(s.count(&q), expect, "{op:?}");
        }
        // Inserts after creation keep the sorted index live.
        s.insert(obj! {"generated" => obj! {"duration" => 9.5}});
        assert_eq!(
            s.count(&DocQuery::new().filter("generated.duration", Op::Gt, 7.0)),
            1
        );
        // Mixed-kind values are not lost to the numeric index.
        s.insert(obj! {"generated" => obj! {"duration" => "n/a"}});
        assert_eq!(
            s.count(&DocQuery::new().filter("generated.duration", Op::Gt, 7.0)),
            2 // 9.5 and the string (Str kind sorts above Float)
        );
    }

    #[test]
    fn range_index_handles_nan_and_signed_zero() {
        let indexed = DocumentStore::new();
        indexed.create_range_index("y");
        let plain = DocumentStore::new();
        for v in [
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Int(0),
            Value::Float(1.5),
        ] {
            let mut m = Map::new();
            m.insert("y".into(), v);
            indexed.insert(Value::object(m.clone()));
            plain.insert(Value::object(m));
        }
        // Indexed and unindexed stores must agree for every operator and
        // for zero / NaN bounds (compare() calls NaN comparisons Equal).
        for op in [Op::Gte, Op::Gt, Op::Lte, Op::Lt] {
            for bound in [
                Value::Float(0.0),
                Value::Float(-0.0),
                Value::Float(f64::NAN),
            ] {
                let q = DocQuery::new().filter("y", op, bound.clone());
                assert_eq!(indexed.count(&q), plain.count(&q), "{op:?} {bound:?}");
                // Compare rendered docs: NaN != NaN under PartialEq, but
                // both stores must return the same documents.
                assert_eq!(
                    format!("{:?}", indexed.find(&q)),
                    format!("{:?}", plain.find(&q)),
                    "{op:?} {bound:?}"
                );
            }
        }
    }

    #[test]
    fn find_returns_shared_handles() {
        let s = store();
        let a = s.find(&DocQuery::new().filter("task_id", Op::Eq, "t0"));
        let b = s.find(&DocQuery::new().filter("task_id", Op::Eq, "t0"));
        // Same allocation, not a deep clone.
        assert!(Arc::ptr_eq(&a[0], &b[0]));
    }

    #[test]
    fn ids_preserve_insertion_order_across_shards() {
        let s = DocumentStore::with_shards(4);
        for i in 0..10 {
            s.insert(obj! {"i" => i});
        }
        let out = s.find(&DocQuery::new());
        let got: Vec<i64> = out.iter().filter_map(|d| d.get("i")?.as_i64()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(s.get(7).unwrap().get("i").unwrap().as_i64(), Some(7));
    }

    #[test]
    fn aggregation_pipeline() {
        let s = store();
        let out = s.aggregate(
            &DocQuery::new(),
            &GroupSpec {
                key: "activity_id".into(),
                aggs: vec![
                    Aggregate {
                        path: "generated.duration".into(),
                        op: AggOp::Mean,
                    },
                    Aggregate {
                        path: "generated.duration".into(),
                        op: AggOp::Count,
                    },
                ],
            },
        );
        assert_eq!(out.len(), 2);
        let dft = out
            .iter()
            .find(|v| v.get("_id").and_then(Value::as_str) == Some("run_dft"))
            .unwrap();
        assert_eq!(
            dft.get("generated.duration_mean").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(
            dft.get("generated.duration_count").unwrap().as_i64(),
            Some(3)
        );
    }

    #[test]
    fn distinct_values() {
        let s = store();
        let hosts = s.distinct(&DocQuery::new(), "hostname");
        assert_eq!(hosts.len(), 2);
    }

    #[test]
    fn shard_override_parses_and_caps() {
        assert_eq!(shard_override(None), None);
        assert_eq!(shard_override(Some("4")), Some(4));
        assert_eq!(shard_override(Some(" 16 ")), Some(16));
        assert_eq!(
            shard_override(Some("64")),
            Some(16),
            "capped like auto-tuning"
        );
        assert_eq!(shard_override(Some("0")), None);
        assert_eq!(shard_override(Some("-2")), None);
        assert_eq!(shard_override(Some("lots")), None);
    }

    fn task_docs(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| {
                prov_model::TaskMessageBuilder::new(format!("t{i}"), format!("wf-{}", i % 2), "act")
                    .status(if i % 3 == 0 {
                        prov_model::TaskStatus::Error
                    } else {
                        prov_model::TaskStatus::Finished
                    })
                    .span(i as f64, i as f64 + 1.0)
                    .build()
                    .to_value()
            })
            .collect()
    }

    #[test]
    fn columnar_scan_filters_in_id_order_with_limit() {
        let s = DocumentStore::with_shards(3);
        s.enable_columnar();
        s.insert_many(task_docs(12));
        let err = Value::from("ERROR");
        let ids = s
            .columnar_scan(&[("status", CmpOp::Eq, &err)], None)
            .unwrap();
        assert_eq!(ids, vec![0, 3, 6, 9]);
        let ids = s
            .columnar_scan(&[("status", CmpOp::Eq, &err)], Some(2))
            .unwrap();
        assert_eq!(ids, vec![0, 3]);
        // Gather returns the frame cells for those ids, in order.
        let vals = s.columnar_gather(&ids, "task_id").unwrap();
        assert_eq!(vals, vec![Value::from("t0"), Value::from("t3")]);
        // Non-columnar columns are not servable.
        assert!(s.columnar_scan(&[("y", CmpOp::Eq, &err)], None).is_none());
        assert!(s.columnar_gather(&ids, "y").is_none());
    }

    #[test]
    fn columnar_backfill_equals_ingest_population() {
        let docs = task_docs(10);
        let eager = DocumentStore::with_shards(4);
        eager.enable_columnar();
        eager.insert_many(docs.clone());
        let late = DocumentStore::with_shards(4);
        late.insert_many(docs);
        late.enable_columnar(); // backfills under the shard locks
        for col in ["task_id", "status", "started_at", "duration"] {
            assert_eq!(
                eager.columnar_presence(col),
                late.columnar_presence(col),
                "{col}"
            );
        }
        let fin = Value::from("FINISHED");
        assert_eq!(
            eager.columnar_scan(&[("status", CmpOp::Eq, &fin)], None),
            late.columnar_scan(&[("status", CmpOp::Eq, &fin)], None),
        );
    }

    #[test]
    fn columnar_scan_uses_index_candidates_when_safe() {
        let s = DocumentStore::with_shards(2);
        s.create_index("workflow_id");
        s.enable_columnar();
        s.insert_many(task_docs(8));
        let wf = Value::from("wf-1");
        let ids = s
            .columnar_scan(&[("workflow_id", CmpOp::Eq, &wf)], None)
            .unwrap();
        assert_eq!(ids, vec![1, 3, 5, 7]);
        // Combined with an unindexed conjunct: the probe seeds, the
        // vectors verify.
        let bound = Value::Float(4.0);
        let ids = s
            .columnar_scan(
                &[
                    ("workflow_id", CmpOp::Eq, &wf),
                    ("started_at", CmpOp::Gt, &bound),
                ],
                None,
            )
            .unwrap();
        assert_eq!(ids, vec![5, 7]);
    }

    #[test]
    fn batch_insert_takes_one_pass() {
        let s = DocumentStore::with_shards(3);
        s.create_index("k");
        let batch: Vec<Value> = (0..100).map(|i| obj! {"k" => i % 5}).collect();
        assert_eq!(s.insert_many(batch), 100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.count(&DocQuery::new().filter("k", Op::Eq, 3)), 20);
    }
}
