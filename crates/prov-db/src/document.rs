//! Document store — the MongoDB-shaped backend ("filtering and
//! aggregation", §2.3), rebuilt as a sharded, clone-free engine.
//!
//! Documents live as [`Arc<Value>`] in N independently locked shards, so
//! concurrent writers no longer serialize on one `RwLock<Vec<Value>>` and
//! `find`/`get` hand back shared handles instead of deep clones. Index keys
//! are content hashes ([`Value::stable_hash`]) rather than rendered
//! `String`s, so neither inserts nor probes allocate; equality conditions
//! intersect every available index (smallest set first), and range
//! predicates (`Gt`/`Gte`/`Lt`/`Lte`) can be served from a sorted numeric
//! index on hot fields such as `started_at`.
//!
//! Document ids interleave across shards: the document in shard `s` at
//! slot `k` has id `k * nshards + s`. Ids assigned by a single thread are
//! dense and ascending, and every query sorts its hits by id, so results
//! keep insertion order exactly as the single-lock engine did.

use crate::columnar::{self, ColField, ColumnarShard};
use crate::pager::{ColdShard, PagerCore, PagerStats};
use crate::query::{Condition, DocQuery, GroupSpec, Op};
use dataframe::CmpOp;
use parking_lot::RwLock;
use prov_model::{Map, Value};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicUsize, Ordering};
use std::sync::Arc;

/// Stable document id: `slot * nshards + shard`.
pub type DocId = usize;

/// Pass-through hasher for maps keyed by an already-mixed
/// [`Value::stable_hash`]: re-hashing a good 64-bit hash through SipHash
/// would only burn ingest cycles.
#[derive(Default)]
pub(crate) struct PrehashedKey(u64);

impl Hasher for PrehashedKey {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
    fn write(&mut self, bytes: &[u8]) {
        // Not used for u64 keys; keep a real hash as a safety net.
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

pub(crate) type PrehashedMap<V> = HashMap<u64, V, BuildHasherDefault<PrehashedKey>>;

/// Posting list that avoids a heap `Vec` for unique keys — on a store
/// indexed by `task_id`, every key is unique, so the old
/// one-`Vec`-per-key layout paid one allocation per ingested document.
enum IdList {
    One(DocId),
    Many(Vec<DocId>),
}

impl IdList {
    fn push(&mut self, id: DocId) {
        match self {
            IdList::One(first) => *self = IdList::Many(vec![*first, id]),
            IdList::Many(v) => v.push(id),
        }
    }

    fn to_vec(&self) -> Vec<DocId> {
        match self {
            IdList::One(id) => vec![*id],
            IdList::Many(v) => v.clone(),
        }
    }
}

/// Log-structured sorted numeric index: appends are O(1) on the ingest
/// path; the first range probe after a write burst merges the pending run
/// into the sorted run (amortized, like an LSM memtable flush).
#[derive(Default)]
struct RangeLog {
    /// `(order-encoded f64, doc id)`, sorted by key.
    sorted: Vec<(u64, DocId)>,
    /// Unmerged appends in arrival order.
    pending: Vec<(u64, DocId)>,
}

impl RangeLog {
    fn push(&mut self, key: u64, id: DocId) {
        self.pending.push((key, id));
    }

    fn merge(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.sorted.append(&mut self.pending);
        // pdqsort is near-linear on the mostly-sorted runs ingest produces.
        self.sorted.sort_unstable();
    }

    /// Ids with key satisfying `op bound` (callers merged `pending` first).
    fn probe(&self, op: Op, bound: u64, out: &mut Vec<DocId>) {
        let range = match op {
            Op::Gte => self.sorted.partition_point(|(k, _)| *k < bound)..self.sorted.len(),
            Op::Gt => self.sorted.partition_point(|(k, _)| *k <= bound)..self.sorted.len(),
            Op::Lte => 0..self.sorted.partition_point(|(k, _)| *k <= bound),
            Op::Lt => 0..self.sorted.partition_point(|(k, _)| *k < bound),
            _ => unreachable!("probe is only called for range operators"),
        };
        out.extend(self.sorted[range].iter().map(|(_, id)| *id));
    }
}

/// Indexes for one dotted field path.
#[derive(Default)]
struct FieldIndex {
    /// `stable_hash(value)` → ids of docs holding that value at the path.
    /// Hash collisions are harmless: every candidate is still checked with
    /// `DocQuery::matches` before it can reach a result set.
    eq: PrehashedMap<IdList>,
    /// Sorted numeric index (present only after `create_range_index`).
    range: Option<RangeLog>,
    /// Docs whose value at this path is non-numeric; unioned into every
    /// range-index candidate set because mixed-kind comparisons can still
    /// satisfy range operators (kind-tag ordering in `Value::compare`).
    non_numeric: Vec<DocId>,
}

/// Order-preserving encoding of an `f64` into sortable `u64` bits.
/// `-0.0` canonicalizes to `+0.0` first — `Value::compare` treats them as
/// equal, so they must share a key or range probes on a zero bound would
/// drop documents an unindexed scan returns. NaN never reaches this
/// function (NaN-valued docs go to the `non_numeric` catch-all instead).
fn range_key(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// One shard: its documents plus the slot-aligned columnar sidecar (the
/// sidecar stays empty until [`DocumentStore::enable_columnar`]).
///
/// A lazily opened durable store additionally carries a `cold` prefix:
/// shard slots `[0, cold.rows())` live in sealed segment files and are
/// paged on demand (see [`crate::pager`]); `docs`/`cols` then hold only
/// the rows from `cold.rows()` upward, and all slot arithmetic in this
/// module goes through [`Shard::cold_rows`].
#[derive(Default)]
struct Shard {
    docs: Vec<Arc<Value>>,
    cols: ColumnarShard,
    cold: Option<ColdShard>,
}

impl Shard {
    /// Rows of the sealed on-disk prefix (0 for in-memory stores).
    fn cold_rows(&self) -> usize {
        self.cold.as_ref().map_or(0, |c| c.rows())
    }

    /// Total rows of the shard: cold prefix plus resident tail.
    fn total_rows(&self) -> usize {
        self.cold_rows() + self.docs.len()
    }
}

/// A cursor for id-ordered walks over one shard that may have a cold
/// prefix: keeps the current paged chunk resident between calls so a
/// slot-major sweep pages each chunk exactly once.
struct ShardCursor<'g> {
    shard: &'g Shard,
    cur: Option<(usize, Arc<crate::pager::PagedChunk>)>,
}

impl<'g> ShardCursor<'g> {
    fn new(shard: &'g Shard) -> Self {
        Self { shard, cur: None }
    }

    /// Document at `slot` (shard-global), if the shard has one there.
    fn doc(&mut self, slot: usize) -> Option<&Arc<Value>> {
        let cold_rows = self.shard.cold_rows();
        if slot < cold_rows {
            let cold = self
                .shard
                .cold
                .as_ref()
                .expect("cold rows imply cold shard");
            let c = slot / cold.chunk_rows();
            if self.cur.as_ref().map(|(i, _)| *i) != Some(c) {
                self.cur = Some((c, cold.chunk(c)));
            }
            let (_, chunk) = self.cur.as_ref().expect("chunk just pinned");
            chunk.docs.get(slot % cold.chunk_rows())
        } else {
            self.shard.docs.get(slot - cold_rows)
        }
    }
}

/// Parse a capped-count env override (`PROVDB_SHARDS`, `PROVDB_THREADS`):
/// a positive integer, capped at 16 like the auto-tuned counts. `None`
/// leaves auto-tuning in effect.
fn cap_override(raw: Option<&str>) -> Option<usize> {
    raw?.trim()
        .parse::<usize>()
        .ok()
        .filter(|n| *n >= 1)
        .map(|n| n.min(16))
}

/// Scan-thread count: the `PROVDB_THREADS` env override when set (capped
/// at 16, like `PROVDB_SHARDS`), otherwise one per available core (capped
/// at 16). `1` — forced or detected — selects the exact sequential scan
/// path; parallel shard scans only engage above it.
pub(crate) fn resolve_threads() -> usize {
    let threads = std::env::var("PROVDB_THREADS").ok();
    cap_override(threads.as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 16)
    })
}

/// Row count below which parallel shard scans stay sequential (thread
/// startup would dominate) — the same threshold the frame kernels use.
const PARALLEL_SCAN_THRESHOLD: usize = dataframe::parallel::PARALLEL_THRESHOLD;

/// An in-memory JSON document collection, sharded for write concurrency.
pub struct DocumentStore {
    shards: Box<[RwLock<Shard>]>,
    /// Round-robin distribution counter (not an id source: ids derive from
    /// the slot a document actually lands in).
    router: AtomicUsize,
    indexes: RwLock<HashMap<String, FieldIndex>>,
    /// Whether the columnar sidecar is populated (see `crate::columnar`).
    columnar: AtomicBool,
    /// Columnar fields whose raw document values diverged from their
    /// decoded frame values (index hints disabled; see `crate::columnar`).
    col_irregular: AtomicU16,
    /// Columnar fields shadowed by a dataflow key (no longer servable).
    col_poison: AtomicU16,
    /// Worker count for shard-parallel scans (see [`resolve_threads`]);
    /// `1` takes the exact sequential path.
    scan_threads: AtomicUsize,
    /// Whether any shard carries a cold on-disk prefix (set once by
    /// [`DocumentStore::attach_cold`]). When set, the field indexes and
    /// per-code fast paths — which only see resident rows — are bypassed
    /// in favor of full chunk-major scans that page cold chunks through
    /// the zone maps.
    cold_attached: AtomicBool,
    /// The chunk pager shared by all cold shards (for stats).
    pager: std::sync::OnceLock<Arc<PagerCore>>,
}

impl Default for DocumentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentStore {
    /// Empty collection with one shard per available core (capped at 16).
    /// The `PROVDB_SHARDS` environment variable overrides the auto-tuned
    /// count (CI's shard-matrix leg forces 1 and 16 so shard-count-
    /// sensitive paths are exercised on single-core runners), and
    /// `PROVDB_THREADS` likewise overrides the scan-worker count (CI's
    /// thread-matrix leg forces 1 and 8 so both the sequential fallback
    /// and the parallel shard scan run on every PR).
    pub fn new() -> Self {
        let shards = std::env::var("PROVDB_SHARDS").ok();
        let n = cap_override(shards.as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8)
                .clamp(1, 16)
        });
        Self::with_shards(n)
    }

    /// Empty collection with an explicit shard count (≥ 1). Query results
    /// are shard-count-invariant; the count only tunes write concurrency.
    /// The scan-thread count is still auto-resolved (env override honored).
    pub fn with_shards(nshards: usize) -> Self {
        let nshards = nshards.max(1);
        Self {
            shards: (0..nshards)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            router: AtomicUsize::new(0),
            indexes: RwLock::new(HashMap::new()),
            columnar: AtomicBool::new(false),
            col_irregular: AtomicU16::new(0),
            col_poison: AtomicU16::new(0),
            scan_threads: AtomicUsize::new(resolve_threads()),
            cold_attached: AtomicBool::new(false),
            pager: std::sync::OnceLock::new(),
        }
    }

    /// Whether any shard carries a cold on-disk prefix.
    fn has_cold(&self) -> bool {
        self.cold_attached.load(Ordering::Acquire)
    }

    /// Attach the sealed on-disk prefixes of a lazily opened store —
    /// one [`ColdShard`] per shard, all sharing `core`. Must run before
    /// any resident row is inserted (the lazy open path attaches first,
    /// then materializes the WAL tail), so every resident slot sits
    /// above the cold prefix.
    pub(crate) fn attach_cold(&self, core: Arc<PagerCore>, cold: Vec<ColdShard>) {
        assert_eq!(cold.len(), self.shards.len(), "one cold prefix per shard");
        for (lock, shard_cold) in self.shards.iter().zip(cold) {
            let mut guard = lock.write();
            assert!(guard.docs.is_empty(), "cold prefix attaches before ingest");
            guard.cold = Some(shard_cold);
        }
        let _ = self.pager.set(core);
        self.cold_attached.store(true, Ordering::Release);
    }

    /// Pager counters (all zeros when no cold prefix is attached).
    pub fn pager_stats(&self) -> PagerStats {
        self.pager.get().map(|p| p.stats()).unwrap_or_default()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker count shard-parallel scans use (`1` = sequential path).
    pub fn scan_threads(&self) -> usize {
        self.scan_threads.load(Ordering::Relaxed)
    }

    /// Pin the scan-worker count (clamped to 1..=16), overriding the
    /// auto-detected / `PROVDB_THREADS` value — scan results are
    /// thread-count-invariant, so this only tunes read concurrency
    /// (benchmarks and tests pin exact configurations with it).
    pub fn set_scan_threads(&self, threads: usize) {
        self.scan_threads
            .store(threads.clamp(1, 16), Ordering::Relaxed);
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().total_rows()).sum()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().total_rows() == 0)
    }

    /// Insert one document; returns its id.
    pub fn insert(&self, doc: impl Into<Arc<Value>>) -> DocId {
        self.insert_many_shared(vec![doc.into()])
            .expect("one doc inserted")
    }

    /// Bulk insert of owned documents; returns how many were stored.
    pub fn insert_many(&self, batch: Vec<Value>) -> usize {
        let n = batch.len();
        self.insert_many_shared(batch.into_iter().map(Arc::new).collect());
        n
    }

    /// The true batch path: distribute a batch round-robin over the shards,
    /// taking each shard's write lock **once**, then update every index
    /// under a single index-lock acquisition. Returns the id of the first
    /// inserted document (`None` for an empty batch).
    ///
    /// Lock order is indexes → shards, matching the readers, so an indexed
    /// probe never observes a document that is missing its index entries.
    pub fn insert_many_shared(&self, batch: Vec<Arc<Value>>) -> Option<DocId> {
        if batch.is_empty() {
            return None;
        }
        let nshards = self.shards.len();
        let base = self.router.fetch_add(batch.len(), Ordering::Relaxed);

        // Partition round-robin, preserving batch order within each shard.
        // Columnar extraction is pure, so it runs here, before any lock is
        // taken — the global index lock below must not serialize ingest on
        // per-document decode work. The flag read is only a hint: the
        // authoritative check happens under each shard's write lock (see
        // `enable_columnar`), and a batch that raced an enable extracts
        // the few unprepared rows inline there.
        let columnar_hint = self.columnar.load(Ordering::Acquire);
        type Prepared = (Arc<Value>, Option<columnar::ExtractedRow>);
        let mut per_shard: Vec<Vec<Prepared>> = (0..nshards).map(|_| Vec::new()).collect();
        for (i, doc) in batch.into_iter().enumerate() {
            let row = columnar_hint.then(|| columnar::extract(&doc));
            per_shard[(base + i) % nshards].push((doc, row));
        }

        let mut indexes = self.indexes.write();
        let mut first: Option<DocId> = None;
        for (s, docs) in per_shard.into_iter().enumerate() {
            if docs.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write();
            let columnar = self.columnar.load(Ordering::Acquire);
            for (doc, row) in docs {
                let id = (shard.cold_rows() + shard.docs.len()) * nshards + s;
                first = Some(first.map_or(id, |f| f.min(id)));
                for (path, index) in indexes.iter_mut() {
                    if let Some(v) = doc.get_path(path) {
                        index_insert(index, id, v);
                    }
                }
                if columnar {
                    let row = row.unwrap_or_else(|| columnar::extract(&doc));
                    self.apply_columnar_report(shard.cols.push_row(row));
                }
                shard.docs.push(doc);
            }
        }
        first
    }

    pub(crate) fn apply_columnar_report(&self, report: columnar::PushReport) {
        if report.irregular != 0 {
            self.col_irregular
                .fetch_or(report.irregular, Ordering::Release);
        }
        if report.poison != 0 {
            self.col_poison.fetch_or(report.poison, Ordering::Release);
        }
    }

    /// Create a hash index over a dotted field path (idempotent).
    pub fn create_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        if indexes.contains_key(path) {
            return;
        }
        let mut index = FieldIndex::default();
        self.for_each_doc(|id, doc| {
            if let Some(v) = doc.get_path(path) {
                index_insert(&mut index, id, v);
            }
        });
        indexes.insert(path.to_string(), index);
    }

    /// Add a sorted numeric index over a dotted field path so range
    /// predicates (`Gt`/`Gte`/`Lt`/`Lte`) become index probes instead of
    /// full scans. Implies the hash index; idempotent.
    pub fn create_range_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        let index = indexes.entry(path.to_string()).or_default();
        if index.range.is_some() {
            return;
        }
        // Rebuild from scratch: existing docs need range entries even if the
        // hash side of the index already covered them.
        let mut rebuilt = FieldIndex {
            range: Some(RangeLog::default()),
            ..FieldIndex::default()
        };
        self.for_each_doc(|id, doc| {
            if let Some(v) = doc.get_path(path) {
                index_insert(&mut rebuilt, id, v);
            }
        });
        indexes.insert(path.to_string(), rebuilt);
    }

    /// Visit every document as `(id, &doc)` in shard order (used for index
    /// builds; callers hold the index write lock, honoring lock order).
    /// Cold chunks page in sequentially — index builds on a lazily opened
    /// store are possible but the indexes are never consulted there
    /// (see [`candidates`](Self::candidates)).
    fn for_each_doc(&self, mut f: impl FnMut(DocId, &Arc<Value>)) {
        let nshards = self.shards.len();
        for (s, shard) in self.shards.iter().enumerate() {
            let shard = shard.read();
            let cold_rows = shard.cold_rows();
            if let Some(cold) = &shard.cold {
                for c in 0..cold.n_chunks() {
                    let chunk = cold.chunk(c);
                    let base = c * cold.chunk_rows();
                    for (r, doc) in chunk.docs.iter().enumerate() {
                        f((base + r) * nshards + s, doc);
                    }
                }
            }
            for (slot, doc) in shard.docs.iter().enumerate() {
                f((cold_rows + slot) * nshards + s, doc);
            }
        }
    }

    /// Visit every document in id order across shards (slot-major). Used
    /// by the deferred KV/graph hydration of a lazily opened store, which
    /// must replay arrival order exactly (ids equal arrival indexes).
    pub(crate) fn for_each_doc_in_id_order(&self, mut f: impl FnMut(&Arc<Value>)) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut cursors: Vec<ShardCursor<'_>> =
            guards.iter().map(|g| ShardCursor::new(g)).collect();
        let max_slots = guards.iter().map(|g| g.total_rows()).max().unwrap_or(0);
        for slot in 0..max_slots {
            for cursor in cursors.iter_mut() {
                if let Some(doc) = cursor.doc(slot) {
                    f(doc);
                }
            }
        }
    }

    /// Fetch a document by id as a shared handle (no clone of the payload).
    pub fn get(&self, id: DocId) -> Option<Arc<Value>> {
        let nshards = self.shards.len();
        let shard = self.shards[id % nshards].read();
        let slot = id / nshards;
        let cold_rows = shard.cold_rows();
        if slot < cold_rows {
            let cold = shard.cold.as_ref().expect("cold rows imply cold shard");
            return Some(cold.doc(slot));
        }
        shard.docs.get(slot - cold_rows).cloned()
    }

    /// Run a query: filter → sort → limit → project. Results are shared
    /// handles; only projections materialize new documents.
    pub fn find(&self, query: &DocQuery) -> Vec<Arc<Value>> {
        let mut hits = self.matching(query);
        if let Some((path, ascending)) = &query.sort {
            // Stable sort over id-ordered hits: ties keep insertion order,
            // exactly like the single-lock engine.
            hits.sort_by(|(_, a), (_, b)| {
                let va = a.get_path(path).unwrap_or(&Value::Null);
                let vb = b.get_path(path).unwrap_or(&Value::Null);
                let o = va.compare(vb);
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            });
        }
        if let Some(n) = query.limit {
            hits.truncate(n);
        }
        hits.into_iter()
            .map(|(_, doc)| project(doc, &query.projection))
            .collect()
    }

    /// Count matching documents without materializing them.
    pub fn count(&self, query: &DocQuery) -> usize {
        match self.candidates(&query.conditions) {
            Some(ids) => {
                let nshards = self.shards.len();
                let mut n = 0;
                let mut ids = ids;
                ids.sort_unstable();
                let mut i = 0;
                while i < ids.len() {
                    let s = ids[i] % nshards;
                    let shard = self.shards[s].read();
                    while i < ids.len() && ids[i] % nshards == s {
                        if let Some(doc) = shard.docs.get(ids[i] / nshards) {
                            if query.matches(doc) {
                                n += 1;
                            }
                        }
                        i += 1;
                    }
                }
                n
            }
            None => {
                let mut n = 0;
                for shard in self.shards.iter() {
                    let shard = shard.read();
                    if let Some(cold) = &shard.cold {
                        for c in 0..cold.n_chunks() {
                            let chunk = cold.chunk(c);
                            n += chunk.docs.iter().filter(|d| query.matches(d)).count();
                        }
                    }
                    n += shard.docs.iter().filter(|d| query.matches(d)).count();
                }
                n
            }
        }
    }

    /// Per-shard row counts, read under the shard locks — the row
    /// high-water mark a [`StoreSnapshot`](crate::StoreSnapshot) pins.
    /// Shards are append-only, so ids `slot * nshards + s` with
    /// `slot < rows[s]` name exactly the documents that existed when the
    /// counts were taken.
    pub fn shard_rows(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().total_rows()).collect()
    }

    /// Export one shard's rows `[start, end)` for segment sealing: the
    /// document handles plus the serialized chunk zone maps covering
    /// exactly those rows (see [`crate::segment`]). One read-lock
    /// acquisition; rows below `end` are immutable (append-only shards)
    /// and `end` sits on a chunk boundary, so everything copied here is
    /// frozen. `None` when the range is not chunk-aligned or the
    /// columnar sidecar does not cover it (never the case behind the
    /// facade, which enables the sidecar at construction).
    pub(crate) fn seal_export(
        &self,
        shard: usize,
        start: usize,
        end: usize,
    ) -> Option<(Vec<Arc<Value>>, crate::segment::ZoneTables)> {
        let guard = self.shards[shard].read();
        // `start`/`end` are shard-global rows; the sealer only exports
        // resident rows (the seal watermark never regresses below the
        // cold prefix), so translate into the resident tail.
        let cold_rows = guard.cold_rows();
        if start < cold_rows {
            return None;
        }
        let (lo, hi) = (start - cold_rows, end - cold_rows);
        if guard.docs.len() < hi || guard.cols.len() < hi {
            return None;
        }
        let mut zones = guard.cols.export_zone_tables(lo, hi)?;
        // Stamp the store-wide pushdown masks into the footer so a lazy
        // open recovers them without re-extracting the sealed rows.
        zones.irregular = self.col_irregular.load(Ordering::Acquire);
        zones.poison = self.col_poison.load(Ordering::Acquire);
        Some((guard.docs[lo..hi].to_vec(), zones))
    }

    /// [`find`](DocumentStore::find) restricted to the documents below a
    /// per-shard row bound (as captured by [`shard_rows`]). Rows appended
    /// after the bound was taken are invisible; everything else —
    /// filter semantics, stable sort, limit, projection — is identical.
    ///
    /// [`shard_rows`]: DocumentStore::shard_rows
    pub fn find_bounded(&self, query: &DocQuery, bound: &[usize]) -> Vec<Arc<Value>> {
        let nshards = self.shards.len();
        debug_assert_eq!(bound.len(), nshards);
        let mut hits = self.matching(query);
        hits.retain(|(id, _)| id / nshards < bound[id % nshards]);
        if let Some((path, ascending)) = &query.sort {
            hits.sort_by(|(_, a), (_, b)| {
                let va = a.get_path(path).unwrap_or(&Value::Null);
                let vb = b.get_path(path).unwrap_or(&Value::Null);
                let o = va.compare(vb);
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            });
        }
        if let Some(n) = query.limit {
            hits.truncate(n);
        }
        hits.into_iter()
            .map(|(_, doc)| project(doc, &query.projection))
            .collect()
    }

    /// [`count`](DocumentStore::count) restricted to the documents below a
    /// per-shard row bound.
    pub fn count_bounded(&self, query: &DocQuery, bound: &[usize]) -> usize {
        let nshards = self.shards.len();
        debug_assert_eq!(bound.len(), nshards);
        self.matching(query)
            .iter()
            .filter(|(id, _)| id / nshards < bound[id % nshards])
            .count()
    }

    /// Matching `(id, doc)` pairs in id (= insertion) order.
    fn matching(&self, query: &DocQuery) -> Vec<(DocId, Arc<Value>)> {
        let nshards = self.shards.len();
        let mut hits: Vec<(DocId, Arc<Value>)> = Vec::new();
        match self.candidates(&query.conditions) {
            Some(mut ids) => {
                // Group by shard so each shard lock is taken at most once.
                ids.sort_unstable();
                ids.dedup();
                let mut i = 0;
                while i < ids.len() {
                    let s = ids[i] % nshards;
                    let shard = self.shards[s].read();
                    while i < ids.len() && ids[i] % nshards == s {
                        if let Some(doc) = shard.docs.get(ids[i] / nshards) {
                            if query.matches(doc) {
                                hits.push((ids[i], doc.clone()));
                            }
                        }
                        i += 1;
                    }
                }
            }
            None => {
                for (s, shard) in self.shards.iter().enumerate() {
                    let shard = shard.read();
                    let cold_rows = shard.cold_rows();
                    if let Some(cold) = &shard.cold {
                        for c in 0..cold.n_chunks() {
                            let chunk = cold.chunk(c);
                            let base = c * cold.chunk_rows();
                            for (r, doc) in chunk.docs.iter().enumerate() {
                                if query.matches(doc) {
                                    hits.push(((base + r) * nshards + s, doc.clone()));
                                }
                            }
                        }
                    }
                    for (slot, doc) in shard.docs.iter().enumerate() {
                        if query.matches(doc) {
                            hits.push(((cold_rows + slot) * nshards + s, doc.clone()));
                        }
                    }
                }
            }
        }
        hits.sort_unstable_by_key(|(id, _)| *id);
        hits
    }

    /// Index-driven candidate ids, or `None` when no condition is indexed.
    ///
    /// Every indexed `Eq` condition contributes a set (hash probe, zero
    /// allocation), and every range condition with a sorted index
    /// contributes one; the smallest set seeds the scan and the rest are
    /// intersected — the old engine took the *first* index hit only.
    fn candidates(&self, conditions: &[Condition]) -> Option<Vec<DocId>> {
        // Cold rows never enter the field indexes, so an index probe on a
        // lazily opened store would silently drop the sealed prefix; fall
        // back to the full scan, which prunes cold chunks through the
        // on-disk zone maps instead.
        if self.has_cold() {
            return None;
        }
        // Range probes read the sorted run, so any pending appends must be
        // merged first — that needs the write lock, taken only when a write
        // burst actually left unmerged entries (LSM-style amortization).
        let is_range = |op: Op| matches!(op, Op::Gt | Op::Gte | Op::Lt | Op::Lte);
        let indexes = self.indexes.read();
        let needs_merge = conditions.iter().any(|c| {
            is_range(c.op)
                && indexes
                    .get(&c.path)
                    .and_then(|i| i.range.as_ref())
                    .is_some_and(|r| !r.pending.is_empty())
        });
        let indexes = if needs_merge {
            drop(indexes);
            let mut w = self.indexes.write();
            for c in conditions {
                if is_range(c.op) {
                    if let Some(range) = w.get_mut(&c.path).and_then(|i| i.range.as_mut()) {
                        range.merge();
                    }
                }
            }
            drop(w);
            self.indexes.read()
        } else {
            indexes
        };

        let mut sets: Vec<Vec<DocId>> = Vec::new();
        for c in conditions {
            let Some(index) = indexes.get(&c.path) else {
                continue;
            };
            match c.op {
                Op::Eq => {
                    sets.push(
                        index
                            .eq
                            .get(&c.value.stable_hash())
                            .map(IdList::to_vec)
                            .unwrap_or_default(),
                    );
                }
                Op::Gt | Op::Gte | Op::Lt | Op::Lte => {
                    let (Some(range), Some(bound)) = (&index.range, c.value.as_f64()) else {
                        continue;
                    };
                    // A NaN bound compares Equal to every number under
                    // `Value::compare`; the sorted run cannot express that,
                    // so leave this condition to the scan filter.
                    if bound.is_nan() {
                        continue;
                    }
                    let mut ids: Vec<DocId> = Vec::new();
                    range.probe(c.op, range_key(bound), &mut ids);
                    // Non-numeric values compare by kind tag and may still
                    // satisfy the operator; keep them as candidates.
                    ids.extend_from_slice(&index.non_numeric);
                    sets.push(ids);
                }
                _ => {}
            }
        }
        if sets.is_empty() {
            return None;
        }
        // Smallest set first, then intersect the rest into it.
        sets.sort_by_key(Vec::len);
        let mut iter = sets.into_iter();
        let mut smallest = iter.next().expect("non-empty");
        for other in iter {
            let other: HashSet<DocId> = other.into_iter().collect();
            smallest.retain(|id| other.contains(id));
            if smallest.is_empty() {
                break;
            }
        }
        Some(smallest)
    }

    /// Group matching documents by a key path and aggregate value paths.
    ///
    /// Hash-grouped over the shard read guards: no full-document clones and
    /// no O(n·groups) linear bucket search — only the group keys and the
    /// aggregated leaf values are copied out. Groups keep first-seen order.
    pub fn aggregate(&self, query: &DocQuery, group: &GroupSpec) -> Vec<Value> {
        use crate::query::AggOp;

        // Streaming accumulator per (bucket, aggregate): replicates
        // `Aggregate::apply` over the same values in the same order
        // without buffering a clone of every aggregated cell (the old
        // shape pushed ~rows × aggs `Value` clones before reducing).
        enum Acc {
            Count(i64),
            Sum(f64),
            Mean { sum: f64, n: u64 },
            Best { best: Option<Value>, min: bool },
        }
        impl Acc {
            fn new(op: AggOp) -> Self {
                match op {
                    AggOp::Count => Acc::Count(0),
                    AggOp::Sum => Acc::Sum(0.0),
                    AggOp::Mean => Acc::Mean { sum: 0.0, n: 0 },
                    AggOp::Min => Acc::Best {
                        best: None,
                        min: true,
                    },
                    AggOp::Max => Acc::Best {
                        best: None,
                        min: false,
                    },
                }
            }
            fn feed(&mut self, v: &Value) {
                match self {
                    Acc::Count(n) => *n += 1,
                    Acc::Sum(s) => {
                        if let Some(x) = v.as_f64() {
                            *s += x;
                        }
                    }
                    Acc::Mean { sum, n } => {
                        if let Some(x) = v.as_f64() {
                            *sum += x;
                            *n += 1;
                        }
                    }
                    Acc::Best { best, min } => {
                        if v.is_null() {
                            return;
                        }
                        let take = match best {
                            None => true,
                            Some(b) => {
                                let ord = v.compare(b);
                                if *min {
                                    ord == std::cmp::Ordering::Less
                                } else {
                                    ord == std::cmp::Ordering::Greater
                                }
                            }
                        };
                        if take {
                            *best = Some(v.clone());
                        }
                    }
                }
            }
            fn finish(self) -> Value {
                match self {
                    Acc::Count(n) => Value::Int(n),
                    Acc::Sum(s) => Value::Float(s),
                    Acc::Mean { sum, n } => {
                        if n == 0 {
                            Value::Null
                        } else {
                            Value::Float(sum / n as f64)
                        }
                    }
                    Acc::Best { best, .. } => best.unwrap_or(Value::Null),
                }
            }
        }

        struct Bucket {
            key: Value,
            accs: Vec<Acc>,
        }

        // Aggregates often repeat a path (mean + count of the same field);
        // look each distinct path up once per document.
        let mut distinct: Vec<&str> = Vec::new();
        let path_idx: Vec<usize> = group
            .aggs
            .iter()
            .map(|a| match distinct.iter().position(|p| *p == a.path) {
                Some(i) => i,
                None => {
                    distinct.push(&a.path);
                    distinct.len() - 1
                }
            })
            .collect();
        let feed = |buckets: &mut Vec<Bucket>, idx: usize, doc: &Value| {
            for (d, path) in distinct.iter().enumerate() {
                if let Some(v) = doc.get_path(path) {
                    for (a, _) in group.aggs.iter().enumerate() {
                        if path_idx[a] == d {
                            buckets[idx].accs[a].feed(v);
                        }
                    }
                }
            }
        };
        let new_bucket = |buckets: &mut Vec<Bucket>, key: Value| -> usize {
            buckets.push(Bucket {
                key,
                accs: group.aggs.iter().map(|a| Acc::new(a.op)).collect(),
            });
            buckets.len() - 1
        };

        // Unfiltered group-by over a clean dictionary-encoded column:
        // resolve each row's group through its shard's code table (one
        // integer lookup after the first sighting of a code) instead of
        // hashing a key `Value` per document. Exact only when the sidecar
        // mirrors the corpus verbatim — every row decodable and the key
        // column neither poisoned nor irregular — so each frame cell
        // equals the raw document value.
        let codes_path = |ci: usize| -> Option<Vec<Bucket>> {
            // The code tables only cover resident rows; a cold prefix
            // takes the generic path below.
            if self.has_cold() {
                return None;
            }
            let clean = self.col_irregular.load(Ordering::Acquire)
                & columnar::field_bit(ColField::Str(ci))
                == 0;
            if !clean {
                return None;
            }
            let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
            if !guards
                .iter()
                .all(|g| g.cols.len() == g.docs.len() && g.cols.all_decodable())
            {
                return None;
            }
            let mut buckets: Vec<Bucket> = Vec::new();
            let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
            // Per-shard `code → bucket` caches (dictionaries assign codes
            // independently per shard); unification is paid once per
            // `(shard, distinct symbol)` via the cached content hash.
            let mut code_buckets: Vec<Vec<u32>> = guards
                .iter()
                .map(|g| vec![u32::MAX; g.cols.dict(ci).len()])
                .collect();
            let max_slots = guards.iter().map(|g| g.docs.len()).max().unwrap_or(0);
            for slot in 0..max_slots {
                for (s, g) in guards.iter().enumerate() {
                    let Some(doc) = g.docs.get(slot) else {
                        continue;
                    };
                    // Decodable rows provide every string field, so the
                    // code is real (`all_decodable` was checked above).
                    let code = g.cols.str_codes(ci)[slot] as usize;
                    let idx = match code_buckets[s][code] {
                        u32::MAX => {
                            let sym = &g.cols.dict(ci)[code];
                            let probe = by_hash.entry(sym.hash_u64()).or_default();
                            let idx = match probe
                                .iter()
                                .find(|&&i| matches!(&buckets[i].key, Value::Str(k) if k == sym))
                            {
                                Some(&i) => i,
                                None => {
                                    let i = new_bucket(&mut buckets, Value::Str(sym.clone()));
                                    probe.push(i);
                                    i
                                }
                            };
                            code_buckets[s][code] = idx as u32;
                            idx
                        }
                        cached => cached as usize,
                    };
                    feed(&mut buckets, idx, doc);
                }
            }
            Some(buckets)
        };
        let fast = if query.conditions.is_empty() {
            match self.columnar_field(&group.key) {
                Some(ColField::Str(ci)) => codes_path(ci),
                _ => None,
            }
        } else {
            None
        };

        let buckets = if let Some(buckets) = fast {
            buckets
        } else {
            let mut buckets: Vec<Bucket> = Vec::new();
            let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
            let mut visit = |doc: &Value| {
                let key = doc.get_path(&group.key).unwrap_or(&Value::Null);
                let h = key.stable_hash();
                let slot = by_hash.entry(h).or_default();
                let idx = match slot.iter().find(|&&i| buckets[i].key == *key) {
                    Some(&i) => i,
                    None => {
                        let i = new_bucket(&mut buckets, key.clone());
                        slot.push(i);
                        i
                    }
                };
                feed(&mut buckets, idx, doc);
            };

            let stripped = DocQuery {
                conditions: query.conditions.clone(),
                projection: Vec::new(),
                sort: None,
                limit: None,
            };
            if self.candidates(&stripped.conditions).is_some() {
                // Index-assisted: reuse the candidate machinery (selective,
                // so the materialized hit list is small).
                for (_, doc) in self.matching(&stripped) {
                    visit(&doc);
                }
            } else {
                // Full scan: feed documents straight from the shards in id
                // order (slot-major, shard-minor — ids are
                // `slot * nshards + shard`) without materializing an
                // `Arc`-cloned hit list first. Shard cursors keep one paged
                // chunk per shard resident, so a cold prefix streams
                // through in id order with bounded memory.
                let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
                let mut cursors: Vec<ShardCursor<'_>> =
                    guards.iter().map(|g| ShardCursor::new(g)).collect();
                let max_slots = guards.iter().map(|g| g.total_rows()).max().unwrap_or(0);
                for slot in 0..max_slots {
                    for cursor in cursors.iter_mut() {
                        if let Some(doc) = cursor.doc(slot) {
                            if stripped.matches(doc) {
                                visit(doc);
                            }
                        }
                    }
                }
            }
            buckets
        };

        buckets
            .into_iter()
            .map(|b| {
                let mut out = Map::new();
                out.insert("_id".into(), b.key);
                for (agg, acc) in group.aggs.iter().zip(b.accs) {
                    out.insert(prov_model::Sym::from(agg.output_name()), acc.finish());
                }
                Value::object(out)
            })
            .collect()
    }

    /// Distinct values of a path among matching documents, in first-seen
    /// order. Hash-set deduplication (the old engine was O(n²)
    /// `Vec::contains`).
    pub fn distinct(&self, query: &DocQuery, path: &str) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
        for (_, doc) in self.matching(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        }) {
            if let Some(v) = doc.get_path(path) {
                let slot = by_hash.entry(v.stable_hash()).or_default();
                if !slot.iter().any(|&i| out[i] == *v) {
                    out.push(v.clone());
                    slot.push(out.len() - 1);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Columnar sidecar (see `crate::columnar` for the design and the
    // exactness contract).
    // ------------------------------------------------------------------

    /// Populate the columnar sidecar: hot scalar fields of every current
    /// and future document are kept as per-shard typed column vectors
    /// (idempotent; existing documents are backfilled under the shard
    /// write locks).
    pub fn enable_columnar(&self) {
        // Every shard write lock is held across the flag flip AND the
        // backfill, so a concurrent batch insert either fully precedes
        // this (its documents are backfilled here) or fully follows it
        // (it re-reads the flag under the shard lock and appends aligned
        // columnar rows) — no interleaving can misalign slots.
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        if self.columnar.swap(true, Ordering::AcqRel) {
            return;
        }
        for shard in guards.iter_mut() {
            let shard = &mut **shard;
            for slot in shard.cols.len()..shard.docs.len() {
                let report = shard.cols.push_doc(&shard.docs[slot]);
                self.apply_columnar_report(report);
            }
        }
    }

    /// Whether the columnar sidecar is populated.
    pub fn columnar_enabled(&self) -> bool {
        self.columnar.load(Ordering::Acquire)
    }

    /// The effective columnar chunk size in rows (the `PROVDB_CHUNK`
    /// override, clamped, or the default) — what zone maps and kernel
    /// batches are sized by. Exposed so tests can build corpora that
    /// straddle chunk boundaries at whatever size the process runs with.
    pub fn chunk_rows(&self) -> usize {
        columnar::chunk_rows()
    }

    /// Whether a frame column can currently be served from the sidecar:
    /// the sidecar is enabled, the column is a hot field, and no ingested
    /// dataflow key has poisoned it.
    pub fn columnar_servable(&self, column: &str) -> bool {
        self.columnar_field(column).is_some()
    }

    fn columnar_field(&self, column: &str) -> Option<ColField> {
        if !self.columnar_enabled() {
            return None;
        }
        let f = columnar::lookup(column)?;
        (self.col_poison.load(Ordering::Acquire) & columnar::field_bit(f) == 0).then_some(f)
    }

    /// Corpus-wide presence of a servable column: how many decodable
    /// documents provide it (`None` when the column is not servable).
    /// Answers frame column *existence* without touching a document.
    pub fn columnar_presence(&self, column: &str) -> Option<usize> {
        let f = self.columnar_field(column)?;
        Some(
            self.shards
                .iter()
                .map(|s| {
                    let g = s.read();
                    // Cold presence comes from the footer zone maps
                    // summed at attach time — no I/O here.
                    g.cold.as_ref().map_or(0, |c| c.present(f)) + g.cols.present(f)
                })
                .sum(),
        )
    }

    /// [`columnar_presence`](DocumentStore::columnar_presence) restricted
    /// to the rows below a per-shard bound: zone-map prefix sums plus one
    /// boundary-chunk scan per shard, never a full column walk.
    pub fn columnar_presence_bounded(&self, column: &str, bound: &[usize]) -> Option<usize> {
        let f = self.columnar_field(column)?;
        debug_assert_eq!(bound.len(), self.shards.len());
        Some(
            self.shards
                .iter()
                .zip(bound)
                .map(|(s, &n)| {
                    let g = s.read();
                    let cold_rows = g.cold_rows();
                    match &g.cold {
                        Some(cold) if n <= cold_rows => cold.present_prefix(f, n),
                        Some(cold) => cold.present(f) + g.cols.present_prefix(f, n - cold_rows),
                        None => g.cols.present_prefix(f, n),
                    }
                })
                .sum(),
        )
    }

    /// [`columnar_scan_where`](DocumentStore::columnar_scan_where)
    /// restricted to the rows below a per-shard bound.
    ///
    /// Runs the unbounded kernel without a limit and post-filters: the
    /// kernel returns survivors in id order, and dropping the
    /// above-bound ids preserves that order, so the first `limit`
    /// visible survivors are exactly what a scan of the bounded corpus
    /// would return. Rows appended after the bound only ever *add*
    /// survivors (columns poison/irregular flags are checked by the
    /// caller via servability, which is monotonic), so filtering them
    /// out cannot change any visible row's verdict.
    pub fn columnar_scan_where_bounded(
        &self,
        preds: &[ScanPredicate<'_>],
        limit: Option<usize>,
        bound: &[usize],
    ) -> Option<Vec<DocId>> {
        let nshards = self.shards.len();
        debug_assert_eq!(bound.len(), nshards);
        let mut ids = self.columnar_scan_where(preds, None)?;
        ids.retain(|id| id / nshards < bound[id % nshards]);
        if let Some(n) = limit {
            ids.truncate(n);
        }
        Some(ids)
    }

    /// [`columnar_topk_where`](DocumentStore::columnar_topk_where)
    /// restricted to the rows below a per-shard bound.
    ///
    /// Runs the unbounded selection without a limit (a full sort of the
    /// survivors) and post-filters: the result is totally ordered by the
    /// sort keys (ties by id), removing entries preserves relative
    /// order, and the first `limit` visible entries are therefore the
    /// top-k of the bounded corpus. An above-bound row carrying a NaN
    /// sort key still aborts the selection ([`TopkScan::NanSortKey`]) —
    /// conservative, never wrong: the caller falls back to its bounded
    /// oracle.
    pub fn columnar_topk_where_bounded(
        &self,
        preds: &[ScanPredicate<'_>],
        sort: &[(&str, bool)],
        limit: Option<usize>,
        bound: &[usize],
    ) -> TopkScan {
        let nshards = self.shards.len();
        debug_assert_eq!(bound.len(), nshards);
        match self.columnar_topk_where(preds, sort, None) {
            TopkScan::Served(mut ids) => {
                ids.retain(|id| id / nshards < bound[id % nshards]);
                if let Some(n) = limit {
                    ids.truncate(n);
                }
                TopkScan::Served(ids)
            }
            other => other,
        }
    }

    /// Evaluate a conjunction of `column op literal` filters over the
    /// column vectors and return the surviving decodable document ids in
    /// id (= insertion) order, truncated to `limit`. Convenience wrapper
    /// over [`columnar_scan_where`] for comparison-only conjunctions.
    ///
    /// [`columnar_scan_where`]: DocumentStore::columnar_scan_where
    pub fn columnar_scan(
        &self,
        filters: &[(&str, CmpOp, &Value)],
        limit: Option<usize>,
    ) -> Option<Vec<DocId>> {
        let preds: Vec<ScanPredicate<'_>> = filters
            .iter()
            .map(|(col, op, lit)| ScanPredicate::Cmp(col, *op, lit))
            .collect();
        self.columnar_scan_where(&preds, limit)
    }

    /// Evaluate a conjunction of pushed predicates (comparisons and
    /// in-lists) over the column vectors and return the surviving
    /// decodable document ids in id (= insertion) order, truncated to
    /// `limit`.
    ///
    /// Semantics are the *frame* rules ([`dataframe::cmp_matches`], and
    /// [`dataframe::values_equal`] any-match for in-lists) on the decoded
    /// cell values, so survivors match exactly the rows a full-frame
    /// filter would keep. Index probes are used as candidate pre-filters
    /// when safe (equality/range comparisons on regular pass-through
    /// fields; in-lists never hint — the index layer intersects condition
    /// sets and a membership test is a union), and every candidate is
    /// still verified against the vectors. Full scans compile the
    /// conjunction once per shard against its dictionaries
    /// ([`crate::columnar`]) and evaluate chunk by chunk, skipping chunks
    /// whose zone maps prove no match. Returns `None` when any filter
    /// column is not servable.
    pub fn columnar_scan_where(
        &self,
        preds: &[ScanPredicate<'_>],
        limit: Option<usize>,
    ) -> Option<Vec<DocId>> {
        let fields = self.resolve_preds(preds)?;
        if !self.columnar_enabled() {
            return None; // zero-filter scans still need the sidecar
        }
        // The push-then-check loops below assume a limit of at least one;
        // answering 0 here also keeps every path (sequential, candidate,
        // parallel) trivially thread-count invariant.
        if limit == Some(0) {
            return Some(Vec::new());
        }

        // Candidate generation may take the index write lock (range-log
        // merge); do it before the shard guards to respect lock order.
        let cand = self.candidates(&self.columnar_hints(&fields));

        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut out: Vec<DocId> = Vec::new();
        let full = |out: &Vec<DocId>| limit.is_some_and(|n| out.len() >= n);
        match cand {
            Some(mut ids) => {
                // Index-seeded candidate sets are small and scattered;
                // verify per row rather than through the chunk kernels.
                ids.sort_unstable();
                ids.dedup();
                for id in ids {
                    let shard = &guards[id % nshards];
                    let slot = id / nshards;
                    if shard.cols.is_decodable(slot)
                        && fields.iter().all(|p| shard.cols.matches_pred(slot, p))
                    {
                        out.push(id);
                        if full(&out) {
                            break;
                        }
                    }
                }
            }
            None => {
                let total: usize = guards.iter().map(|g| g.cols.len()).sum();
                // A cold prefix takes the sequential chunk-major path:
                // paging is I/O-bound and shares one budgeted cache, so
                // shard-parallel workers would only thrash it.
                let has_cold = guards.iter().any(|g| g.cold.is_some());
                let workers = if has_cold {
                    1
                } else {
                    self.scan_threads().min(nshards)
                };
                // Compile the conjunction once per shard (dictionaries are
                // shard-local); both scan shapes below run the same
                // chunk kernels.
                let compiled: Vec<Vec<columnar::ShardPred>> =
                    guards.iter().map(|g| g.cols.compile(&fields)).collect();
                if workers > 1 && total >= PARALLEL_SCAN_THRESHOLD {
                    // Shard-parallel: exactly `workers` scoped threads,
                    // each evaluating a contiguous chunk of shards (a
                    // shard's survivors are slot-ascending, so each shard
                    // contributes at most the first `limit` of them, give
                    // or take one kernel chunk); the merge re-establishes
                    // global id order.
                    let shards: Vec<(&Shard, &[columnar::ShardPred])> = guards
                        .iter()
                        .zip(compiled.iter())
                        .map(|(g, c)| (&**g, c.as_slice()))
                        .collect();
                    let chunk = nshards.div_ceil(workers);
                    let merged = crossbeam::thread::scope(|scope| {
                        let handles: Vec<_> = shards
                            .chunks(chunk)
                            .enumerate()
                            .map(|(w, group)| {
                                scope.spawn(move |_| {
                                    let mut ids: Vec<DocId> = Vec::new();
                                    let mut sel: Vec<u32> = Vec::new();
                                    for (i, (shard, preds)) in group.iter().enumerate() {
                                        let s = w * chunk + i;
                                        let mut kept = 0usize;
                                        'shard: for c in 0..shard.cols.n_chunks() {
                                            shard.cols.filter_chunk(preds, c, &mut sel);
                                            for &slot in &sel {
                                                ids.push(slot as usize * nshards + s);
                                                kept += 1;
                                                if limit.is_some_and(|n| kept >= n) {
                                                    break 'shard;
                                                }
                                            }
                                        }
                                    }
                                    ids
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("scan worker panicked"))
                            .collect::<Vec<DocId>>()
                    })
                    .expect("scan scope failed");
                    out = merged;
                    out.sort_unstable();
                    if let Some(n) = limit {
                        out.truncate(n);
                    }
                } else {
                    // Chunk-major over the shards: chunk `c` covers the
                    // same slot range in every shard (cold prefixes are
                    // uniform across shards by construction), so sorting
                    // each chunk's combined survivors yields globally
                    // ascending ids and a pushed limit can stop after any
                    // chunk. Cold chunks consult the on-disk zone maps
                    // first and are only paged in when they might match.
                    let max_chunks = guards
                        .iter()
                        .map(|g| g.cold.as_ref().map_or(0, |c| c.n_chunks()) + g.cols.n_chunks())
                        .max()
                        .unwrap_or(0);
                    let mut sel: Vec<u32> = Vec::new();
                    let mut chunk_ids: Vec<DocId> = Vec::new();
                    for c in 0..max_chunks {
                        chunk_ids.clear();
                        for (s, g) in guards.iter().enumerate() {
                            let cold_chunks = g.cold.as_ref().map_or(0, |cc| cc.n_chunks());
                            if c < cold_chunks {
                                let cold = g.cold.as_ref().expect("cold chunk implies cold shard");
                                if !cold.chunk_prunable(&fields, c) {
                                    let chunk = cold.chunk(c);
                                    chunk.filter(&fields, &mut sel);
                                    let base = c * cold.chunk_rows();
                                    chunk_ids.extend(
                                        sel.iter().map(|&r| (base + r as usize) * nshards + s),
                                    );
                                }
                            } else if c - cold_chunks < g.cols.n_chunks() {
                                g.cols.filter_chunk(&compiled[s], c - cold_chunks, &mut sel);
                                let cold_rows = g.cold_rows();
                                chunk_ids.extend(
                                    sel.iter()
                                        .map(|&slot| (cold_rows + slot as usize) * nshards + s),
                                );
                            }
                        }
                        chunk_ids.sort_unstable();
                        out.extend_from_slice(&chunk_ids);
                        if full(&out) {
                            out.truncate(limit.expect("full implies a limit"));
                            break;
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// Resolve pushed predicates to columnar fields; `None` when any
    /// referenced column is not servable.
    fn resolve_preds<'a>(
        &self,
        preds: &[ScanPredicate<'a>],
    ) -> Option<Vec<columnar::ColPredicate<'a>>> {
        preds
            .iter()
            .map(|p| match p {
                ScanPredicate::Cmp(col, op, lit) => Some(columnar::ColPredicate::Cmp(
                    self.columnar_field(col)?,
                    *op,
                    lit,
                )),
                ScanPredicate::In(col, list) => {
                    Some(columnar::ColPredicate::In(self.columnar_field(col)?, list))
                }
            })
            .collect()
    }

    /// Index hints for a set of columnar conjuncts: comparisons whose raw
    /// document values agree with their decoded frame values can seed a
    /// scan from the hash / sorted indexes (the index layer skips
    /// non-indexed paths and intersects the rest smallest-first). `!=`
    /// and in-lists can never hint.
    fn columnar_hints(&self, fields: &[columnar::ColPredicate<'_>]) -> Vec<Condition> {
        let irregular = self.col_irregular.load(Ordering::Acquire);
        fields
            .iter()
            .filter_map(|p| {
                let columnar::ColPredicate::Cmp(f, op, lit) = p else {
                    return None;
                };
                if !columnar::hint_safe(*f, irregular) {
                    return None;
                }
                let op = match op {
                    CmpOp::Eq => Op::Eq,
                    CmpOp::Lt => Op::Lt,
                    CmpOp::Le => Op::Lte,
                    CmpOp::Gt => Op::Gt,
                    CmpOp::Ge => Op::Gte,
                    CmpOp::Ne => return None,
                };
                Some(Condition {
                    path: columnar::field_name(*f).to_string(),
                    op,
                    value: (*lit).clone(),
                })
            })
            .collect()
    }

    /// Top-k scan: evaluate the filter conjunction over the column vectors
    /// (exactly like [`columnar_scan`]) and return the surviving document
    /// ids ordered by the *frame's* sort rule for `sort` — nulls last,
    /// [`dataframe::sort_cell_cmp`] per key, ties by id (= insertion)
    /// order, which is what a stable frame sort of id-ordered rows
    /// produces — truncated to `limit`.
    ///
    /// Served two ways: a sorted-index cursor when the single sort key has
    /// a sorted numeric index whose raw values provably equal the decoded
    /// cells (ids stream out in key order and the scan stops after `k`
    /// accepted survivors), or bounded per-shard selection buffers over
    /// the vectors — run shard-parallel on crossbeam scoped threads above
    /// [`PARALLEL_SCAN_THRESHOLD`] rows when [`scan_threads`] > 1 — merged
    /// into the global top-k.
    ///
    /// NaN sort-key cells abort to [`TopkScan::NanSortKey`]:
    /// `Value::compare` calls mixed NaN comparisons `Equal`, which is not
    /// a strict weak order, so only the oracle's own stable sort defines
    /// the answer there.
    ///
    /// [`columnar_scan`]: DocumentStore::columnar_scan
    /// [`scan_threads`]: DocumentStore::scan_threads
    pub fn columnar_topk(
        &self,
        filters: &[(&str, CmpOp, &Value)],
        sort: &[(&str, bool)],
        limit: Option<usize>,
    ) -> TopkScan {
        let preds: Vec<ScanPredicate<'_>> = filters
            .iter()
            .map(|(col, op, lit)| ScanPredicate::Cmp(col, *op, lit))
            .collect();
        self.columnar_topk_where(&preds, sort, limit)
    }

    /// General form of [`columnar_topk`] accepting in-list predicates
    /// alongside comparisons.
    ///
    /// [`columnar_topk`]: DocumentStore::columnar_topk
    pub fn columnar_topk_where(
        &self,
        preds: &[ScanPredicate<'_>],
        sort: &[(&str, bool)],
        limit: Option<usize>,
    ) -> TopkScan {
        if sort.is_empty() {
            return match self.columnar_scan_where(preds, limit) {
                Some(ids) => TopkScan::Served(ids),
                None => TopkScan::NotServable,
            };
        }
        let fields = self.resolve_preds(preds);
        let keys: Option<Vec<(ColField, bool)>> = sort
            .iter()
            .map(|(col, asc)| Some((self.columnar_field(col)?, *asc)))
            .collect();
        let (Some(fields), Some(keys)) = (fields, keys) else {
            return TopkScan::NotServable;
        };
        if !self.columnar_enabled() {
            return TopkScan::NotServable;
        }
        if limit == Some(0) {
            return TopkScan::Served(Vec::new());
        }

        // Sorted-index cursor: stream ids in key order, stop at k.
        if let (Some(k), [key]) = (limit, keys.as_slice()) {
            if let Some(ids) = self.topk_sorted_cursor(&fields, *key, k) {
                return TopkScan::Served(ids);
            }
        }

        let cand = self.candidates(&self.columnar_hints(&fields));
        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let gather = |shard: &Shard, slot: usize| -> Vec<Value> {
            keys.iter()
                .map(|(f, _)| shard.cols.value(slot, *f))
                .collect()
        };

        let selected: Result<Vec<TopkEntry>, NanSortKey> = match cand {
            Some(mut ids) => {
                // Index-seeded candidate sets are small by construction;
                // select sequentially, verifying per row.
                ids.sort_unstable();
                ids.dedup();
                let mut buf = TopkBuf::new(&keys, limit);
                let mut selected = Ok(());
                for id in ids {
                    let shard = &*guards[id % nshards];
                    let slot = id / nshards;
                    if shard.cols.is_decodable(slot)
                        && fields.iter().all(|p| shard.cols.matches_pred(slot, p))
                    {
                        if let Err(e) = buf.push((gather(shard, slot), id)) {
                            selected = Err(e);
                            break;
                        }
                    }
                }
                selected.map(|()| buf.finish())
            }
            None => {
                let total: usize = guards.iter().map(|g| g.cols.len()).sum();
                // Cold prefixes select sequentially (see
                // `columnar_scan_where` for the rationale).
                let has_cold = guards.iter().any(|g| g.cold.is_some());
                let workers = if has_cold {
                    1
                } else {
                    self.scan_threads().min(nshards)
                };
                // Same chunk kernels as `columnar_scan_where`: the zone
                // maps prune on the *filters* (the selection bound is
                // dynamic, so sort keys cannot prune), then the bounded
                // buffer selects over the surviving slots.
                let compiled: Vec<Vec<columnar::ShardPred>> =
                    guards.iter().map(|g| g.cols.compile(&fields)).collect();
                let shards: Vec<(&Shard, &[columnar::ShardPred])> = guards
                    .iter()
                    .zip(compiled.iter())
                    .map(|(g, c)| (&**g, c.as_slice()))
                    .collect();
                let select_shards = |base: usize,
                                     group: &[(&Shard, &[columnar::ShardPred])]|
                 -> Result<Vec<TopkEntry>, NanSortKey> {
                    let mut buf = TopkBuf::new(&keys, limit);
                    let mut sel: Vec<u32> = Vec::new();
                    for (i, (shard, preds)) in group.iter().enumerate() {
                        let s = base + i;
                        if let Some(cold) = &shard.cold {
                            for c in 0..cold.n_chunks() {
                                if cold.chunk_prunable(&fields, c) {
                                    continue;
                                }
                                let chunk = cold.chunk(c);
                                chunk.filter(&fields, &mut sel);
                                let cbase = c * cold.chunk_rows();
                                for &r in &sel {
                                    let r = r as usize;
                                    let cells: Vec<Value> =
                                        keys.iter().map(|(f, _)| chunk.value(r, *f)).collect();
                                    buf.push((cells, (cbase + r) * nshards + s))?;
                                }
                            }
                        }
                        let cold_rows = shard.cold_rows();
                        for c in 0..shard.cols.n_chunks() {
                            shard.cols.filter_chunk(preds, c, &mut sel);
                            for &slot in &sel {
                                let slot = slot as usize;
                                buf.push((gather(shard, slot), (cold_rows + slot) * nshards + s))?;
                            }
                        }
                    }
                    Ok(buf.finish())
                };
                let merged: Result<Vec<Vec<TopkEntry>>, NanSortKey> =
                    if workers > 1 && total >= PARALLEL_SCAN_THRESHOLD {
                        // Bounded selection on exactly `workers` scoped
                        // threads, each owning a contiguous shard chunk:
                        // a worker's local top-k is a superset of its
                        // contribution to the global top-k.
                        let chunk = nshards.div_ceil(workers);
                        crossbeam::thread::scope(|scope| {
                            let handles: Vec<_> = shards
                                .chunks(chunk)
                                .enumerate()
                                .map(|(w, group)| {
                                    let select_shards = &select_shards;
                                    scope.spawn(move |_| select_shards(w * chunk, group))
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|h| h.join().expect("top-k worker panicked"))
                                .collect()
                        })
                        .expect("top-k scope failed")
                    } else {
                        select_shards(0, &shards).map(|entries| vec![entries])
                    };
                merged.map(|per_shard| {
                    let mut all: Vec<TopkEntry> = per_shard.into_iter().flatten().collect();
                    all.sort_unstable_by(|a, b| topk_cmp(&keys, a, b));
                    if let Some(k) = limit {
                        all.truncate(k);
                    }
                    all
                })
            }
        };
        match selected {
            Ok(entries) => TopkScan::Served(entries.into_iter().map(|(_, id)| id).collect()),
            Err(NanSortKey) => TopkScan::NanSortKey,
        }
    }

    /// The sorted-index fast path of [`columnar_topk`]: when the single
    /// sort key is backed by a sorted numeric index whose entries provably
    /// mirror the decoded frame cells (pass-through field, no irregular
    /// doc, no NaN/non-numeric value parked outside the run), the globally
    /// sorted run *is* the frame's sort order — ascending ties are
    /// id-ascending by construction (`(key, id)` tuples), descending
    /// iteration walks tie groups from the top emitting each group in id
    /// order — so the scan just streams ids, verifies the filters against
    /// the vectors, and stops after `k` accepted survivors. Returns `None`
    /// when the preconditions do not hold (caller falls back to the
    /// bounded-selection scan).
    ///
    /// [`columnar_topk`]: DocumentStore::columnar_topk
    fn topk_sorted_cursor(
        &self,
        fields: &[columnar::ColPredicate<'_>],
        key: (ColField, bool),
        k: usize,
    ) -> Option<Vec<DocId>> {
        let (field, ascending) = key;
        // Cold rows are absent from the sorted run (and from the slot
        // arithmetic below); the bounded-selection scan handles them.
        if self.has_cold() {
            return None;
        }
        // Irregular raw values (defaulted/coerced during decode) or
        // derived fields: the index cannot speak for the cells.
        if !columnar::hint_safe(field, self.col_irregular.load(Ordering::Acquire)) {
            return None;
        }
        let path = columnar::field_name(field);
        // Merge any pending appends first (needs the write lock; taken
        // before the shard guards to respect lock order).
        {
            let indexes = self.indexes.read();
            let range = indexes.get(path)?.range.as_ref()?;
            if !range.pending.is_empty() {
                drop(indexes);
                let mut w = self.indexes.write();
                if let Some(range) = w.get_mut(path).and_then(|i| i.range.as_mut()) {
                    range.merge();
                }
            }
        }
        let indexes = self.indexes.read();
        let idx = indexes.get(path)?;
        let range = idx.range.as_ref()?;
        // NaN and non-numeric values live outside the sorted run, where
        // no cursor order is defined; a write racing in behind the merge
        // above re-pends — both disqualify the cursor, not the query.
        if !idx.non_numeric.is_empty() || !range.pending.is_empty() {
            return None;
        }
        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let survives = |id: DocId| {
            let shard = &*guards[id % nshards];
            let slot = id / nshards;
            shard.cols.is_decodable(slot) && fields.iter().all(|p| shard.cols.matches_pred(slot, p))
        };
        let run = &range.sorted;
        let mut out: Vec<DocId> = Vec::with_capacity(k.min(run.len()));
        if ascending {
            for &(_, id) in run.iter() {
                if survives(id) {
                    out.push(id);
                    if out.len() == k {
                        break;
                    }
                }
            }
        } else {
            let mut i = run.len();
            'groups: while i > 0 {
                let hi = i;
                let bits = run[i - 1].0;
                while i > 0 && run[i - 1].0 == bits {
                    i -= 1;
                }
                for &(_, id) in &run[i..hi] {
                    if survives(id) {
                        out.push(id);
                        if out.len() == k {
                            break 'groups;
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// Group document ids by a dictionary-encoded string column without
    /// materializing the key column: returns the distinct key cells in
    /// first-appearance order plus each id's group index (parallel to
    /// `ids`). The grouping runs over per-shard dictionary codes — one
    /// integer table lookup per row — with the cross-shard symbol
    /// unification (shard dictionaries assign codes independently) paid
    /// once per `(shard, distinct symbol)` via the cached content hash,
    /// instead of hashing and comparing a `Value` key per row the way a
    /// frame group-by must. `None` when the column is not a servable
    /// string field.
    pub fn columnar_group_codes(
        &self,
        ids: &[DocId],
        column: &str,
    ) -> Option<(Vec<Value>, Vec<u32>)> {
        let columnar::ColField::Str(ci) = self.columnar_field(column)? else {
            return None;
        };
        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        // Per-shard `code → group` caches, filled lazily.
        let mut code_maps: Vec<Vec<u32>> = guards
            .iter()
            .map(|g| vec![u32::MAX; g.cols.dict(ci).len()])
            .collect();
        // Content hash → candidate groups (collisions resolved by real
        // symbol equality), probed only on each shard's first sighting of
        // a code.
        let mut by_hash: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut keys: Vec<Value> = Vec::new();
        let mut null_group = u32::MAX;
        let mut row_groups: Vec<u32> = Vec::with_capacity(ids.len());
        // One paged chunk kept warm for cold ids (scan output is
        // id-ordered, so consecutive cold ids usually share a chunk).
        let mut warm: Option<(usize, usize, Arc<crate::pager::PagedChunk>)> = None;
        for &id in ids {
            let (s, slot) = (id % nshards, id / nshards);
            let cold_rows = guards[s].cold_rows();
            if slot < cold_rows {
                // Cold rows have no shard code table; unify their symbol
                // through the same content-hash buckets the coded path
                // uses, so group identity and first-seen order match.
                let cold = guards[s].cold.as_ref().expect("cold rows imply cold shard");
                let c = slot / cold.chunk_rows();
                if warm.as_ref().map(|(ws, wc, _)| (*ws, *wc)) != Some((s, c)) {
                    warm = Some((s, c, cold.chunk(c)));
                }
                let (_, _, chunk) = warm.as_ref().expect("chunk just pinned");
                let g = match chunk.value(slot % cold.chunk_rows(), ColField::Str(ci)) {
                    Value::Str(sym) => {
                        let bucket = by_hash.entry(sym.hash_u64()).or_default();
                        match bucket
                            .iter()
                            .find(|&&g| matches!(&keys[g as usize], Value::Str(k) if *k == sym))
                        {
                            Some(&g) => g,
                            None => {
                                let g = keys.len() as u32;
                                bucket.push(g);
                                keys.push(Value::Str(sym));
                                g
                            }
                        }
                    }
                    _ => {
                        if null_group == u32::MAX {
                            null_group = keys.len() as u32;
                            keys.push(Value::Null);
                        }
                        null_group
                    }
                };
                row_groups.push(g);
                continue;
            }
            let slot = slot - cold_rows;
            let code = guards[s].cols.str_codes(ci)[slot];
            let g = if code == columnar::NULL_CODE {
                // Decodable rows always provide every string field, but a
                // null-key group keeps the kernel total.
                if null_group == u32::MAX {
                    null_group = keys.len() as u32;
                    keys.push(Value::Null);
                }
                null_group
            } else {
                let cached = code_maps[s][code as usize];
                if cached != u32::MAX {
                    cached
                } else {
                    let sym = &guards[s].cols.dict(ci)[code as usize];
                    let bucket = by_hash.entry(sym.hash_u64()).or_default();
                    let g = match bucket
                        .iter()
                        .find(|&&g| matches!(&keys[g as usize], Value::Str(k) if k == sym))
                    {
                        Some(&g) => g,
                        None => {
                            let g = keys.len() as u32;
                            bucket.push(g);
                            keys.push(Value::Str(sym.clone()));
                            g
                        }
                    };
                    code_maps[s][code as usize] = g;
                    g
                }
            };
            row_groups.push(g);
        }
        Some((keys, row_groups))
    }

    /// The frame cells of a servable column for the given document ids, in
    /// order (`Null` where a row does not provide the column). `None` when
    /// the column is not servable.
    pub fn columnar_gather(&self, ids: &[DocId], column: &str) -> Option<Vec<Value>> {
        let f = self.columnar_field(column)?;
        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut warm: Option<(usize, usize, Arc<crate::pager::PagedChunk>)> = None;
        Some(
            ids.iter()
                .map(|id| {
                    let (s, slot) = (id % nshards, id / nshards);
                    let cold_rows = guards[s].cold_rows();
                    if slot < cold_rows {
                        let cold = guards[s].cold.as_ref().expect("cold rows imply cold shard");
                        let c = slot / cold.chunk_rows();
                        if warm.as_ref().map(|(ws, wc, _)| (*ws, *wc)) != Some((s, c)) {
                            warm = Some((s, c, cold.chunk(c)));
                        }
                        let (_, _, chunk) = warm.as_ref().expect("chunk just pinned");
                        chunk.value(slot % cold.chunk_rows(), f)
                    } else {
                        guards[s].cols.value(slot - cold_rows, f)
                    }
                })
                .collect(),
        )
    }

    /// Fetch documents by id, preserving order. Ids must come from a scan
    /// of this (append-only) store, so every id resolves.
    pub fn docs_for_ids(&self, ids: &[DocId]) -> Vec<Arc<Value>> {
        let nshards = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut warm: Option<(usize, usize, Arc<crate::pager::PagedChunk>)> = None;
        ids.iter()
            .map(|id| {
                let (s, slot) = (id % nshards, id / nshards);
                let cold_rows = guards[s].cold_rows();
                if slot < cold_rows {
                    let cold = guards[s].cold.as_ref().expect("cold rows imply cold shard");
                    let c = slot / cold.chunk_rows();
                    if warm.as_ref().map(|(ws, wc, _)| (*ws, *wc)) != Some((s, c)) {
                        warm = Some((s, c, cold.chunk(c)));
                    }
                    let (_, _, chunk) = warm.as_ref().expect("chunk just pinned");
                    return Arc::clone(&chunk.docs[slot % cold.chunk_rows()]);
                }
                guards[s]
                    .docs
                    .get(slot - cold_rows)
                    .cloned()
                    .expect("scanned id resolves in an append-only store")
            })
            .collect()
    }
}

/// One pushed scan conjunct, by frame column name — the public form of
/// the predicates the columnar scan paths accept.
#[derive(Debug, Clone, Copy)]
pub enum ScanPredicate<'a> {
    /// `column op literal` under frame comparison semantics
    /// ([`dataframe::cmp_matches`]).
    Cmp(&'a str, CmpOp, &'a Value),
    /// `column.isin(list)` membership ([`dataframe::values_equal`]
    /// any-match).
    In(&'a str, &'a [Value]),
}

/// Outcome of a [`DocumentStore::columnar_topk`] scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopkScan {
    /// Surviving ids in the frame's sort order, truncated to the limit.
    Served(Vec<DocId>),
    /// A filter or sort column is not columnar-servable here.
    NotServable,
    /// A NaN sort-key cell survived the filters; the frame comparator is
    /// not a strict weak order over NaN, so the caller must let the
    /// oracle's own stable sort define the answer.
    NanSortKey,
}

/// One top-k candidate: its sort-key cells plus its document id.
type TopkEntry = (Vec<Value>, DocId);

/// Marker error: a NaN sort-key cell was observed (see [`TopkScan`]).
struct NanSortKey;

/// The frame's sort order over top-k entries: [`dataframe::sort_cell_cmp`]
/// per key (nulls last, direction applied), ties by id — a total order
/// (ids are unique) provided no cell is NaN, which [`TopkBuf::push`]
/// rejects before any entry is ordered.
fn topk_cmp(keys: &[(ColField, bool)], a: &TopkEntry, b: &TopkEntry) -> std::cmp::Ordering {
    for (i, (_, ascending)) in keys.iter().enumerate() {
        let ord = dataframe::sort_cell_cmp(&a.0[i], &b.0[i], *ascending);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.1.cmp(&b.1)
}

/// Bounded top-k selection buffer: entries accumulate and are periodically
/// compacted (sort + truncate to k), after which the k-th entry becomes a
/// rejection bound for later pushes — O(n log k) total, O(k) live memory,
/// no ordered structure ever built over a NaN key (pushes reject them
/// first). With no limit it simply collects and sorts everything.
struct TopkBuf<'k> {
    keys: &'k [(ColField, bool)],
    /// `usize::MAX` when unbounded (bare pushed sort).
    k: usize,
    entries: Vec<TopkEntry>,
    /// Current k-th best, once k entries have been seen.
    bound: Option<TopkEntry>,
}

impl<'k> TopkBuf<'k> {
    fn new(keys: &'k [(ColField, bool)], limit: Option<usize>) -> Self {
        Self {
            keys,
            k: limit.unwrap_or(usize::MAX),
            entries: Vec::new(),
            bound: None,
        }
    }

    fn push(&mut self, entry: TopkEntry) -> Result<(), NanSortKey> {
        if entry
            .0
            .iter()
            .any(|v| matches!(v, Value::Float(f) if f.is_nan()))
        {
            return Err(NanSortKey);
        }
        if self.k == 0 {
            return Ok(());
        }
        if let Some(bound) = &self.bound {
            if topk_cmp(self.keys, &entry, bound) != std::cmp::Ordering::Less {
                return Ok(());
            }
        }
        self.entries.push(entry);
        if self.k < usize::MAX / 4 && self.entries.len() >= self.k * 2 + 64 {
            self.compact();
        }
        Ok(())
    }

    fn compact(&mut self) {
        let keys = self.keys;
        self.entries.sort_unstable_by(|a, b| topk_cmp(keys, a, b));
        self.entries.truncate(self.k);
        if self.entries.len() == self.k {
            self.bound = self.entries.last().cloned();
        }
    }

    fn finish(mut self) -> Vec<TopkEntry> {
        let keys = self.keys;
        self.entries.sort_unstable_by(|a, b| topk_cmp(keys, a, b));
        if self.k != usize::MAX {
            self.entries.truncate(self.k);
        }
        self.entries
    }
}

fn index_insert(index: &mut FieldIndex, id: DocId, value: &Value) {
    match index.eq.entry(value.stable_hash()) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(id),
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(IdList::One(id));
        }
    }
    if let Some(range) = &mut index.range {
        match value.as_f64() {
            // NaN has no place in a total order (`Value::compare` calls
            // mixed NaN comparisons Equal, so a NaN doc satisfies Lte AND
            // Gte); park it with the non-numeric catch-all candidates.
            Some(f) if !f.is_nan() => range.push(range_key(f), id),
            _ => index.non_numeric.push(id),
        }
    }
}

fn project(doc: Arc<Value>, projection: &[String]) -> Arc<Value> {
    if projection.is_empty() {
        return doc;
    }
    let mut out = Map::new();
    for p in projection {
        if let Some(v) = doc.get_path(p) {
            out.insert(prov_model::Sym::from(p.as_str()), v.clone());
        }
    }
    Arc::new(Value::object(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggOp, Aggregate};
    use prov_model::obj;

    fn store() -> DocumentStore {
        let s = DocumentStore::new();
        for (i, (act, host, dur)) in [
            ("run_dft", "n0", 5.0),
            ("postprocess", "n0", 1.0),
            ("run_dft", "n1", 7.0),
            ("run_dft", "n1", 3.0),
        ]
        .iter()
        .enumerate()
        {
            s.insert(obj! {
                "task_id" => format!("t{i}"),
                "activity_id" => *act,
                "hostname" => *host,
                "generated" => obj! { "duration" => *dur },
            });
        }
        s
    }

    #[test]
    fn filter_and_project() {
        let s = store();
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .project(&["task_id", "generated.duration"]);
        let out = s.find(&q);
        assert_eq!(out.len(), 3);
        assert!(out[0].get("task_id").is_some());
        assert!(out[0].get("activity_id").is_none());
    }

    #[test]
    fn sort_and_limit() {
        let s = store();
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .sort_by("generated.duration", false)
            .limit(1);
        let out = s.find(&q);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].get_path("generated.duration").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn range_ops() {
        let s = store();
        let q = DocQuery::new().filter("generated.duration", Op::Gte, 3.0);
        assert_eq!(s.count(&q), 3);
        let q = DocQuery::new().filter("hostname", Op::Ne, "n0");
        assert_eq!(s.count(&q), 2);
        let q = DocQuery::new().filter("activity_id", Op::Contains, "dft");
        assert_eq!(s.count(&q), 3);
    }

    #[test]
    fn indexes_accelerate_equality() {
        let s = store();
        s.create_index("hostname");
        let q = DocQuery::new().filter("hostname", Op::Eq, "n1");
        assert_eq!(s.count(&q), 2);
        // Index also maintained for inserts after creation.
        s.insert(obj! {"task_id" => "t9", "hostname" => "n1"});
        assert_eq!(s.count(&q), 3);
    }

    #[test]
    fn multiple_indexed_eq_conditions_intersect() {
        let s = store();
        s.create_index("hostname");
        s.create_index("activity_id");
        let q = DocQuery::new()
            .filter("activity_id", Op::Eq, "run_dft")
            .filter("hostname", Op::Eq, "n0");
        assert_eq!(s.count(&q), 1);
        let hits = s.find(&q);
        assert_eq!(hits[0].get("task_id").and_then(Value::as_str), Some("t0"));
    }

    #[test]
    fn range_index_serves_range_predicates() {
        let s = store();
        s.create_range_index("generated.duration");
        for (op, expect) in [(Op::Gte, 3), (Op::Gt, 2), (Op::Lte, 2), (Op::Lt, 1)] {
            let q = DocQuery::new().filter("generated.duration", op, 3.0);
            assert_eq!(s.count(&q), expect, "{op:?}");
        }
        // Inserts after creation keep the sorted index live.
        s.insert(obj! {"generated" => obj! {"duration" => 9.5}});
        assert_eq!(
            s.count(&DocQuery::new().filter("generated.duration", Op::Gt, 7.0)),
            1
        );
        // Mixed-kind values are not lost to the numeric index.
        s.insert(obj! {"generated" => obj! {"duration" => "n/a"}});
        assert_eq!(
            s.count(&DocQuery::new().filter("generated.duration", Op::Gt, 7.0)),
            2 // 9.5 and the string (Str kind sorts above Float)
        );
    }

    #[test]
    fn range_index_handles_nan_and_signed_zero() {
        let indexed = DocumentStore::new();
        indexed.create_range_index("y");
        let plain = DocumentStore::new();
        for v in [
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Int(0),
            Value::Float(1.5),
        ] {
            let mut m = Map::new();
            m.insert("y".into(), v);
            indexed.insert(Value::object(m.clone()));
            plain.insert(Value::object(m));
        }
        // Indexed and unindexed stores must agree for every operator and
        // for zero / NaN bounds (compare() calls NaN comparisons Equal).
        for op in [Op::Gte, Op::Gt, Op::Lte, Op::Lt] {
            for bound in [
                Value::Float(0.0),
                Value::Float(-0.0),
                Value::Float(f64::NAN),
            ] {
                let q = DocQuery::new().filter("y", op, bound.clone());
                assert_eq!(indexed.count(&q), plain.count(&q), "{op:?} {bound:?}");
                // Compare rendered docs: NaN != NaN under PartialEq, but
                // both stores must return the same documents.
                assert_eq!(
                    format!("{:?}", indexed.find(&q)),
                    format!("{:?}", plain.find(&q)),
                    "{op:?} {bound:?}"
                );
            }
        }
    }

    #[test]
    fn find_returns_shared_handles() {
        let s = store();
        let a = s.find(&DocQuery::new().filter("task_id", Op::Eq, "t0"));
        let b = s.find(&DocQuery::new().filter("task_id", Op::Eq, "t0"));
        // Same allocation, not a deep clone.
        assert!(Arc::ptr_eq(&a[0], &b[0]));
    }

    #[test]
    fn ids_preserve_insertion_order_across_shards() {
        let s = DocumentStore::with_shards(4);
        for i in 0..10 {
            s.insert(obj! {"i" => i});
        }
        let out = s.find(&DocQuery::new());
        let got: Vec<i64> = out.iter().filter_map(|d| d.get("i")?.as_i64()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(s.get(7).unwrap().get("i").unwrap().as_i64(), Some(7));
    }

    #[test]
    fn aggregation_pipeline() {
        let s = store();
        let out = s.aggregate(
            &DocQuery::new(),
            &GroupSpec {
                key: "activity_id".into(),
                aggs: vec![
                    Aggregate {
                        path: "generated.duration".into(),
                        op: AggOp::Mean,
                    },
                    Aggregate {
                        path: "generated.duration".into(),
                        op: AggOp::Count,
                    },
                ],
            },
        );
        assert_eq!(out.len(), 2);
        let dft = out
            .iter()
            .find(|v| v.get("_id").and_then(Value::as_str) == Some("run_dft"))
            .unwrap();
        assert_eq!(
            dft.get("generated.duration_mean").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(
            dft.get("generated.duration_count").unwrap().as_i64(),
            Some(3)
        );
    }

    #[test]
    fn distinct_values() {
        let s = store();
        let hosts = s.distinct(&DocQuery::new(), "hostname");
        assert_eq!(hosts.len(), 2);
    }

    #[test]
    fn shard_and_thread_overrides_parse_and_cap() {
        assert_eq!(cap_override(None), None);
        assert_eq!(cap_override(Some("4")), Some(4));
        assert_eq!(cap_override(Some(" 16 ")), Some(16));
        assert_eq!(
            cap_override(Some("64")),
            Some(16),
            "capped like auto-tuning"
        );
        assert_eq!(cap_override(Some("0")), None);
        assert_eq!(cap_override(Some("-2")), None);
        assert_eq!(cap_override(Some("lots")), None);
        // The setter clamps the same way.
        let s = DocumentStore::with_shards(2);
        s.set_scan_threads(0);
        assert_eq!(s.scan_threads(), 1);
        s.set_scan_threads(64);
        assert_eq!(s.scan_threads(), 16);
    }

    fn task_docs(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| {
                prov_model::TaskMessageBuilder::new(format!("t{i}"), format!("wf-{}", i % 2), "act")
                    .status(if i % 3 == 0 {
                        prov_model::TaskStatus::Error
                    } else {
                        prov_model::TaskStatus::Finished
                    })
                    .span(i as f64, i as f64 + 1.0)
                    .build()
                    .to_value()
            })
            .collect()
    }

    #[test]
    fn columnar_scan_filters_in_id_order_with_limit() {
        let s = DocumentStore::with_shards(3);
        s.enable_columnar();
        s.insert_many(task_docs(12));
        let err = Value::from("ERROR");
        let ids = s
            .columnar_scan(&[("status", CmpOp::Eq, &err)], None)
            .unwrap();
        assert_eq!(ids, vec![0, 3, 6, 9]);
        let ids = s
            .columnar_scan(&[("status", CmpOp::Eq, &err)], Some(2))
            .unwrap();
        assert_eq!(ids, vec![0, 3]);
        // limit 0 returns nothing on every path (the parallel merge
        // truncates to 0; the sequential loops must agree).
        assert_eq!(
            s.columnar_scan(&[("status", CmpOp::Eq, &err)], Some(0))
                .unwrap(),
            Vec::<DocId>::new()
        );
        // Gather returns the frame cells for those ids, in order.
        let vals = s.columnar_gather(&ids, "task_id").unwrap();
        assert_eq!(vals, vec![Value::from("t0"), Value::from("t3")]);
        // Non-columnar columns are not servable.
        assert!(s.columnar_scan(&[("y", CmpOp::Eq, &err)], None).is_none());
        assert!(s.columnar_gather(&ids, "y").is_none());
    }

    #[test]
    fn columnar_backfill_equals_ingest_population() {
        let docs = task_docs(10);
        let eager = DocumentStore::with_shards(4);
        eager.enable_columnar();
        eager.insert_many(docs.clone());
        let late = DocumentStore::with_shards(4);
        late.insert_many(docs);
        late.enable_columnar(); // backfills under the shard locks
        for col in ["task_id", "status", "started_at", "duration"] {
            assert_eq!(
                eager.columnar_presence(col),
                late.columnar_presence(col),
                "{col}"
            );
        }
        let fin = Value::from("FINISHED");
        assert_eq!(
            eager.columnar_scan(&[("status", CmpOp::Eq, &fin)], None),
            late.columnar_scan(&[("status", CmpOp::Eq, &fin)], None),
        );
    }

    #[test]
    fn columnar_scan_uses_index_candidates_when_safe() {
        let s = DocumentStore::with_shards(2);
        s.create_index("workflow_id");
        s.enable_columnar();
        s.insert_many(task_docs(8));
        let wf = Value::from("wf-1");
        let ids = s
            .columnar_scan(&[("workflow_id", CmpOp::Eq, &wf)], None)
            .unwrap();
        assert_eq!(ids, vec![1, 3, 5, 7]);
        // Combined with an unindexed conjunct: the probe seeds, the
        // vectors verify.
        let bound = Value::Float(4.0);
        let ids = s
            .columnar_scan(
                &[
                    ("workflow_id", CmpOp::Eq, &wf),
                    ("started_at", CmpOp::Gt, &bound),
                ],
                None,
            )
            .unwrap();
        assert_eq!(ids, vec![5, 7]);
    }

    #[test]
    fn columnar_topk_orders_like_the_frame() {
        let s = DocumentStore::with_shards(3);
        s.enable_columnar();
        s.insert_many(task_docs(12)); // duration 1.0 everywhere: all ties
        let ids = |scan: TopkScan| match scan {
            TopkScan::Served(ids) => ids,
            other => panic!("expected Served, got {other:?}"),
        };
        // started_at = i: strictly increasing, so descending top-3 is the
        // last three ids; ascending is the first three.
        let desc = ids(s.columnar_topk(&[], &[("started_at", false)], Some(3)));
        assert_eq!(desc, vec![11, 10, 9]);
        let asc = ids(s.columnar_topk(&[], &[("started_at", true)], Some(3)));
        assert_eq!(asc, vec![0, 1, 2]);
        // All-tie key: insertion order breaks ties, both directions.
        let ties = ids(s.columnar_topk(&[], &[("duration", false)], Some(4)));
        assert_eq!(ties, vec![0, 1, 2, 3]);
        // Filter + sort compose; k larger than the survivor count is fine.
        let err = Value::from("ERROR");
        let filtered = ids(s.columnar_topk(
            &[("status", CmpOp::Eq, &err)],
            &[("started_at", false)],
            Some(100),
        ));
        assert_eq!(filtered, vec![9, 6, 3, 0]);
        // k = 0 and bare (unlimited) sorts.
        assert_eq!(
            ids(s.columnar_topk(&[], &[("started_at", true)], Some(0))),
            Vec::<DocId>::new()
        );
        let all = ids(s.columnar_topk(&[], &[("started_at", false)], None));
        assert_eq!(all, (0..12).rev().collect::<Vec<_>>());
        // Multi-key: tie on duration, then started_at descending.
        let multi =
            ids(s.columnar_topk(&[], &[("duration", true), ("started_at", false)], Some(3)));
        assert_eq!(multi, vec![11, 10, 9]);
    }

    #[test]
    fn columnar_topk_rejects_unservable_and_nan() {
        let s = DocumentStore::with_shards(2);
        s.enable_columnar();
        s.insert_many(task_docs(6));
        assert_eq!(
            s.columnar_topk(&[], &[("y", true)], Some(2)),
            TopkScan::NotServable
        );
        let v = Value::Int(1);
        assert_eq!(
            s.columnar_topk(&[("y", CmpOp::Eq, &v)], &[("started_at", true)], Some(2)),
            TopkScan::NotServable
        );
        // A NaN sort-key cell among the survivors aborts.
        s.insert(obj! {
            "task_id" => "nan", "workflow_id" => "wf", "activity_id" => "a",
            "started_at" => f64::NAN, "ended_at" => 1.0,
        });
        assert_eq!(
            s.columnar_topk(&[], &[("started_at", true)], Some(3)),
            TopkScan::NanSortKey
        );
        // …but filters that drop the NaN row keep the scan servable.
        let wf = Value::from("wf-0");
        assert!(matches!(
            s.columnar_topk(
                &[("workflow_id", CmpOp::Eq, &wf)],
                &[("started_at", true)],
                Some(3)
            ),
            TopkScan::Served(_)
        ));
    }

    #[test]
    fn topk_cursor_and_buffer_paths_agree() {
        // Same corpus, one store with the started_at range index (cursor
        // eligible — ProvenanceDatabase always builds it) and one without
        // (bounded-buffer path only): identical answers either way.
        let docs = task_docs(30);
        let indexed = DocumentStore::with_shards(4);
        indexed.create_range_index("started_at");
        indexed.enable_columnar();
        indexed.insert_many(docs.clone());
        let plain = DocumentStore::with_shards(4);
        plain.enable_columnar();
        plain.insert_many(docs);
        let fin = Value::from("FINISHED");
        for (filters, k) in [
            (vec![], Some(5)),
            (vec![("status", CmpOp::Eq, &fin)], Some(7)),
            (vec![], Some(100)),
            (vec![], None),
        ] {
            for asc in [true, false] {
                assert_eq!(
                    indexed.columnar_topk(&filters, &[("started_at", asc)], k),
                    plain.columnar_topk(&filters, &[("started_at", asc)], k),
                    "asc={asc} k={k:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_scans_agree() {
        // Above the parallel threshold so the threaded path actually runs.
        let docs = task_docs(PARALLEL_SCAN_THRESHOLD + 500);
        let s = DocumentStore::with_shards(4);
        s.enable_columnar();
        s.insert_many(docs);
        let bound = Value::Float(0.5);
        let fin = Value::from("FINISHED");
        s.set_scan_threads(1);
        let seq_scan = s.columnar_scan(&[("duration", CmpOp::Gt, &bound)], None);
        let seq_lim = s.columnar_scan(&[("status", CmpOp::Eq, &fin)], Some(97));
        let seq_topk = s.columnar_topk(
            &[("status", CmpOp::Eq, &fin)],
            &[("duration", false), ("started_at", true)],
            Some(9),
        );
        s.set_scan_threads(4);
        assert_eq!(
            s.columnar_scan(&[("duration", CmpOp::Gt, &bound)], None),
            seq_scan
        );
        assert_eq!(
            s.columnar_scan(&[("status", CmpOp::Eq, &fin)], Some(97)),
            seq_lim
        );
        assert_eq!(
            s.columnar_topk(
                &[("status", CmpOp::Eq, &fin)],
                &[("duration", false), ("started_at", true)],
                Some(9),
            ),
            seq_topk
        );
    }

    #[test]
    fn batch_insert_takes_one_pass() {
        let s = DocumentStore::with_shards(3);
        s.create_index("k");
        let batch: Vec<Value> = (0..100).map(|i| obj! {"k" => i % 5}).collect();
        assert_eq!(s.insert_many(batch), 100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.count(&DocQuery::new().filter("k", Op::Eq, 3)), 20);
    }
}
