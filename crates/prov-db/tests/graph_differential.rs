//! Differential property tests for the CSR graph kernels: over random
//! DAGs *and* cyclic graphs — with duplicate edges, self-loops, phantom
//! endpoints, and mixed `add_edge`/`apply_batch` ingest — every CSR
//! kernel must produce exactly the output of the locking adjacency-map
//! oracle in `prov_db::graph`, at every thread count. A golden set then
//! pins the provql path primitives to identical answers through both
//! executor paths (CSR pushdown vs the `GraphOracle` capability), and a
//! racing-writer test pins snapshot CSR reads under concurrent
//! `apply_batch`/streaming ingest.

use proptest::prelude::*;
use prov_db::{CsrGraph, Direction, GraphBatch, GraphOracle, GraphStore, ProvenanceDatabase};
use prov_db::{Pushdown, StoreSnapshot};
use prov_model::{Map, TaskMessage, TaskMessageBuilder};
use provql::parse;
use std::sync::Arc;

const RELS: &[&str] = &["prov:wasInformedBy", "prov:wasAssociatedWith", "x:custom"];

/// Thread counts the kernels must be invariant across (1 forces the
/// sequential path; 8 exceeds any CI runner's auto-tuned count, which the
/// thread-matrix CI leg also forces via `PROVDB_THREADS`).
const THREADS: &[usize] = &[1, 8];

#[derive(Debug, Clone)]
struct RandomGraph {
    n: usize,
    /// Upserted node indices (everything else reached by an edge is a
    /// phantom endpoint).
    nodes: Vec<usize>,
    /// `(from, to, rel)` — unconstrained, so cycles, self-loops, and
    /// duplicate edges all occur.
    edges: Vec<(usize, usize, usize)>,
}

fn arb_graph() -> impl Strategy<Value = RandomGraph> {
    (
        2usize..24,
        prop::collection::vec(0usize..24, 1..24),
        prop::collection::vec((0usize..24, 0usize..24, 0..RELS.len()), 0..60),
    )
        .prop_map(|(n, nodes, edges)| RandomGraph {
            n,
            nodes: nodes.into_iter().map(|i| i % n).collect(),
            edges: edges
                .into_iter()
                .map(|(f, t, r)| (f % n, t % n, r))
                .collect(),
        })
}

/// Materialize through both write paths: odd edges via per-edge
/// `add_edge`, even edges batched through one `apply_batch`.
fn build_store(g: &RandomGraph) -> GraphStore {
    let store = GraphStore::new();
    let mut batch = GraphBatch::new();
    for &i in &g.nodes {
        batch.upsert_node(format!("t{i}"), "prov:Activity", Map::new());
    }
    for (k, &(f, t, r)) in g.edges.iter().enumerate() {
        if k % 2 == 1 {
            store.add_edge(format!("t{f}"), format!("t{t}"), RELS[r]);
        } else {
            batch.add_edge(format!("t{f}"), format!("t{t}"), RELS[r]);
        }
    }
    store.apply_batch(batch);
    store
}

fn owned(hits: Vec<(prov_model::Sym, usize)>) -> Vec<(String, usize)> {
    hits.into_iter().map(|(s, d)| (s.to_string(), d)).collect()
}

/// Every consecutive pair of a returned path must be a directed edge of
/// the store (any relation), and the endpoints must be the query's.
fn assert_valid_path(store: &GraphStore, path: &[prov_model::Sym], from: &str, to: &str) {
    assert_eq!(path.first().map(|s| s.as_str()), Some(from));
    assert_eq!(path.last().map(|s| s.as_str()), Some(to));
    for pair in path.windows(2) {
        assert!(
            store
                .neighbors_out(pair[0].as_str(), "")
                .iter()
                .any(|n| n == pair[1].as_str()),
            "path hop {} -> {} is not an edge",
            pair[0],
            pair[1]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BFS traversal, k-hop, transitive closure: CSR ≡ adjacency oracle,
    /// byte-for-byte (ids *and* emission order), at 1 and 8 threads.
    #[test]
    fn csr_kernels_match_adjacency_oracle(
        g in arb_graph(),
        start in 0usize..24,
        rel_i in 0usize..4,
        depth in 0usize..6,
    ) {
        let store = build_store(&g);
        let csr = CsrGraph::build(&store);
        let start = format!("t{}", start % g.n);
        // 3 = any-relation; RELS[..] includes a rel the graph may not use.
        let rel = if rel_i == 3 { "" } else { RELS[rel_i] };
        for &threads in THREADS {
            csr.set_traverse_threads(threads);
            prop_assert_eq!(
                owned(csr.traverse(&start, rel, Direction::Out, depth)),
                store.traverse(&start, rel, depth),
                "traverse(rel={}, depth={}, threads={})", rel, depth, threads
            );
            prop_assert_eq!(
                owned(csr.upstream(&start, depth)),
                store.upstream_lineage(&start, depth),
                "upstream(threads={})", threads
            );
            prop_assert_eq!(
                owned(csr.downstream(&start, depth)),
                store.downstream_impact(&start, depth),
                "downstream(threads={})", threads
            );
            prop_assert_eq!(
                owned(csr.khop(&start, depth)),
                store.khop(&start, depth),
                "khop(threads={})", threads
            );
            // Unbounded transitive closure (cycles must terminate).
            prop_assert_eq!(
                owned(csr.upstream(&start, usize::MAX)),
                store.upstream_lineage(&start, usize::MAX),
                "closure(threads={})", threads
            );
        }
    }

    /// Shortest path: the forward kernel is tie-break-identical to the
    /// oracle; the bidirectional kernel agrees on reachability and length
    /// and always returns a real path.
    #[test]
    fn csr_paths_match_adjacency_oracle(
        g in arb_graph(),
        a in 0usize..24,
        b in 0usize..24,
    ) {
        let store = build_store(&g);
        let csr = CsrGraph::build(&store);
        let from = format!("t{}", a % g.n);
        let to = format!("t{}", b % g.n);
        let oracle = store.shortest_path(&from, &to);
        let exact = csr.shortest_path(&from, &to);
        prop_assert_eq!(
            exact.map(|p| p.iter().map(|s| s.to_string()).collect::<Vec<_>>()),
            oracle.clone()
        );
        let bidi = csr.shortest_path_bidi(&from, &to);
        match (&oracle, &bidi) {
            (None, None) => {}
            (Some(o), Some(bi)) => {
                prop_assert_eq!(o.len(), bi.len(), "bidi found a different length");
                if from != to {
                    assert_valid_path(&store, bi, &from, &to);
                }
            }
            _ => prop_assert!(false, "reachability disagrees: {:?} vs {:?}", oracle, bidi),
        }
    }

    /// Membership and node metadata: real nodes only (phantom edge
    /// endpoints are traversable but not present).
    #[test]
    fn csr_membership_matches_store(g in arb_graph(), probe in 0usize..24) {
        let store = build_store(&g);
        let csr = CsrGraph::build(&store);
        let id = format!("t{}", probe % g.n);
        prop_assert_eq!(csr.contains_node(&id), store.node(&id).is_some());
        prop_assert_eq!(
            csr.node_label(&id).map(|l| l.to_string()),
            store.node(&id).map(|n| n.label)
        );
        prop_assert_eq!(csr.node_count(), store.node_count());
        prop_assert_eq!(csr.edge_count(), store.edge_count());
    }
}

/// A frontier large enough to engage the crossbeam fan-out (≥ 4096),
/// with enough shared children that worker pre-filter chunks overlap —
/// the parallel merge's dedup must keep output identical to sequential.
#[test]
fn parallel_frontier_is_thread_count_invariant() {
    let store = GraphStore::new();
    let mut batch = GraphBatch::new();
    batch.upsert_node("root", "prov:Activity", Map::new());
    for i in 0..8192usize {
        batch.add_edge("root", format!("mid{i}"), RELS[0]);
        // Many mids share leaves: duplicates survive distinct chunks'
        // read-only pre-filters and must be dropped by the merge.
        batch.add_edge(format!("mid{i}"), format!("leaf{}", i % 600), RELS[0]);
        batch.add_edge(format!("mid{i}"), format!("leaf{}", (i * 7) % 600), RELS[0]);
    }
    store.apply_batch(batch);
    let csr = CsrGraph::build(&store);

    csr.set_traverse_threads(1);
    let seq_up = owned(csr.traverse("root", RELS[0], Direction::Out, 3));
    let seq_khop = owned(csr.khop("root", 2));
    csr.set_traverse_threads(8);
    assert_eq!(
        seq_up,
        owned(csr.traverse("root", RELS[0], Direction::Out, 3))
    );
    assert_eq!(seq_khop, owned(csr.khop("root", 2)));
    // And both agree with the oracle.
    assert_eq!(seq_up, store.traverse("root", RELS[0], 3));
    assert_eq!(seq_khop, store.khop("root", 2));
    assert_eq!(seq_up.len(), 8192 + 600);
}

/// A linear chain `t0 ← t1 ← … ← t{n-1}` (each task informed by its
/// predecessor): every graph query has a unique answer, so both executor
/// paths must agree exactly — including on the path primitive.
fn chain_db(n: usize) -> Arc<ProvenanceDatabase> {
    let db = Arc::new(ProvenanceDatabase::new());
    let msgs: Vec<TaskMessage> = (0..n)
        .map(|i| {
            let b = TaskMessageBuilder::new(format!("t{i}"), "wf-g", format!("act{}", i % 3))
                .span(i as f64, i as f64 + 1.0);
            if i > 0 {
                b.depends_on(format!("t{}", i - 1)).build()
            } else {
                b.build()
            }
        })
        .collect();
    db.insert_batch(&msgs);
    db
}

/// Golden-set parity: one provql graph query, both executor paths — the
/// plan with graph pushdown (CSR kernels) and the plan through
/// [`GraphOracle`] (locking adjacency traversals) — plus the snapshot
/// query API (cache + CSR), all answering identically.
#[test]
fn provql_graph_primitives_agree_through_both_executor_paths() {
    let db = chain_db(10);
    let snap = db.snapshot();
    for text in [
        r#"upstream("t5", 3)"#,
        r#"upstream("t9", 16)"#,
        r#"downstream("t0", 16)"#,
        r#"downstream("t4", 2)"#,
        r#"khop("t3", 2)"#,
        r#"khop("t0", 1)"#,
        r#"paths("t9", "t0")"#,
        r#"paths("t2", "t6")"#, // unreachable: edges point effect → cause
        r#"paths("t4", "t4")"#,
        r#"upstream("ghost", 4)"#, // unknown node: empty, not an error
        r#"len(upstream("t9", 16))"#,
        r#"len(paths("t7", "t1"))"#,
        r#"len(upstream("t9", 16)) - len(downstream("t9", 16))"#,
    ] {
        let query = parse(text).unwrap();
        let fast_plan = provql::plan(&query, db.as_ref());
        let oracle_plan = provql::plan(&query, &GraphOracle(&db));
        let Pushdown::Executed(fast) = prov_db::execute_plan(&db, &fast_plan) else {
            panic!("{text}: CSR path refused to execute");
        };
        let Pushdown::Executed(oracle) = prov_db::execute_plan(&db, &oracle_plan) else {
            panic!("{text}: oracle path refused to execute");
        };
        assert_eq!(fast, oracle, "{text}: executor paths disagree");
        // The snapshot query API (plan cache + pinned CSR) agrees too.
        let (snap_out, _) = snap.query(&query);
        let snap_out = snap_out.unwrap_or_else(|e| panic!("{text}: snapshot query failed: {e}"));
        assert_eq!(
            Ok((*snap_out).clone()),
            fast,
            "{text}: snapshot path disagrees"
        );
    }
}

/// Graph queries route through the plan executor, never the oracle frame:
/// answering them must not materialize the snapshot's frame.
#[test]
fn graph_queries_never_build_the_oracle_frame() {
    let db = chain_db(6);
    let snap = db.snapshot();
    for text in [
        r#"upstream("t5", 16)"#,
        r#"paths("t5", "t0")"#,
        r#"khop("t2", 2)"#,
    ] {
        let (out, _) = snap.query(&parse(text).unwrap());
        out.unwrap();
    }
    assert!(
        !snap.oracle_built(),
        "graph primitives must be served from the CSR, not the oracle frame"
    );
}

/// Racing `apply_batch`/streaming writers vs snapshot CSR readers. Each
/// reader pins a snapshot and must see (a) the same CSR on every access
/// (repeatable reads) and (b) the complete dependency chain below the
/// snapshot's generation — writers appending ahead never corrupt or
/// truncate what the snapshot already covers.
#[test]
fn csr_snapshots_under_racing_writers() {
    const N: usize = 600;
    let db = Arc::new(ProvenanceDatabase::new());
    db.insert_batch(std::iter::once(
        &TaskMessageBuilder::new("t0", "wf-r", "seed").build(),
    ));

    std::thread::scope(|s| {
        let writer_db = Arc::clone(&db);
        s.spawn(move || {
            for i in 1..N {
                let msg = TaskMessageBuilder::new(format!("t{i}"), "wf-r", "step")
                    .depends_on(format!("t{}", i - 1))
                    .build();
                // Alternate the eager path and the pending-log path so the
                // CSR build races both materialized and pending ingest.
                if i % 2 == 0 {
                    writer_db.insert_batch(std::iter::once(&msg));
                } else {
                    writer_db.insert_batch_shared(std::iter::once(Arc::new(msg)));
                }
            }
        });
        for _ in 0..3 {
            let reader_db = Arc::clone(&db);
            s.spawn(move || {
                for _ in 0..40 {
                    let snap: Arc<StoreSnapshot> = reader_db.snapshot();
                    let gen = snap.generation() as usize;
                    let csr = Arc::clone(snap.graph_csr());
                    // Repeatable: the snapshot hands out one pinned CSR.
                    assert!(Arc::ptr_eq(&csr, snap.graph_csr()));
                    let last = format!("t{}", gen - 1);
                    let up = csr.upstream(&last, usize::MAX);
                    // The chain below the snapshot generation is complete
                    // and in exact BFS order, no matter how far ahead the
                    // writer has run.
                    assert_eq!(up.len(), gen - 1, "upstream of {last}");
                    for (d, (id, depth)) in up.iter().enumerate() {
                        assert_eq!(*depth, d + 1);
                        assert_eq!(id.as_str(), format!("t{}", gen - 2 - d));
                    }
                }
            });
        }
    });

    // Settled state: CSR ≡ oracle on the final corpus.
    let snap = db.snapshot();
    let csr = snap.graph_csr();
    assert_eq!(
        owned(csr.upstream(&format!("t{}", N - 1), usize::MAX)),
        snap.graph()
            .upstream_lineage(&format!("t{}", N - 1), usize::MAX)
    );
    assert_eq!(csr.node_count(), N);
}
