//! Concurrency and equivalence tests for the sharded document store:
//! writer/reader stress under contention, and agreement with a single-shard
//! reference store on the same corpus.

use prov_db::{AggOp, Aggregate, DocQuery, DocumentStore, GroupSpec, Op, ProvenanceDatabase};
use prov_model::{obj, TaskMessageBuilder, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn doc(writer: usize, i: usize) -> Value {
    obj! {
        "task_id" => format!("w{writer}-t{i}"),
        "writer" => writer,
        "seq" => i,
        "activity_id" => format!("act{}", i % 4),
        "generated" => obj! { "y" => (i as f64) * 0.5 },
    }
}

/// N writer threads + M reader threads hammering one sharded store. Readers
/// must only ever observe internally consistent results; afterwards the
/// store must agree with a single-shard reference holding the same corpus.
#[test]
fn concurrent_ingest_and_query_match_single_shard_reference() {
    const WRITERS: usize = 4;
    const READERS: usize = 3;
    const PER_WRITER: usize = 2_000;

    let store = Arc::new(DocumentStore::with_shards(8));
    store.create_index("activity_id");
    store.create_index("writer");
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let store = store.clone();
            s.spawn(move || {
                // Mix single inserts and batches to cover both lock paths.
                let mut batch = Vec::new();
                for i in 0..PER_WRITER {
                    if i % 3 == 0 {
                        store.insert(doc(w, i));
                    } else {
                        batch.push(doc(w, i));
                        if batch.len() >= 64 {
                            store.insert_many(std::mem::take(&mut batch));
                        }
                    }
                }
                store.insert_many(batch);
            });
        }
        for r in 0..READERS {
            let store = store.clone();
            let done = done.clone();
            s.spawn(move || {
                let q_act = DocQuery::new().filter("activity_id", Op::Eq, format!("act{}", r % 4));
                let q_writer = DocQuery::new().filter("writer", Op::Eq, 0).limit(10);
                while !done.load(Ordering::Relaxed) {
                    // Every hit must actually satisfy the query (indexes can
                    // never leak false positives), and counts stay bounded.
                    for hit in store.find(&q_act) {
                        assert_eq!(
                            hit.get("activity_id").and_then(Value::as_str),
                            Some(format!("act{}", r % 4).as_str())
                        );
                    }
                    assert!(store.count(&q_writer) <= PER_WRITER);
                    assert!(store.len() <= WRITERS * PER_WRITER);
                }
            });
        }
        // Writers finish first; then release the readers.
        // (Scoped threads join at the end of the closure, so flag ordering
        // is handled by spawning writers above and setting `done` when the
        // writer handles would be joined — emulate by busy-waiting on len.)
        while store.len() < WRITERS * PER_WRITER {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
    });

    assert_eq!(store.len(), WRITERS * PER_WRITER);

    // Single-shard reference with the identical corpus.
    let reference = DocumentStore::with_shards(1);
    reference.create_index("activity_id");
    for w in 0..WRITERS {
        for i in 0..PER_WRITER {
            reference.insert(doc(w, i));
        }
    }

    // Counts agree on every slice.
    for a in 0..4 {
        let q = DocQuery::new().filter("activity_id", Op::Eq, format!("act{a}"));
        assert_eq!(store.count(&q), reference.count(&q));
    }
    for w in 0..WRITERS {
        let q = DocQuery::new().filter("writer", Op::Eq, w);
        assert_eq!(store.count(&q), reference.count(&q));
    }

    // Full result sets agree as multisets (concurrent writers interleave,
    // so global insertion order is not defined across threads).
    let mut got: Vec<String> = store
        .find(&DocQuery::new())
        .iter()
        .filter_map(|d| Some(d.get("task_id")?.as_str()?.to_string()))
        .collect();
    let mut want: Vec<String> = reference
        .find(&DocQuery::new())
        .iter()
        .filter_map(|d| Some(d.get("task_id")?.as_str()?.to_string()))
        .collect();
    got.sort();
    want.sort();
    assert_eq!(got, want);

    // Aggregates agree (order-insensitive compare on the group key).
    let group = GroupSpec {
        key: "activity_id".into(),
        aggs: vec![
            Aggregate {
                path: "generated.y".into(),
                op: AggOp::Count,
            },
            Aggregate {
                path: "generated.y".into(),
                op: AggOp::Sum,
            },
        ],
    };
    let key_of = |v: &Value| {
        v.get("_id")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };
    let mut got = store.aggregate(&DocQuery::new(), &group);
    let mut want = reference.aggregate(&DocQuery::new(), &group);
    got.sort_by_key(key_of);
    want.sort_by_key(key_of);
    assert_eq!(got, want);
}

/// Single-threaded ingest: a sharded store and a 1-shard store must agree
/// *exactly*, including result order, for every query shape.
#[test]
fn sharded_results_equal_single_shard_in_order() {
    let sharded = DocumentStore::with_shards(7);
    let single = DocumentStore::with_shards(1);
    sharded.create_index("activity_id");
    single.create_index("activity_id");
    sharded.create_range_index("seq");
    single.create_range_index("seq");
    for i in 0..500 {
        let d = doc(i % 3, i);
        sharded.insert(d.clone());
        single.insert(d);
    }
    let queries = [
        DocQuery::new(),
        DocQuery::new().filter("activity_id", Op::Eq, "act2"),
        DocQuery::new()
            .filter("seq", Op::Gte, 100)
            .filter("seq", Op::Lt, 200),
        DocQuery::new()
            .filter("activity_id", Op::Eq, "act1")
            .sort_by("generated.y", false)
            .limit(17),
        DocQuery::new()
            .filter("task_id", Op::Contains, "w2")
            .project(&["task_id", "seq"]),
    ];
    for q in &queries {
        assert_eq!(sharded.find(q), single.find(q), "query {q:?}");
        assert_eq!(sharded.count(q), single.count(q), "count {q:?}");
    }
    assert_eq!(
        sharded.distinct(&DocQuery::new(), "activity_id"),
        single.distinct(&DocQuery::new(), "activity_id")
    );
}

/// Concurrent streaming accept (`insert_batch_shared`) racing readers that
/// force view materialization: nothing is lost, nothing is duplicated.
#[test]
fn streaming_accept_races_materializing_readers() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 1_000;
    let db = ProvenanceDatabase::shared();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let msg = Arc::new(
                        TaskMessageBuilder::new(format!("s{t}-{i}"), "wf-s", "step").build(),
                    );
                    db.insert_batch_shared(std::iter::once(msg));
                    if i % 97 == 0 {
                        // Reader role: force a flush mid-stream.
                        assert!(db.count(&DocQuery::new()) <= THREADS * PER_THREAD);
                    }
                }
            });
        }
    });
    let total = THREADS * PER_THREAD;
    assert_eq!(db.insert_count() as usize, total);
    assert_eq!(db.documents().len(), total);
    assert_eq!(db.kv().len(), total);
    assert_eq!(db.graph().node_count(), total);
}

/// The unified facade under concurrent keeper-style batch ingest: all three
/// backends converge to the same totals.
#[test]
fn facade_concurrent_batch_ingest_converges() {
    const THREADS: usize = 4;
    const BATCHES: usize = 20;
    const PER_BATCH: usize = 25;
    let db = ProvenanceDatabase::shared();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = db.clone();
            s.spawn(move || {
                for b in 0..BATCHES {
                    let msgs: Vec<_> = (0..PER_BATCH)
                        .map(|i| {
                            TaskMessageBuilder::new(
                                format!("t{t}-{b}-{i}"),
                                format!("wf-{t}"),
                                "step",
                            )
                            .span(i as f64, i as f64 + 1.0)
                            .build()
                        })
                        .collect();
                    db.insert_batch(&msgs);
                }
            });
        }
    });
    let total = THREADS * BATCHES * PER_BATCH;
    assert_eq!(db.insert_count() as usize, total);
    assert_eq!(db.documents().len(), total);
    assert_eq!(db.kv().len(), total);
    assert_eq!(db.graph().node_count(), total);
    for t in 0..THREADS {
        assert_eq!(
            db.workflow_tasks(&format!("wf-{t}")).len(),
            BATCHES * PER_BATCH
        );
    }
    // Range index on started_at answers under the post-ingest state.
    assert_eq!(
        db.count(&DocQuery::new().filter("started_at", Op::Gte, 20.0)),
        THREADS * BATCHES * 5 // i in 20..25 per batch
    );
}
