//! Crash-recovery differential suite: a durable store that crashed and
//! was reopened must answer every golden pipeline **byte-identically**
//! (same `Debug` rendering, NaN cells included) to a never-crashed
//! in-memory oracle holding the same accepted prefix.
//!
//! Crashes are simulated at the storage layer: the WAL is truncated at
//! (and inside) every record boundary, which is exactly the on-disk
//! state a `PROVDB_CRASH_AFTER` abort leaves behind — the bench crate's
//! `crash_harness` binary drives the real-abort version of the same
//! contract. Sealed segments and compaction are exercised end-to-end:
//! seal, merge, reopen, and the answers must not move.
//!
//! On failure the durable directories survive under the artifact root
//! (`PROVDB_TEST_ARTIFACT_DIR`, default the system temp dir); CI uploads
//! that root from failed runs so the WAL/segment bytes that broke replay
//! can be inspected.

use proptest::prelude::*;
use prov_db::{DurabilityOptions, ProvenanceDatabase, SyncPolicy};
use prov_model::{TaskMessage, TaskMessageBuilder, TaskStatus};
use provql::{execute, parse};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Golden pipelines: filters over hot string and float columns, grouped
/// aggregation, ordered top-k through both index and heap paths, NaN
/// arithmetic, and graph-free scans — the query families the engine's
/// pushdown tiers split on.
const GOLDEN: &[&str] = &[
    r#"len(df)"#,
    r#"len(df[df["status"] == "ERROR"])"#,
    r#"len(df[df["workflow_id"] != "wf-1"])"#,
    r#"df[df["status"] != "ERROR"]["duration"].sum()"#,
    r#"df["started_at"].mean()"#,
    r#"df["y"].sum()"#,
    r#"df[df["started_at"] >= 12]["task_id"]"#,
    r#"len(df[df["hostname"].isin(["n0", "n2"])])"#,
    r#"df.groupby("activity_id")["duration"].mean()"#,
    r#"df.groupby("workflow_id")["started_at"].count()"#,
    r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(5)"#,
    r#"df.sort_values("duration")[["task_id"]].head(4)"#,
    r#"df[["task_id", "workflow_id"]].head(6)"#,
    r#"df["status"].value_counts()"#,
    r#"df[df["cpu_percent_end"] > 20]["task_id"]"#,
];

/// Cheap subset for the large sealed-corpus test.
const GOLDEN_FAST: &[&str] = &[
    r#"len(df)"#,
    r#"len(df[df["status"] == "ERROR"])"#,
    r#"df[df["status"] != "ERROR"]["duration"].sum()"#,
    r#"df.groupby("activity_id")["duration"].count()"#,
    r#"df.sort_values("started_at", ascending=False)[["task_id"]].head(5)"#,
    r#"df["y"].sum()"#,
];

/// Deterministic corpus: hot fields cycle, every 11th `y` payload is NaN
/// (the value the textual JSON writer cannot round-trip — the binary WAL
/// codec must; the golden set sums it but never sorts on it, since the
/// oracle's comparator refuses NaN sort keys), every 7th message has
/// lineage + an agent, every 5th a dataflow payload.
fn corpus(n: usize) -> Vec<TaskMessage> {
    (0..n)
        .map(|i| {
            let status = match i % 4 {
                0 => TaskStatus::Error,
                1 => TaskStatus::Running,
                _ => TaskStatus::Finished,
            };
            let y = if i % 11 == 3 {
                f64::NAN
            } else {
                i as f64 * 0.5
            };
            let mut b = TaskMessageBuilder::new(
                format!("t{i}"),
                format!("wf-{}", i % 3),
                format!("act{}", i % 2),
            )
            .host(format!("n{}", i % 4))
            .status(status)
            .span(i as f64, i as f64 + 1.5)
            .uses("y", y);
            if i % 7 == 2 && i > 0 {
                b = b.depends_on(format!("t{}", i - 1)).agent("agent-7");
            }
            if i % 5 == 1 {
                b = b.generates("out", i as f64);
            }
            b.build()
        })
        .collect()
}

/// Never-crashed oracle over `msgs`, built through the eager path.
fn oracle(msgs: &[TaskMessage]) -> ProvenanceDatabase {
    let db = ProvenanceDatabase::new();
    db.insert_batch(msgs);
    db
}

/// `DataFrame`'s Debug form includes its name→position `HashMap`, whose
/// iteration order is per-instance random. The mapping is fully derived
/// from the (ordered, compared) column list, so scrub it before
/// byte-comparing.
fn scrub_index_maps(mut s: String) -> String {
    const KEY: &str = "index: {";
    let mut from = 0;
    while let Some(at) = s[from..].find(KEY) {
        let open = from + at + KEY.len() - 1;
        let Some(close) = s[open..].find('}') else {
            break;
        };
        s.replace_range(open..open + close + 1, "_");
        from += at + KEY.len();
    }
    s
}

/// The byte-identity fingerprint: for every golden pipeline, the `Debug`
/// rendering of the full-frame oracle answer plus the pushdown outcome.
/// NaN prints as `NaN`, so bit-preserved NaN cells compare equal here
/// while any value drift (or a pushdown tier flipping) does not.
fn fingerprint(db: &ProvenanceDatabase, queries: &[&str]) -> Vec<String> {
    let frame = prov_db::full_frame(db);
    queries
        .iter()
        .map(|text| {
            let q = parse(text).expect("golden query parses");
            let full = execute(&q, &frame);
            let pushed = match prov_db::try_execute(db, &q) {
                prov_db::Pushdown::Executed(r) => format!("pushed:{r:?}"),
                prov_db::Pushdown::NeedsFullFrame(r) => format!("fallback:{r}"),
            };
            scrub_index_maps(format!("{text} => {full:?} | {pushed}"))
        })
        .collect()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh durable directory under the artifact root. Kept on panic
/// (the cleanup call at the end of the test never runs), so CI's
/// `if: failure()` artifact step can upload the bytes.
fn fresh_dir(tag: &str) -> PathBuf {
    let root = std::env::var("PROVDB_TEST_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let dir = root.join(format!(
        "provdb-recovery-{}-{}-{}",
        std::process::id(),
        tag,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create durable dir");
    dir
}

fn opts(sync: SyncPolicy) -> DurabilityOptions {
    DurabilityOptions {
        sync,
        ..DurabilityOptions::default()
    }
}

/// Walk the WAL's record framing: byte offsets of every record boundary
/// (including offset-of-header = boundary 0). Framing only — checksums
/// are the store's job.
fn wal_boundaries(wal: &[u8]) -> Vec<usize> {
    let mut offsets = vec![6]; // past "PWAL1\n"
    let mut pos = 6usize;
    while pos + 16 <= wal.len() {
        let len = u32::from_le_bytes(wal[pos + 8..pos + 12].try_into().unwrap()) as usize;
        if pos + 16 + len > wal.len() {
            break;
        }
        pos += 16 + len;
        offsets.push(pos);
    }
    offsets
}

/// Ingest `msgs` durably in `batch`-sized streaming batches, flushing
/// each one (handing it to the WAL), then drop the store.
fn ingest_durably(dir: &PathBuf, msgs: &[TaskMessage], batch: usize, sync: SyncPolicy) {
    let db = ProvenanceDatabase::open_with(dir, opts(sync)).expect("open durable");
    for chunk in msgs.chunks(batch.max(1)) {
        db.insert_batch_shared(chunk.iter().cloned().map(Arc::new));
        db.flush_views();
    }
    drop(db);
}

/// A durable store reopened after a clean shutdown answers every golden
/// pipeline byte-identically to the never-crashed oracle — under both
/// sync policies, mixing the streaming and eager ingest paths.
#[test]
fn reopened_store_matches_oracle_under_both_sync_policies() {
    let msgs = corpus(57);
    let want = fingerprint(&oracle(&msgs), GOLDEN);
    for sync in [SyncPolicy::Always, SyncPolicy::Batch] {
        let dir = fresh_dir("reopen");
        {
            let db = ProvenanceDatabase::open_with(&dir, opts(sync)).expect("open durable");
            db.insert_batch_shared(msgs[..20].iter().cloned().map(Arc::new));
            db.flush_views();
            db.insert_batch(&msgs[20..40]);
            db.insert_batch_shared(msgs[40..].iter().cloned().map(Arc::new));
            db.flush_views();
        }
        let back = ProvenanceDatabase::open(&dir).expect("reopen");
        assert_eq!(back.insert_count(), msgs.len() as u64, "sync={sync:?}");
        assert_eq!(fingerprint(&back, GOLDEN), want, "sync={sync:?}");
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash at **every** WAL record boundary — and torn mid-record — of a
/// deterministic ingest schedule: the recovered store must hold exactly
/// the replayable prefix and answer the golden set byte-identically to
/// an oracle over that prefix.
#[test]
fn crash_at_every_wal_record_boundary_replays_the_prefix() {
    let msgs = corpus(36);
    let src = fresh_dir("crash-src");
    // Varied batch sizes so records land mid-batch and at batch edges.
    {
        let db = ProvenanceDatabase::open_with(&src, opts(SyncPolicy::Batch)).expect("open");
        let mut i = 0usize;
        for (b, size) in [3usize, 1, 7, 2, 5, 4, 6, 8].iter().enumerate().cycle() {
            if i >= msgs.len() {
                break;
            }
            let end = (i + size).min(msgs.len());
            db.insert_batch_shared(msgs[i..end].iter().cloned().map(Arc::new));
            db.flush_views();
            i = end;
            let _ = b;
        }
    }
    let wal = std::fs::read(src.join("wal.log")).expect("read wal");
    let boundaries = wal_boundaries(&wal);
    assert_eq!(boundaries.len(), msgs.len() + 1, "one boundary per record");

    let crash = fresh_dir("crash-replay");
    for (k, &cut) in boundaries.iter().enumerate() {
        // Crash exactly at the boundary: k records replay...
        std::fs::write(crash.join("wal.log"), &wal[..cut]).expect("truncate");
        let back = ProvenanceDatabase::open(&crash).expect("recover");
        assert_eq!(back.insert_count(), k as u64, "boundary {k}");
        let want = fingerprint(&oracle(&msgs[..k]), GOLDEN);
        assert_eq!(fingerprint(&back, GOLDEN), want, "boundary {k}");
        drop(back);
        // ...and a torn record after boundary k still replays k.
        if cut + 9 <= wal.len() {
            std::fs::write(crash.join("wal.log"), &wal[..cut + 9]).expect("tear");
            let torn = ProvenanceDatabase::open(&crash).expect("recover torn");
            assert_eq!(torn.insert_count(), k as u64, "torn after boundary {k}");
        }
    }
    let _ = std::fs::remove_dir_all(&src);
    let _ = std::fs::remove_dir_all(&crash);
}

/// Sealing, compaction, and reopen: segments cover the chunk-aligned
/// prefix, footers prune impossible predicates without reading a
/// document, merged runs replace their inputs, and none of it moves a
/// single query answer.
#[test]
fn sealing_and_compaction_preserve_answers() {
    let probe = ProvenanceDatabase::new();
    let chunk = probe.documents().chunk_rows();
    let nshards = probe.documents().shard_count();
    drop(probe);
    // Two full chunks per shard, plus a WAL tail that stays unsealed.
    let per_run = chunk * nshards;
    let msgs = corpus(2 * per_run + 7);
    let dir = fresh_dir("seal");

    let db = ProvenanceDatabase::open_with(&dir, opts(SyncPolicy::Batch)).expect("open");
    db.insert_batch_shared(msgs[..per_run].iter().cloned().map(Arc::new));
    db.flush_views();
    assert_eq!(db.seal_now().expect("seal run 1"), chunk as u64);
    db.insert_batch_shared(msgs[per_run..].iter().cloned().map(Arc::new));
    db.flush_views();
    assert_eq!(db.seal_now().expect("seal run 2"), 2 * chunk as u64);

    let stats = db.durable_stats().expect("durable");
    assert_eq!(stats.logged, msgs.len() as u64);
    assert_eq!(stats.sealed_slots, 2 * chunk as u64);
    assert_eq!(stats.wal_tail, 7);
    // Footer-only pruning: a predicate nothing satisfies prunes every
    // segment; one everything satisfies prunes none.
    let (pruned, total) = db
        .sealed_prune_report(
            "started_at",
            dataframe::CmpOp::Gt,
            &prov_model::Value::Float(1e12),
        )
        .expect("durable");
    assert!(total >= nshards, "at least one segment per shard");
    assert_eq!(pruned, total, "impossible predicate prunes everything");
    let (pruned, total) = db
        .sealed_prune_report(
            "workflow_id",
            dataframe::CmpOp::Eq,
            &prov_model::Value::from("wf-0"),
        )
        .expect("durable");
    assert_eq!(pruned, 0, "ubiquitous predicate prunes nothing ({total})");

    let files = db.compact_segments().expect("compact");
    assert_eq!(files, nshards, "contiguous runs merged to one per shard");
    drop(db);

    let back = ProvenanceDatabase::open(&dir).expect("reopen sealed");
    assert_eq!(back.insert_count(), msgs.len() as u64);
    let stats = back.durable_stats().expect("durable");
    assert_eq!(stats.sealed_slots, 2 * chunk as u64);
    assert_eq!(stats.segments, nshards);
    assert_eq!(
        fingerprint(&back, GOLDEN_FAST),
        fingerprint(&oracle(&msgs), GOLDEN_FAST)
    );
    drop(back);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random ingest schedules (corpus size, batch split, sync policy):
    /// recovery at **every** WAL record boundary equals the
    /// never-crashed oracle on the golden pipeline set.
    #[test]
    fn random_schedules_recover_at_every_boundary(
        n in 4usize..22,
        batch in 1usize..9,
        always in any::<bool>(),
    ) {
        let msgs = corpus(n);
        let sync = if always { SyncPolicy::Always } else { SyncPolicy::Batch };
        let src = fresh_dir("prop-src");
        ingest_durably(&src, &msgs, batch, sync);
        let wal = std::fs::read(src.join("wal.log")).expect("read wal");
        let boundaries = wal_boundaries(&wal);
        prop_assert_eq!(boundaries.len(), n + 1);
        let crash = fresh_dir("prop-replay");
        for (k, &cut) in boundaries.iter().enumerate() {
            std::fs::write(crash.join("wal.log"), &wal[..cut]).expect("truncate");
            let back = ProvenanceDatabase::open(&crash).expect("recover");
            prop_assert_eq!(back.insert_count(), k as u64);
            let want = fingerprint(&oracle(&msgs[..k]), GOLDEN);
            prop_assert_eq!(fingerprint(&back, GOLDEN), want);
        }
        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&crash);
    }
}
