//! Snapshot isolation and serve-layer stress tests: N writer threads
//! streaming batches race M reader threads taking snapshots, and every
//! snapshot answer must equal the full-materialize oracle *on that
//! snapshot's generation* — no torn reads, no rows from the future, no
//! stale cache entries leaking across generations.
//!
//! Reader parallelism follows the `SERVE_READERS` env var (default 3) so
//! CI's serve-matrix leg can sweep it alongside `PROVDB_SHARDS`.

use prov_db::{CacheOutcome, ProvenanceDatabase, QueryServer, ServeConfig};
use prov_model::TaskMessageBuilder;
use provql::parse;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn readers() -> usize {
    std::env::var("SERVE_READERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// The golden query mix a dashboard-style reader cycles through: pushed
/// equality, pushed range + projection, top-k, columnar aggregate, and a
/// corpus-wide stage-machine query (oracle fallback path).
const GOLDEN: &[&str] = &[
    r#"len(df[df["activity_id"] == "act1"])"#,
    r#"df[df["started_at"] >= 50.0][["task_id", "started_at"]].head(5)"#,
    r#"df.sort_values("started_at", ascending=False)[["task_id"]].head(3)"#,
    r#"df.groupby("activity_id")["duration"].mean()"#,
    r#"df["duration"].sum()"#,
];

fn msg(writer: usize, i: usize) -> Arc<prov_model::TaskMessage> {
    Arc::new(
        TaskMessageBuilder::new(
            format!("w{writer}-t{i}"),
            "wf-stress",
            format!("act{}", i % 4),
        )
        .span(i as f64, i as f64 + 1.5)
        .build(),
    )
}

/// Writers stream batches while readers repeatedly snapshot and verify
/// every golden query against the oracle frame of the *same* snapshot.
/// Differential identity on a moving store is the whole point: if a
/// bounded kernel ever saw a row above the high-water mark (or missed one
/// below it), some answer would disagree with its own oracle.
#[test]
fn snapshot_answers_match_oracle_under_concurrent_ingest() {
    const WRITERS: usize = 3;
    const PER_WRITER: usize = 400;
    const BATCH: usize = 16;

    let db = ProvenanceDatabase::shared();
    // Seed enough rows that the first snapshots are non-trivial.
    db.insert_batch_shared((0..64).map(|i| msg(9, i)));
    let done = Arc::new(AtomicBool::new(false));
    let verified = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            s.spawn(move || {
                let mut batch = Vec::with_capacity(BATCH);
                for i in 0..PER_WRITER {
                    batch.push(msg(w, i));
                    if batch.len() == BATCH {
                        db.insert_batch_shared(batch.drain(..));
                    }
                }
                db.insert_batch_shared(batch.drain(..));
            });
        }
        for r in 0..readers() {
            let db = db.clone();
            let done = done.clone();
            let verified = verified.clone();
            s.spawn(move || {
                let queries: Vec<_> = GOLDEN.iter().map(|q| parse(q).unwrap()).collect();
                let mut rounds = 0usize;
                while !done.load(Ordering::Relaxed) || rounds < 2 {
                    let snap = db.snapshot();
                    let oracle = snap.oracle_frame();
                    assert_eq!(
                        oracle.len(),
                        snap.len(),
                        "oracle frame must cover exactly the visible rows"
                    );
                    for (text, query) in GOLDEN.iter().zip(&queries) {
                        // Rotate cache on/off so both arms run under load.
                        let use_cache = (rounds + r).is_multiple_of(2);
                        let (got, _) = snap.query_with(query, use_cache);
                        let want = provql::execute(query, &oracle);
                        match (got, want) {
                            (Ok(got), Ok(want)) => assert_eq!(
                                *got,
                                want,
                                "{text} diverged from oracle at generation {}",
                                snap.generation()
                            ),
                            (got, want) => {
                                panic!("{text}: got {got:?}, oracle said {want:?}")
                            }
                        }
                        verified.fetch_add(1, Ordering::Relaxed);
                    }
                    rounds += 1;
                }
            });
        }
        let total = 64 + WRITERS * PER_WRITER;
        while (db.generation() as usize) < total {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
    });

    assert_eq!(db.generation() as usize, 64 + WRITERS * PER_WRITER);
    assert!(verified.load(Ordering::Relaxed) >= readers() * 2 * GOLDEN.len());
    // The final snapshot sees the whole corpus.
    let snap = db.snapshot();
    assert_eq!(snap.len(), 64 + WRITERS * PER_WRITER);
}

/// A snapshot taken mid-ingest keeps answering *as of its generation*
/// even after the store races far past it, and its plan-cache entries do
/// not leak into newer generations.
#[test]
fn pinned_snapshot_is_immune_to_later_ingest() {
    let db = ProvenanceDatabase::shared();
    db.insert_batch_shared((0..100).map(|i| msg(0, i)));
    let snap = db.snapshot();
    let gen0 = snap.generation();
    assert_eq!(snap.len(), 100);

    let query = parse(r#"len(df[df["activity_id"] == "act1"])"#).unwrap();
    let (before, outcome) = snap.query(&query);
    assert_eq!(outcome, CacheOutcome::Miss);
    let before = before.unwrap();

    // The store moves on; the pinned snapshot must not.
    db.insert_batch_shared((0..100).map(|i| msg(1, i)));
    db.flush_views();
    assert_eq!(db.generation(), gen0 + 100);
    let (after, outcome) = snap.query(&query);
    assert_eq!(outcome, CacheOutcome::Hit, "same plan, same generation");
    assert_eq!(*after.unwrap(), *before);
    assert_eq!(snap.len(), 100);

    // A fresh snapshot sees the new rows and misses the cache (the key is
    // generation-qualified).
    let fresh = db.snapshot();
    assert_eq!(fresh.len(), 200);
    let (fresh_out, outcome) = fresh.query(&query);
    assert_eq!(outcome, CacheOutcome::Miss);
    assert_ne!(*fresh_out.unwrap(), *before);
}

/// The serve front-end under a mixed load: writers stream while clients
/// submit query storms through the bounded pool. Every response must be
/// well-formed, repeated identical queries must start hitting the plan
/// cache, and the stats ledger must balance.
#[test]
fn query_server_serves_storms_during_ingest() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 40;

    let db = ProvenanceDatabase::shared();
    db.insert_batch_shared((0..128).map(|i| msg(0, i)));
    let server = Arc::new(QueryServer::start(
        db.clone(),
        ServeConfig {
            workers: 3,
            queue_depth: 256,
        },
    ));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        {
            let db = db.clone();
            let done = done.clone();
            s.spawn(move || {
                let mut i = 0usize;
                while !done.load(Ordering::Relaxed) {
                    db.insert_batch_shared((0..8).map(|j| msg(7, i * 8 + j)));
                    i += 1;
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        // Inner scope: the storm runs to completion while the writer keeps
        // ingesting, then the writer is released.
        std::thread::scope(|clients| {
            for c in 0..CLIENTS {
                let server = &server;
                clients.spawn(move || {
                    for i in 0..PER_CLIENT {
                        let text = GOLDEN[(c + i) % GOLDEN.len()];
                        // Blocking convenience path; the queue is deep
                        // enough that storms are admitted, not rejected.
                        let resp = server.query(text).expect("queue has room");
                        resp.result.expect("golden queries execute");
                        // Every response stamps the snapshot generation it
                        // was answered at — never older than the seed.
                        assert!(resp.generation >= 128);
                    }
                });
            }
        });
        done.store(true, Ordering::Relaxed);
    });

    let stats = server.stats();
    assert_eq!(stats.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.rejected, 0);
    assert!(stats.p99_micros >= stats.p50_micros);

    // With ingest quiesced the generation is fixed: an identical repeat
    // must be answered from the plan cache, whichever worker picks it up.
    server.query(GOLDEN[0]).unwrap();
    let repeat = server.query(GOLDEN[0]).unwrap();
    assert_eq!(
        repeat.cache,
        CacheOutcome::Hit,
        "identical query at a fixed generation must hit the plan cache"
    );
}
