//! Cross-backend integration tests for the provenance database: the same
//! chemistry-shaped corpus queried through the document store (filters /
//! projections / sorts / aggregation pipeline), the KV store (point gets,
//! range scans), and the PROV graph (traversals) — the three backends the
//! paper names MongoDB, LMDB, and Neo4j for (§2.3).

use prov_db::{AggOp, Aggregate, DocQuery, GroupSpec, Op, ProvenanceDatabase};
use prov_model::{obj, TaskMessageBuilder, Value};

/// A small BDE-shaped corpus: 8 bond tasks + 2 setup tasks, chained.
fn seeded_db() -> ProvenanceDatabase {
    let db = ProvenanceDatabase::new();
    db.insert(
        &TaskMessageBuilder::new("conf-0", "chem-wf", "generate_conformer")
            .uses("smiles", "CCO")
            .span(0.0, 1.0)
            .host("frontier00001")
            .build(),
    );
    db.insert(
        &TaskMessageBuilder::new("min-0", "chem-wf", "geometry_minimization")
            .depends_on("conf-0")
            .span(1.0, 3.0)
            .host("frontier00001")
            .build(),
    );
    let bonds = [
        ("C-H_1", 98.2),
        ("C-H_2", 98.9),
        ("C-H_3", 98.6),
        ("C-H_4", 99.4),
        ("C-H_5", 99.1),
        ("C-C_1", 87.3),
        ("C-O_1", 94.2),
        ("O-H_1", 105.1),
    ];
    for (i, (bond, e)) in bonds.iter().enumerate() {
        db.insert(
            &TaskMessageBuilder::new(format!("bde-{i}"), "chem-wf", "run_individual_bde")
                .depends_on("min-0")
                .used(obj! {"frags" => obj! {"label" => *bond}})
                .generated(obj! {"bond_id" => *bond, "bd_energy" => *e})
                .span(3.0 + i as f64, 4.0 + i as f64)
                .host(format!("frontier0000{}", 1 + i % 3))
                .build(),
        );
    }
    db
}

#[test]
fn every_operator_filters_correctly() {
    let db = seeded_db();
    let count = |q: DocQuery| db.count(&q);
    assert_eq!(count(DocQuery::new()), 10);
    assert_eq!(
        count(DocQuery::new().filter("activity_id", Op::Eq, "run_individual_bde")),
        8
    );
    assert_eq!(
        count(DocQuery::new().filter("activity_id", Op::Ne, "run_individual_bde")),
        2
    );
    assert_eq!(
        count(DocQuery::new().filter("generated.bd_energy", Op::Gt, 99.0)),
        3 // C-H_4, C-H_5, O-H_1
    );
    assert_eq!(
        count(DocQuery::new().filter("generated.bd_energy", Op::Gte, 99.1)),
        3
    );
    assert_eq!(
        count(DocQuery::new().filter("generated.bd_energy", Op::Lt, 90.0)),
        1 // the C-C bond
    );
    assert_eq!(
        count(DocQuery::new().filter("generated.bd_energy", Op::Lte, 87.3)),
        1
    );
    assert_eq!(
        count(DocQuery::new().filter("generated.bond_id", Op::Contains, "C-H")),
        5
    );
    assert_eq!(
        count(DocQuery::new().filter("generated.bd_energy", Op::Exists, Value::Null)),
        8
    );
    // Conjunction.
    assert_eq!(
        count(
            DocQuery::new()
                .filter("generated.bond_id", Op::Contains, "C-H")
                .filter("generated.bd_energy", Op::Gt, 99.0)
        ),
        2
    );
}

#[test]
fn nested_projection_sort_and_limit() {
    let db = seeded_db();
    let rows = db.find(
        &DocQuery::new()
            .filter("activity_id", Op::Eq, "run_individual_bde")
            .project(&["generated.bond_id", "generated.bd_energy"])
            .sort_by("generated.bd_energy", false)
            .limit(3),
    );
    assert_eq!(rows.len(), 3);
    // Strongest bond first (O-H), projection keeps only the asked paths.
    // Projections key the output by the full dotted path.
    assert_eq!(
        rows[0].get("generated.bond_id").and_then(Value::as_str),
        Some("O-H_1")
    );
    assert!(rows[0].get("task_id").is_none(), "projected out");
    // Descending order holds across the page.
    let energies: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.get("generated.bd_energy").and_then(Value::as_f64))
        .collect();
    assert!(energies.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn aggregation_pipeline_matches_manual_math() {
    let db = seeded_db();
    let groups = db.aggregate(
        &DocQuery::new().filter("activity_id", Op::Eq, "run_individual_bde"),
        &GroupSpec {
            key: "hostname".to_string(),
            aggs: vec![
                Aggregate {
                    path: "generated.bd_energy".into(),
                    op: AggOp::Count,
                },
                Aggregate {
                    path: "generated.bd_energy".into(),
                    op: AggOp::Mean,
                },
                Aggregate {
                    path: "generated.bd_energy".into(),
                    op: AggOp::Max,
                },
            ],
        },
    );
    // Bond tasks round-robin over three hosts: 3 + 3 + 2.
    assert_eq!(groups.len(), 3);
    let counts: i64 = groups
        .iter()
        .filter_map(|g| g.get("generated.bd_energy_count").and_then(Value::as_i64))
        .sum();
    assert_eq!(counts, 8);
    // Every group's max is within the global range.
    for g in &groups {
        let max = g
            .get("generated.bd_energy_max")
            .and_then(Value::as_f64)
            .unwrap();
        assert!((87.0..=105.2).contains(&max));
        let mean = g
            .get("generated.bd_energy_mean")
            .and_then(Value::as_f64)
            .unwrap();
        assert!(mean <= max);
    }
}

#[test]
fn index_does_not_change_results() {
    // The same query against an indexed and an unindexed store must agree
    // (ProvenanceDatabase::new indexes task_id/activity_id/workflow_id).
    let indexed = seeded_db();
    let plain = prov_db::DocumentStore::new();
    for i in 0..indexed.documents().len() {
        plain.insert(indexed.documents().get(i).unwrap());
    }
    for q in [
        DocQuery::new().filter("activity_id", Op::Eq, "run_individual_bde"),
        DocQuery::new().filter("task_id", Op::Eq, "bde-3"),
        DocQuery::new()
            .filter("workflow_id", Op::Eq, "chem-wf")
            .limit(4),
    ] {
        assert_eq!(indexed.documents().find(&q), plain.find(&q));
    }
}

#[test]
fn kv_point_range_and_prefix() {
    let db = seeded_db();
    // Point get through the task/<id> keyspace.
    let doc = db.kv().get("task/bde-0").expect("kv row");
    assert_eq!(
        doc.get_path("generated.bond_id").and_then(Value::as_str),
        Some("C-H_1")
    );
    // Prefix scan covers all tasks.
    assert_eq!(db.kv().scan_prefix("task/").len(), 10);
    assert_eq!(db.kv().scan_prefix("task/bde-").len(), 8);
    // Lexicographic range.
    let range = db.kv().range("task/bde-0", "task/bde-4");
    assert_eq!(range.len(), 4); // bde-0..bde-3 (end exclusive)
    assert!(range.windows(2).all(|w| w[0].0 < w[1].0));
    // Seek to the first key at or after a probe: "task/bde-3a" sorts
    // between bde-3 and bde-4.
    let (k, _) = db.kv().seek("task/bde-3a").expect("seek");
    assert_eq!(k, "task/bde-4".to_string());
    // Past the last bde key the next keyspace entry answers.
    let (k, _) = db.kv().seek("task/bde-9").expect("seek");
    assert_eq!(k, "task/conf-0".to_string());
}

#[test]
fn graph_traversals_bound_depth_and_direction() {
    let db = seeded_db();
    // bde-0 ← min-0 ← conf-0 (upstream chain).
    let up = db.graph().upstream_lineage("bde-0", 10);
    let ids: Vec<&str> = up.iter().map(|(id, _)| id.as_str()).collect();
    assert_eq!(ids, ["min-0", "conf-0"]);
    assert_eq!(up[0].1, 1);
    assert_eq!(up[1].1, 2);
    // Depth bound trims the chain.
    assert_eq!(db.graph().upstream_lineage("bde-0", 1).len(), 1);
    // Downstream impact of the conformer reaches every bond task.
    let down = db.graph().downstream_impact("conf-0", 10);
    assert_eq!(down.len(), 9); // min-0 + 8 bde tasks
                               // Directed shortest path and its absence in the other direction.
    let path = db.graph().shortest_path("bde-7", "conf-0").expect("path");
    assert_eq!(path.len(), 3);
    assert!(db.graph().shortest_path("bde-0", "bde-7").is_none());
    // Property lookup (Neo4j-style).
    let on_host = db
        .graph()
        .nodes_with_prop("hostname", &Value::from("frontier00001"));
    assert!(on_host.len() >= 2);
}

#[test]
fn unified_facade_counts_and_lineage_agree_with_backends() {
    let db = seeded_db();
    assert_eq!(db.insert_count(), 10);
    assert_eq!(db.documents().len(), 10);
    assert_eq!(db.kv().len(), 10);
    assert_eq!(db.graph().node_count(), 10);
    // store::lineage delegates to the graph.
    assert_eq!(
        db.lineage("bde-0", 10),
        db.graph().upstream_lineage("bde-0", 10)
    );
    // workflow_tasks pulls everything for the workflow.
    assert_eq!(db.workflow_tasks("chem-wf").len(), 10);
}
