//! Out-of-core differential suite: a durable store reopened **lazily**
//! (sealed coverage attached as a paged cold prefix, not replayed) must
//! answer every golden pipeline byte-identically to an eager reopen and
//! to a never-crashed in-memory oracle — including under a resident-set
//! budget so small that every scan churns the chunk cache, and across
//! further ingest, sealing, and compaction on the lazily opened store.
//!
//! CI runs this suite across the durability matrix (`PROVDB_CHUNK=64`
//! and `4096`, `PROVDB_RESIDENT_MB=4`, shard and thread counts), so the
//! paging layer is exercised at both one-chunk-per-segment and
//! many-rows-per-chunk granularities.

use proptest::prelude::*;
use prov_db::{DurabilityOptions, ProvenanceDatabase, SyncPolicy};
use prov_model::{TaskMessage, TaskMessageBuilder, TaskStatus};
use provql::{execute, parse};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The recovery suite's golden pipelines: the query families the
/// engine's pushdown tiers split on.
const GOLDEN: &[&str] = &[
    r#"len(df)"#,
    r#"len(df[df["status"] == "ERROR"])"#,
    r#"len(df[df["workflow_id"] != "wf-1"])"#,
    r#"df[df["status"] != "ERROR"]["duration"].sum()"#,
    r#"df["started_at"].mean()"#,
    r#"df["y"].sum()"#,
    r#"df[df["started_at"] >= 12]["task_id"]"#,
    r#"len(df[df["hostname"].isin(["n0", "n2"])])"#,
    r#"df.groupby("activity_id")["duration"].mean()"#,
    r#"df.groupby("workflow_id")["started_at"].count()"#,
    r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(5)"#,
    r#"df.sort_values("duration")[["task_id"]].head(4)"#,
    r#"df[["task_id", "workflow_id"]].head(6)"#,
    r#"df["status"].value_counts()"#,
    r#"df[df["cpu_percent_end"] > 20]["task_id"]"#,
];

/// Same deterministic corpus as the recovery suite (NaN payloads,
/// lineage, agents, dataflow keys).
fn corpus(n: usize) -> Vec<TaskMessage> {
    (0..n)
        .map(|i| {
            let status = match i % 4 {
                0 => TaskStatus::Error,
                1 => TaskStatus::Running,
                _ => TaskStatus::Finished,
            };
            let y = if i % 11 == 3 {
                f64::NAN
            } else {
                i as f64 * 0.5
            };
            let mut b = TaskMessageBuilder::new(
                format!("t{i}"),
                format!("wf-{}", i % 3),
                format!("act{}", i % 2),
            )
            .host(format!("n{}", i % 4))
            .status(status)
            .span(i as f64, i as f64 + 1.5)
            .uses("y", y);
            if i % 7 == 2 && i > 0 {
                b = b.depends_on(format!("t{}", i - 1)).agent("agent-7");
            }
            if i % 5 == 1 {
                b = b.generates("out", i as f64);
            }
            b.build()
        })
        .collect()
}

fn oracle(msgs: &[TaskMessage]) -> ProvenanceDatabase {
    let db = ProvenanceDatabase::new();
    db.insert_batch(msgs);
    db
}

/// Scrub `DataFrame`'s per-instance-random name→position map Debug form.
fn scrub_index_maps(mut s: String) -> String {
    const KEY: &str = "index: {";
    let mut from = 0;
    while let Some(at) = s[from..].find(KEY) {
        let open = from + at + KEY.len() - 1;
        let Some(close) = s[open..].find('}') else {
            break;
        };
        s.replace_range(open..open + close + 1, "_");
        from += at + KEY.len();
    }
    s
}

/// Byte-identity fingerprint: full-frame oracle answer plus pushdown
/// outcome per pipeline (see the recovery suite for the rationale).
fn fingerprint(db: &ProvenanceDatabase, queries: &[&str]) -> Vec<String> {
    let frame = prov_db::full_frame(db);
    queries
        .iter()
        .map(|text| {
            let q = parse(text).expect("golden query parses");
            let full = execute(&q, &frame);
            let pushed = match prov_db::try_execute(db, &q) {
                prov_db::Pushdown::Executed(r) => format!("pushed:{r:?}"),
                prov_db::Pushdown::NeedsFullFrame(r) => format!("fallback:{r}"),
            };
            scrub_index_maps(format!("{text} => {full:?} | {pushed}"))
        })
        .collect()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Fresh durable directory under the artifact root (kept on panic for
/// CI's failure-artifact upload, like the recovery suite's).
fn fresh_dir(tag: &str) -> PathBuf {
    let root = std::env::var("PROVDB_TEST_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let dir = root.join(format!(
        "provdb-ooc-{}-{}-{}",
        std::process::id(),
        tag,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create durable dir");
    dir
}

/// Options for a lazy reopen with an explicit resident budget.
fn lazy_opts(resident_bytes: usize) -> DurabilityOptions {
    DurabilityOptions {
        sync: SyncPolicy::Batch,
        eager_open: false,
        resident_bytes: Some(resident_bytes),
        ..DurabilityOptions::default()
    }
}

fn eager_opts() -> DurabilityOptions {
    DurabilityOptions {
        sync: SyncPolicy::Batch,
        eager_open: true,
        ..DurabilityOptions::default()
    }
}

/// Per-shard chunk geometry of this process (env-resolved once).
fn geometry() -> (usize, usize) {
    let probe = ProvenanceDatabase::new();
    let chunk = probe.documents().chunk_rows();
    let nshards = probe.documents().shard_count();
    (chunk, nshards)
}

/// Build a sealed-and-compacted durable directory over `msgs`, with the
/// final `tail` messages left in the WAL.
fn seal_corpus(dir: &PathBuf, msgs: &[TaskMessage]) {
    let db = ProvenanceDatabase::open_with(dir, eager_opts()).expect("open durable");
    db.insert_batch_shared(msgs.iter().cloned().map(Arc::new));
    db.flush_views();
    db.seal_now().expect("seal");
    db.compact_segments().expect("compact");
}

/// Lazy reopen ≡ eager reopen ≡ oracle on the full golden set — at a
/// generous budget and at a one-byte budget that forces every paged
/// chunk to evict its predecessors.
#[test]
fn lazy_open_matches_eager_and_oracle_under_any_budget() {
    let (chunk, nshards) = geometry();
    let msgs = corpus(2 * chunk * nshards + 7);
    let dir = fresh_dir("golden");
    seal_corpus(&dir, &msgs);

    let want = fingerprint(&oracle(&msgs), GOLDEN);
    let eager = ProvenanceDatabase::open_with(&dir, eager_opts()).expect("eager reopen");
    assert_eq!(eager.insert_count(), msgs.len() as u64);
    assert_eq!(fingerprint(&eager, GOLDEN), want, "eager reopen drifted");
    assert_eq!(eager.pager_stats().paged_in, 0, "eager opens never page");
    drop(eager);

    for budget in [64 << 20, 1] {
        let lazy = ProvenanceDatabase::open_with(&dir, lazy_opts(budget)).expect("lazy reopen");
        assert_eq!(lazy.insert_count(), msgs.len() as u64, "budget {budget}");
        assert_eq!(
            lazy.pager_stats().paged_in,
            0,
            "open itself must not page (budget {budget})"
        );
        let stats = lazy.durable_stats().expect("durable");
        assert_eq!(stats.sealed_slots, 2 * chunk as u64);
        assert_eq!(fingerprint(&lazy, GOLDEN), want, "budget {budget}");
        let pager = lazy.pager_stats();
        assert!(pager.paged_in > 0, "queries page cold chunks in");
        if budget == 1 {
            assert!(pager.evicted > 0, "one-byte budget must evict");
        }
        drop(lazy);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deferred KV/graph hydration: point lookups and lineage traversals
/// on a lazily opened store equal the oracle's, and repeated scans hit
/// the resident set.
#[test]
fn lazy_open_hydrates_kv_and_graph_on_first_read() {
    let (chunk, nshards) = geometry();
    let n = chunk * nshards + 5;
    let msgs = corpus(n);
    let dir = fresh_dir("hydrate");
    seal_corpus(&dir, &msgs);

    let lazy = ProvenanceDatabase::open_with(&dir, lazy_opts(64 << 20)).expect("lazy reopen");
    let oracle = oracle(&msgs);
    // Graph first (hydration triggers here), then KV.
    assert_eq!(lazy.lineage("t9", 10), oracle.lineage("t9", 10));
    let last = format!("t{}", n - 1);
    for id in ["t0", "t2", "t9", last.as_str(), "missing"] {
        assert_eq!(
            lazy.get_task(id).map(|m| m.to_value()),
            oracle.get_task(id).map(|m| m.to_value()),
            "task {id}"
        );
    }
    assert_eq!(lazy.kv().len(), oracle.kv().len());
    assert_eq!(lazy.graph().node_count(), oracle.graph().node_count());

    // A warm re-scan is served from the resident set.
    let _ = fingerprint(&lazy, &[GOLDEN[6]]);
    let before = lazy.pager_stats();
    let _ = fingerprint(&lazy, &[GOLDEN[6]]);
    let after = lazy.pager_stats();
    assert!(after.hits > before.hits, "warm scan must hit the cache");
    drop(lazy);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Zone pruning happens *before* I/O: a predicate no sealed chunk can
/// satisfy skips every cold chunk without paging one in.
#[test]
fn impossible_predicate_prunes_cold_chunks_without_paging() {
    let (chunk, nshards) = geometry();
    let msgs = corpus(2 * chunk * nshards);
    let dir = fresh_dir("prune");
    seal_corpus(&dir, &msgs);

    let lazy = ProvenanceDatabase::open_with(&dir, lazy_opts(64 << 20)).expect("lazy reopen");
    let q = parse(r#"df[df["started_at"] > 1e12]["task_id"]"#).expect("parses");
    let out = prov_db::try_execute(&lazy, &q);
    assert!(
        matches!(out, prov_db::Pushdown::Executed(_)),
        "selective scan should push down"
    );
    let stats = lazy.pager_stats();
    assert!(stats.zone_skips > 0, "zone maps must prune cold chunks");
    assert_eq!(stats.paged_in, 0, "pruned chunks must not be paged");
    drop(lazy);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sealing while reads are in flight: a snapshot pinned over the cold
/// prefix keeps answering as of its generation while the store ingests,
/// seals, and compacts underneath it — and the store's own answers track
/// the growing corpus, byte-identically to the oracle, including after
/// yet another lazy reopen.
#[test]
fn continued_ingest_sealing_and_reopen_preserve_answers() {
    let (chunk, nshards) = geometry();
    let per_run = chunk * nshards;
    let msgs = corpus(2 * per_run + 3);
    let dir = fresh_dir("reseal");
    seal_corpus(&dir, &msgs[..per_run]);

    let db = ProvenanceDatabase::open_with(&dir, lazy_opts(64 << 20)).expect("lazy reopen");
    let snap = db.snapshot();
    let want_prefix = fingerprint(&oracle(&msgs[..per_run]), GOLDEN);
    assert_eq!(fingerprint(&db, GOLDEN), want_prefix);

    // Grow past the cold prefix, seal the resident rows, compact the
    // catalog — all on the lazily opened store.
    db.insert_batch_shared(msgs[per_run..].iter().cloned().map(Arc::new));
    db.flush_views();
    assert_eq!(db.seal_now().expect("reseal"), 2 * chunk as u64);
    db.compact_segments().expect("compact");

    let want_full = fingerprint(&oracle(&msgs), GOLDEN);
    assert_eq!(fingerprint(&db, GOLDEN), want_full, "post-reseal answers");
    // The pinned snapshot still answers as of its generation.
    let q = parse(r#"len(df)"#).expect("parses");
    let (res, _) = snap.query(&q);
    assert_eq!(
        *res.expect("snapshot len"),
        provql::QueryOutput::Scalar(prov_model::Value::Int(per_run as i64))
    );
    drop(snap);
    drop(db);

    let back = ProvenanceDatabase::open(&dir).expect("reopen again");
    assert_eq!(fingerprint(&back, GOLDEN), want_full, "second reopen");
    drop(back);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shared sealed fixture for the random-pipeline differential: one
/// directory, three stores (eager, lazy, lazy with a one-byte budget).
fn shared_stores() -> &'static (
    Arc<ProvenanceDatabase>,
    Arc<ProvenanceDatabase>,
    Arc<ProvenanceDatabase>,
) {
    static STORES: std::sync::OnceLock<(
        Arc<ProvenanceDatabase>,
        Arc<ProvenanceDatabase>,
        Arc<ProvenanceDatabase>,
    )> = std::sync::OnceLock::new();
    STORES.get_or_init(|| {
        let (chunk, nshards) = geometry();
        let msgs = corpus(chunk * nshards + 9);
        let dir = fresh_dir("prop");
        seal_corpus(&dir, &msgs);
        let eager = ProvenanceDatabase::open_with(&dir, eager_opts()).expect("eager");
        let lazy = ProvenanceDatabase::open_with(&dir, lazy_opts(64 << 20)).expect("lazy");
        let tiny = ProvenanceDatabase::open_with(&dir, lazy_opts(1)).expect("tiny");
        (eager, lazy, tiny)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random pipelines over the sealed fixture: the lazy stores (both
    /// budgets) answer byte-identically to the eager one — full-frame
    /// and pushdown outcomes both.
    #[test]
    fn random_pipelines_answer_identically_out_of_core(
        family in 0usize..5,
        lit in 0u64..40,
        limit in 1usize..9,
        desc in any::<bool>(),
    ) {
        let text = match family {
            0 => format!(
                r#"df[df["started_at"] >= {lit}][["task_id", "started_at"]].head({limit})"#
            ),
            1 => format!(r#"df[df["started_at"] < {lit}]["duration"].sum()"#),
            2 => format!(
                r#"df.sort_values("started_at", ascending={})[["task_id"]].head({limit})"#,
                if desc { "False" } else { "True" }
            ),
            3 => format!(r#"len(df[df["hostname"] == "n{}"])"#, lit % 5),
            4 => format!(
                r#"df.groupby("{}")["y"].count()"#,
                if lit % 2 == 0 { "workflow_id" } else { "activity_id" }
            ),
            _ => unreachable!(),
        };
        let queries = [text.as_str()];
        let (eager, lazy, tiny) = shared_stores();
        let want = fingerprint(eager, &queries);
        prop_assert_eq!(&fingerprint(lazy, &queries), &want, "lazy drifted: {}", text);
        prop_assert_eq!(&fingerprint(tiny, &queries), &want, "tiny-budget drifted: {}", text);
    }
}
