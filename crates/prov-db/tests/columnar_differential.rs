//! Differential property tests for the columnar scan: over random corpora
//! — including raw documents with missing or ill-typed hot fields, the
//! kind the exactness contract in `prov_db::columnar` exists for — random
//! filter/aggregate pipelines must produce exactly the `QueryOutput`
//! (or exactly the error) of the full-materialize document-scan oracle.

use dataframe::{col, lit, AggFunc, CmpOp, DataFrame, Expr};
use proptest::prelude::*;
use prov_db::{ProvenanceDatabase, Pushdown};
use prov_model::{obj, TaskMessageBuilder, TaskStatus, Value};
use provql::{execute, ExecError, Query, QueryOutput, Stage};

/// Columns mixing columnar hot fields, decode-only payload fields, and a
/// name no document ever sets.
fn arb_column() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("task_id".to_string()),
        Just("workflow_id".to_string()),
        Just("activity_id".to_string()),
        Just("hostname".to_string()),
        Just("status".to_string()),
        Just("type".to_string()),
        Just("started_at".to_string()),
        Just("ended_at".to_string()),
        Just("duration".to_string()),
        Just("cpu_percent_end".to_string()),
        Just("gpu_percent_end".to_string()),
        Just("mem_used_mb_end".to_string()),
        Just("y".to_string()),
        Just("ghost_column".to_string()),
    ]
}

fn arb_lit() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-3.0f64..40.0).prop_map(Value::Float),
        (0i64..30).prop_map(Value::Int),
        "[a-z0-9-]{1,6}".prop_map(|s| Value::from(s.as_str())),
        Just(Value::from("ERROR")),
        Just(Value::from("FINISHED")),
        Just(Value::from("wf-1")),
        Just(Value::from("t3")),
        Just(Value::Null),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_filter() -> impl Strategy<Value = Stage> {
    (arb_column(), arb_cmp(), arb_lit())
        .prop_map(|(c, op, v)| Stage::Filter(Expr::Cmp(Box::new(col(c)), op, Box::new(lit(v)))))
}

/// Membership filters: pushed into the scan (dictionary code sets) when
/// the list is null-free and the column columnar, residual otherwise —
/// both paths must match the oracle. Lists deliberately mix kinds and
/// sometimes contain Null (which keeps the conjunct residual).
fn arb_isin_filter() -> impl Strategy<Value = Stage> {
    (arb_column(), prop::collection::vec(arb_lit(), 1..4))
        .prop_map(|(c, vals)| Stage::Filter(col(c).isin(vals)))
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    let agg = prop_oneof![
        Just(AggFunc::Mean),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Count),
    ];
    prop_oneof![
        arb_filter(),
        arb_filter(),
        arb_isin_filter(),
        prop::collection::vec(arb_column(), 1..3).prop_map(Stage::Select),
        arb_column().prop_map(Stage::Col),
        arb_column().prop_map(|c| Stage::GroupBy(vec![c])),
        agg.prop_map(Stage::Agg),
        (arb_column(), any::<bool>()).prop_map(|(c, a)| Stage::SortValues(vec![(c, a)])),
        // Multi-key sorts: pushed only when every key is orderable.
        (arb_column(), any::<bool>(), arb_column(), any::<bool>())
            .prop_map(|(c1, a1, c2, a2)| Stage::SortValues(vec![(c1, a1), (c2, a2)])),
        // 0 included: a pushed top-k with k = 0 must stay exact.
        (0usize..5).prop_map(Stage::Head),
        Just(Stage::Count),
        Just(Stage::ValueCounts),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (prop::collection::vec(arb_stage(), 0..4), any::<bool>()).prop_map(|(stages, wrap)| {
        let p = Query::pipeline(stages);
        if wrap {
            Query::Len(Box::new(p))
        } else {
            p
        }
    })
}

/// A well-formed task message with randomized hot fields, payloads,
/// optional telemetry, and (rarely) a dataflow key that shadows a
/// telemetry column's bare name (exercising poisoning).
fn arb_message() -> impl Strategy<Value = prov_model::TaskMessage> {
    (
        0usize..24,
        0usize..3,
        0usize..3,
        0u8..4,
        -3.0f64..30.0,
        0.0f64..6.0,
        any::<bool>(),
        0u8..12,
    )
        .prop_map(|(i, wf, act, status, start, dur, tele, shadow)| {
            let status = match status {
                0 => TaskStatus::Pending,
                1 => TaskStatus::Running,
                2 => TaskStatus::Error,
                _ => TaskStatus::Finished,
            };
            let mut b =
                TaskMessageBuilder::new(format!("t{i}"), format!("wf-{wf}"), format!("act{act}"))
                    .host(format!("n{}", i % 3))
                    .status(status)
                    .span(start, start + dur)
                    .uses("y", i as f64);
            if tele {
                let synth = prov_model::TelemetrySynth::frontier(i as u64);
                b = b.telemetry(
                    synth.snapshot(i as u64, 0, 0.5),
                    synth.snapshot(i as u64, 1, 0.5),
                );
            }
            if shadow == 0 {
                b = b.generates("gpu_percent_end", 123.0);
            }
            b.build()
        })
}

/// A raw document with missing/ill-typed hot fields: sometimes not even
/// decodable as a task message (the oracle drops it; the columnar path
/// must too), sometimes decodable only through defaults and coercions.
fn arb_raw_doc() -> impl Strategy<Value = Value> {
    let ids = prop_oneof![
        Just(Value::from("r1")),
        Just(Value::from("r2")),
        Just(Value::Int(7)), // ill-typed: undecodable id
        Just(Value::Null),
    ];
    let status = prop_oneof![
        Just(Value::from("ERROR")),
        Just(Value::from("finished")), // canonicalizes to FINISHED
        Just(Value::from("bogus")),    // falls back to the default
        Just(Value::Int(1)),           // ill-typed
        Just(Value::Null),
    ];
    let stamp = prop_oneof![
        (-2.0f64..20.0).prop_map(Value::Float),
        (0i64..20).prop_map(Value::Int),
        Just(Value::from("not-a-number")),
        // NaN decodes into a NaN frame cell: a top-k sorting on it must
        // refuse (compare() is not a strict weak order over NaN) and any
        // other pipeline must still match the oracle cell-for-cell.
        Just(Value::Float(f64::NAN)),
        Just(Value::Null),
    ];
    (
        ids.clone(),
        ids,
        status,
        stamp.clone(),
        stamp,
        any::<bool>(),
    )
        .prop_map(|(task, wf, status, started, ended, with_tele)| {
            let mut doc = obj! {
                "activity_id" => "raw_act",
                "status" => status,
                "started_at" => started,
                "ended_at" => ended,
            };
            if !task.is_null() {
                doc.insert("task_id", task);
            }
            if !wf.is_null() {
                doc.insert("workflow_id", wf);
            }
            if with_tele {
                doc.insert(
                    "telemetry_at_end",
                    obj! {"cpu" => obj! {"percent" => prov_model::arr![10.0, "x", 30.0]}},
                );
            }
            doc
        })
}

/// Value equality with NaN ≡ NaN: `PartialEq` calls NaN unequal to
/// itself, but a scan that reproduces the oracle's NaN cells bit-for-bit
/// is exact, not divergent.
fn val_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => (x.is_nan() && y.is_nan()) || x == y,
        (Value::Array(x), Value::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(p, q)| val_eq(p, q))
        }
        (Value::Object(x), Value::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && val_eq(va, vb))
        }
        _ => a == b,
    }
}

fn frame_eq(a: &DataFrame, b: &DataFrame) -> bool {
    a.len() == b.len()
        && a.column_names() == b.column_names()
        && a.column_names().iter().all(|n| {
            let x = a.column(n).expect("listed").values();
            let y = b.column(n).expect("listed").values();
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(p, q)| val_eq(p, q))
        })
}

fn out_eq(a: &Result<QueryOutput, ExecError>, b: &Result<QueryOutput, ExecError>) -> bool {
    match (a, b) {
        (Ok(QueryOutput::Frame(f)), Ok(QueryOutput::Frame(g))) => frame_eq(f, g),
        (
            Ok(QueryOutput::Series {
                name: n1,
                values: v1,
            }),
            Ok(QueryOutput::Series {
                name: n2,
                values: v2,
            }),
        ) => {
            n1 == n2 && v1.len() == v2.len() && v1.iter().zip(v2.iter()).all(|(p, q)| val_eq(p, q))
        }
        (Ok(QueryOutput::Scalar(x)), Ok(QueryOutput::Scalar(y))) => val_eq(x, y),
        (Ok(QueryOutput::Row(m1)), Ok(QueryOutput::Row(m2))) => {
            m1.len() == m2.len()
                && m1
                    .iter()
                    .zip(m2.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && val_eq(va, vb))
        }
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

fn check(db: &ProvenanceDatabase, frame: &DataFrame, q: &Query, use_columnar: bool) {
    match prov_db::try_execute_with(db, q, use_columnar) {
        Pushdown::Executed(got) => {
            // The oracle only runs when the pushed path claims exactness:
            // for NaN sort keys the scan refuses instead (NeedsFullFrame),
            // because the oracle's own stable sort is the only definition
            // of that order.
            let oracle = execute(q, frame);
            assert!(
                out_eq(&got, &oracle),
                "use_columnar={use_columnar}, query={q:?}\n got: {got:?}\nwant: {oracle:?}"
            );
        }
        // The fallback path *is* the oracle — trivially identical.
        Pushdown::NeedsFullFrame(_) => {}
    }
}

/// The shard-parallel scan above [`PARALLEL_SCAN_THRESHOLD`] must stay an
/// exact oracle match — same queries, sequential (`threads = 1`, the
/// forced-`PROVDB_THREADS=1` path) and parallel (`threads = 4` over 4
/// shards), on a corpus big enough that the threaded path actually runs.
#[test]
fn parallel_scan_differential_above_threshold() {
    let db = ProvenanceDatabase::with_shards(4);
    let msgs: Vec<prov_model::TaskMessage> = (0..6000)
        .map(|i| {
            TaskMessageBuilder::new(
                format!("t{i}"),
                format!("wf-{}", i % 5),
                format!("a{}", i % 3),
            )
            .host(format!("n{}", i % 4))
            .status(if i % 7 == 0 {
                TaskStatus::Error
            } else {
                TaskStatus::Finished
            })
            .span(i as f64, i as f64 + 1.0 + (i % 9) as f64)
            .uses("y", i as f64)
            .build()
        })
        .collect();
    db.insert_batch(&msgs);
    let frame = prov_db::full_frame(&db);
    let queries = [
        // Unselective columnar filter: full vector scan, shard-parallel.
        r#"len(df[df["duration"] > 4])"#,
        r#"df[df["status"] != "ERROR"]["duration"].sum()"#,
        // Top-k through the bounded per-shard buffers (duration has no
        // sorted index, so the cursor cannot serve it) and through the
        // sorted-index cursor (started_at).
        r#"df.sort_values("duration", ascending=False)[["task_id", "duration"]].head(9)"#,
        r#"df[df["status"] != "ERROR"].sort_values("duration")[["task_id"]].head(6)"#,
        r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(7)"#,
    ];
    for threads in [1usize, 4] {
        db.documents().set_scan_threads(threads);
        for text in queries {
            let q = provql::parse(text).expect("query parses");
            match prov_db::try_execute(&db, &q) {
                Pushdown::Executed(got) => {
                    let oracle = execute(&q, &frame);
                    assert!(
                        out_eq(&got, &oracle),
                        "threads={threads}, query={text}\n got: {got:?}\nwant: {oracle:?}"
                    );
                }
                Pushdown::NeedsFullFrame(r) => {
                    panic!("threads={threads}, query={text}: unexpected fallback ({r})")
                }
            }
        }
    }
    db.documents().set_scan_threads(1);
}

/// Corpora straddling the chunk boundary (one row short of a chunk, an
/// exact multiple, one row over — 4095/4096/4097 at the default
/// `PROVDB_CHUNK` of 4096, scaled automatically when the CI matrix leg
/// shrinks the chunk) on a single shard, so the last chunk is empty-,
/// full-, and one-row-sized in turn. Every kernel path (selective eq,
/// range, ne, in-list, top-k, grouped aggregation) must match the oracle
/// on all three; an undecodable raw document is pinned directly at the
/// boundary slot to keep the decodable bitmap honest there.
#[test]
fn chunk_boundary_corpora_match_oracle() {
    let chunk = prov_db::DocumentStore::new().chunk_rows();
    let queries = [
        r#"len(df[df["workflow_id"] == "wf-1"])"#,
        r#"len(df[df["started_at"] >= 4090])"#,
        r#"df[df["status"] != "FINISHED"]["duration"].sum()"#,
        r#"len(df[df["hostname"].isin(["n0", "n2"])])"#,
        r#"df.sort_values("started_at", ascending=False)[["task_id"]].head(5)"#,
        r#"df.groupby("activity_id")["duration"].mean()"#,
        r#"df[["task_id"]].head(3)"#,
    ];
    for n in [chunk - 1, chunk, chunk + 1] {
        let db = ProvenanceDatabase::with_shards(1);
        let msgs: Vec<prov_model::TaskMessage> = (0..n)
            .map(|i| {
                TaskMessageBuilder::new(
                    format!("t{i}"),
                    format!("wf-{}", i % 3),
                    format!("a{}", i % 2),
                )
                .host(format!("n{}", i % 4))
                .status(if i % 5 == 0 {
                    TaskStatus::Error
                } else {
                    TaskStatus::Finished
                })
                .span(i as f64, i as f64 + 1.0)
                .build()
            })
            .collect();
        // The second-to-last slot holds an undecodable document, so the
        // boundary chunk's decodable count differs from its length.
        db.insert_batch(&msgs[..n - 1]);
        db.documents().insert(obj! {"task_id" => Value::Int(9)});
        db.insert_batch(std::iter::once(&msgs[n - 1]));
        let frame = prov_db::full_frame(&db);
        for text in queries {
            let q = provql::parse(text).expect("query parses");
            check(&db, &frame, &q, true);
        }
    }
}

/// Adversarial dictionaries: a one-symbol column (every row the same
/// hostname — one dictionary entry, every zone map identical), an
/// all-distinct column (`task_id` unique per row — dictionary as long as
/// the column), and all-null float columns (telemetry never supplied).
/// Eq/Ne/In filters and group-bys over each must match the oracle, as
/// must probes for symbols absent from the dictionary entirely.
#[test]
fn adversarial_dictionaries_match_oracle() {
    let db = ProvenanceDatabase::with_shards(2);
    let msgs: Vec<prov_model::TaskMessage> = (0..300)
        .map(|i| {
            TaskMessageBuilder::new(format!("unique-{i}"), format!("wf-{}", i % 2), "only_act")
                .host("lonely-host")
                .span(i as f64, i as f64 + 0.5)
                .build()
        })
        .collect();
    db.insert_batch(&msgs);
    let frame = prov_db::full_frame(&db);
    for text in [
        // One-symbol dictionary: everything matches, or nothing does.
        r#"len(df[df["hostname"] == "lonely-host"])"#,
        r#"len(df[df["hostname"] != "lonely-host"])"#,
        r#"len(df[df["hostname"] == "absent-host"])"#,
        r#"len(df[df["hostname"].isin(["lonely-host", "absent-host"])])"#,
        r#"df.groupby("hostname")["duration"].sum()"#,
        // All-distinct dictionary: single-row hits, code per row.
        r#"df[df["task_id"] == "unique-123"][["task_id", "started_at"]]"#,
        r#"len(df[df["task_id"] != "unique-123"])"#,
        r#"len(df[df["task_id"].isin(["unique-1", "unique-299", "nope"])])"#,
        r#"df.groupby("task_id")["duration"].count().head(4)"#,
        // All-null float columns: no telemetry anywhere.
        r#"len(df[df["cpu_percent_end"] > 0])"#,
        r#"len(df[df["cpu_percent_end"] != 0])"#,
        r#"df.sort_values("mem_used_mb_end")[["task_id"]].head(3)"#,
    ] {
        let q = provql::parse(text).expect("query parses");
        check(&db, &frame, &q, true);
        check(&db, &frame, &q, false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Messy corpora (raw docs with missing/ill-typed hot fields mixed
    /// into well-formed messages): the columnar path must agree with the
    /// document-scan oracle on every servable pipeline.
    #[test]
    fn columnar_matches_oracle_on_messy_corpora(
        msgs in prop::collection::vec(arb_message(), 1..14),
        raws in prop::collection::vec(arb_raw_doc(), 0..6),
        queries in prop::collection::vec(arb_query(), 1..4),
    ) {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs);
        for raw in &raws {
            // Straight into the document backend: the facade only ever
            // stores well-formed Listing-1 messages, so malformed shapes
            // must be injected below it.
            db.documents().insert(raw.clone());
        }
        let frame = prov_db::full_frame(&db);
        for q in &queries {
            check(&db, &frame, q, true);
        }
    }

    /// Well-formed corpora: the columnar scan, the decode-based scan, and
    /// the oracle all agree.
    #[test]
    fn all_paths_agree_on_wellformed_corpora(
        msgs in prop::collection::vec(arb_message(), 1..14),
        queries in prop::collection::vec(arb_query(), 1..4),
    ) {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs);
        let frame = prov_db::full_frame(&db);
        for q in &queries {
            check(&db, &frame, q, true);
            check(&db, &frame, q, false);
        }
    }
}
