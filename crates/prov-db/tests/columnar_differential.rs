//! Differential property tests for the columnar scan: over random corpora
//! — including raw documents with missing or ill-typed hot fields, the
//! kind the exactness contract in `prov_db::columnar` exists for — random
//! filter/aggregate pipelines must produce exactly the `QueryOutput`
//! (or exactly the error) of the full-materialize document-scan oracle.

use dataframe::{col, lit, AggFunc, CmpOp, DataFrame, Expr};
use proptest::prelude::*;
use prov_db::{ProvenanceDatabase, Pushdown};
use prov_model::{obj, TaskMessageBuilder, TaskStatus, Value};
use provql::{execute, Query, Stage};

/// Columns mixing columnar hot fields, decode-only payload fields, and a
/// name no document ever sets.
fn arb_column() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("task_id".to_string()),
        Just("workflow_id".to_string()),
        Just("activity_id".to_string()),
        Just("hostname".to_string()),
        Just("status".to_string()),
        Just("type".to_string()),
        Just("started_at".to_string()),
        Just("ended_at".to_string()),
        Just("duration".to_string()),
        Just("cpu_percent_end".to_string()),
        Just("gpu_percent_end".to_string()),
        Just("mem_used_mb_end".to_string()),
        Just("y".to_string()),
        Just("ghost_column".to_string()),
    ]
}

fn arb_lit() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-3.0f64..40.0).prop_map(Value::Float),
        (0i64..30).prop_map(Value::Int),
        "[a-z0-9-]{1,6}".prop_map(|s| Value::from(s.as_str())),
        Just(Value::from("ERROR")),
        Just(Value::from("FINISHED")),
        Just(Value::from("wf-1")),
        Just(Value::from("t3")),
        Just(Value::Null),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_filter() -> impl Strategy<Value = Stage> {
    (arb_column(), arb_cmp(), arb_lit())
        .prop_map(|(c, op, v)| Stage::Filter(Expr::Cmp(Box::new(col(c)), op, Box::new(lit(v)))))
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    let agg = prop_oneof![
        Just(AggFunc::Mean),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Count),
    ];
    prop_oneof![
        arb_filter(),
        arb_filter(),
        prop::collection::vec(arb_column(), 1..3).prop_map(Stage::Select),
        arb_column().prop_map(Stage::Col),
        arb_column().prop_map(|c| Stage::GroupBy(vec![c])),
        agg.prop_map(Stage::Agg),
        (arb_column(), any::<bool>()).prop_map(|(c, a)| Stage::SortValues(vec![(c, a)])),
        (1usize..5).prop_map(Stage::Head),
        Just(Stage::Count),
        Just(Stage::ValueCounts),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (prop::collection::vec(arb_stage(), 0..4), any::<bool>()).prop_map(|(stages, wrap)| {
        let p = Query::pipeline(stages);
        if wrap {
            Query::Len(Box::new(p))
        } else {
            p
        }
    })
}

/// A well-formed task message with randomized hot fields, payloads,
/// optional telemetry, and (rarely) a dataflow key that shadows a
/// telemetry column's bare name (exercising poisoning).
fn arb_message() -> impl Strategy<Value = prov_model::TaskMessage> {
    (
        0usize..24,
        0usize..3,
        0usize..3,
        0u8..4,
        -3.0f64..30.0,
        0.0f64..6.0,
        any::<bool>(),
        0u8..12,
    )
        .prop_map(|(i, wf, act, status, start, dur, tele, shadow)| {
            let status = match status {
                0 => TaskStatus::Pending,
                1 => TaskStatus::Running,
                2 => TaskStatus::Error,
                _ => TaskStatus::Finished,
            };
            let mut b =
                TaskMessageBuilder::new(format!("t{i}"), format!("wf-{wf}"), format!("act{act}"))
                    .host(format!("n{}", i % 3))
                    .status(status)
                    .span(start, start + dur)
                    .uses("y", i as f64);
            if tele {
                let synth = prov_model::TelemetrySynth::frontier(i as u64);
                b = b.telemetry(
                    synth.snapshot(i as u64, 0, 0.5),
                    synth.snapshot(i as u64, 1, 0.5),
                );
            }
            if shadow == 0 {
                b = b.generates("gpu_percent_end", 123.0);
            }
            b.build()
        })
}

/// A raw document with missing/ill-typed hot fields: sometimes not even
/// decodable as a task message (the oracle drops it; the columnar path
/// must too), sometimes decodable only through defaults and coercions.
fn arb_raw_doc() -> impl Strategy<Value = Value> {
    let ids = prop_oneof![
        Just(Value::from("r1")),
        Just(Value::from("r2")),
        Just(Value::Int(7)), // ill-typed: undecodable id
        Just(Value::Null),
    ];
    let status = prop_oneof![
        Just(Value::from("ERROR")),
        Just(Value::from("finished")), // canonicalizes to FINISHED
        Just(Value::from("bogus")),    // falls back to the default
        Just(Value::Int(1)),           // ill-typed
        Just(Value::Null),
    ];
    let stamp = prop_oneof![
        (-2.0f64..20.0).prop_map(Value::Float),
        (0i64..20).prop_map(Value::Int),
        Just(Value::from("not-a-number")),
        Just(Value::Null),
    ];
    (
        ids.clone(),
        ids,
        status,
        stamp.clone(),
        stamp,
        any::<bool>(),
    )
        .prop_map(|(task, wf, status, started, ended, with_tele)| {
            let mut doc = obj! {
                "activity_id" => "raw_act",
                "status" => status,
                "started_at" => started,
                "ended_at" => ended,
            };
            if !task.is_null() {
                doc.insert("task_id", task);
            }
            if !wf.is_null() {
                doc.insert("workflow_id", wf);
            }
            if with_tele {
                doc.insert(
                    "telemetry_at_end",
                    obj! {"cpu" => obj! {"percent" => prov_model::arr![10.0, "x", 30.0]}},
                );
            }
            doc
        })
}

fn check(db: &ProvenanceDatabase, frame: &DataFrame, q: &Query, use_columnar: bool) {
    let oracle = execute(q, frame);
    match prov_db::try_execute_with(db, q, use_columnar) {
        Pushdown::Executed(got) => {
            assert_eq!(got, oracle, "use_columnar={use_columnar}, query={q:?}")
        }
        // The fallback path *is* the oracle — trivially identical.
        Pushdown::NeedsFullFrame(_) => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Messy corpora (raw docs with missing/ill-typed hot fields mixed
    /// into well-formed messages): the columnar path must agree with the
    /// document-scan oracle on every servable pipeline.
    #[test]
    fn columnar_matches_oracle_on_messy_corpora(
        msgs in prop::collection::vec(arb_message(), 1..14),
        raws in prop::collection::vec(arb_raw_doc(), 0..6),
        queries in prop::collection::vec(arb_query(), 1..4),
    ) {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs);
        for raw in &raws {
            // Straight into the document backend: the facade only ever
            // stores well-formed Listing-1 messages, so malformed shapes
            // must be injected below it.
            db.documents().insert(raw.clone());
        }
        let frame = prov_db::full_frame(&db);
        for q in &queries {
            check(&db, &frame, q, true);
        }
    }

    /// Well-formed corpora: the columnar scan, the decode-based scan, and
    /// the oracle all agree.
    #[test]
    fn all_paths_agree_on_wellformed_corpora(
        msgs in prop::collection::vec(arb_message(), 1..14),
        queries in prop::collection::vec(arb_query(), 1..4),
    ) {
        let db = ProvenanceDatabase::new();
        db.insert_batch(&msgs);
        let frame = prov_db::full_frame(&db);
        for q in &queries {
            check(&db, &frame, q, true);
            check(&db, &frame, q, false);
        }
    }
}
