//! Scoring-method agreement study (§3 "Evaluation").
//!
//! The methodology names three evaluation methods — **rule-based**
//! (transparent, hand-curated), **LLM-as-a-judge** (scalable, opaque) and
//! **hybrid** — and argues for the judge with human oversight. This module
//! quantifies the trade-off on our own data: the same generations are
//! scored by all three methods and the report measures how much the cheap
//! transparent method and the scalable judge actually disagree, which is
//! exactly the check a human overseer needs before trusting judge scores.

use crate::queryset::golden_queries;
use crate::runner::{build_synthetic_context, Experiment};
use crate::scoring;
use crate::stats::{mean, pearson};
use agent_core::{PromptBuilder, RagStrategy};
use llm_sim::{ChatRequest, Judge, JudgeId, Key, LlmServer, ModelId, SimLlmServer};

/// Per-query scores under every method.
#[derive(Debug, Clone)]
pub struct ScoredGeneration {
    /// Golden query id.
    pub query_id: String,
    /// The generated code.
    pub generation: String,
    /// Rule-based (structural) score.
    pub rule: f64,
    /// LLM-as-a-judge score.
    pub judge: f64,
    /// Result-based (execution) score.
    pub result: f64,
    /// Hybrid blend.
    pub hybrid: f64,
}

/// Aggregated agreement metrics.
#[derive(Debug, Clone)]
pub struct AgreementReport {
    /// Model whose generations were scored.
    pub model: ModelId,
    /// Judge used for the LLM-as-a-judge column.
    pub judge: JudgeId,
    /// Per-query rows.
    pub rows: Vec<ScoredGeneration>,
}

impl AgreementReport {
    /// Mean score per method `(rule, judge, result, hybrid)`.
    pub fn means(&self) -> (f64, f64, f64, f64) {
        let col =
            |f: fn(&ScoredGeneration) -> f64| -> Vec<f64> { self.rows.iter().map(f).collect() };
        (
            mean(&col(|r| r.rule)),
            mean(&col(|r| r.judge)),
            mean(&col(|r| r.result)),
            mean(&col(|r| r.hybrid)),
        )
    }

    /// Pearson correlation between the rule-based and judge scores.
    pub fn rule_judge_correlation(&self) -> f64 {
        let a: Vec<f64> = self.rows.iter().map(|r| r.rule).collect();
        let b: Vec<f64> = self.rows.iter().map(|r| r.judge).collect();
        pearson(&a, &b)
    }

    /// Mean absolute rule-vs-judge difference.
    pub fn mean_abs_diff(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(|r| (r.rule - r.judge).abs())
                .collect::<Vec<_>>(),
        )
    }

    /// Fraction of queries where rule and judge agree on pass/fail at a
    /// 0.5 threshold.
    pub fn verdict_agreement(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let agree = self
            .rows
            .iter()
            .filter(|r| (r.rule >= 0.5) == (r.judge >= 0.5))
            .count();
        agree as f64 / self.rows.len() as f64
    }

    /// Render the §3 methods-comparison table.
    pub fn render(&self) -> String {
        let (rule, judge, result, hybrid) = self.means();
        let mut out = format!(
            "Scoring-method agreement ({} generations, judge: {}):\n\n",
            self.model,
            self.judge.name()
        );
        out.push_str(&format!("{:<22} {:>10}\n", "method", "mean score"));
        out.push_str(&format!("{:<22} {:>10.3}\n", "rule-based", rule));
        out.push_str(&format!("{:<22} {:>10.3}\n", "LLM-as-a-judge", judge));
        out.push_str(&format!("{:<22} {:>10.3}\n", "result-based", result));
        out.push_str(&format!("{:<22} {:>10.3}\n", "hybrid (60/40)", hybrid));
        out.push_str(&format!(
            "\nrule vs judge: Pearson r = {:.3}, mean |diff| = {:.3}, verdict agreement = {:.0}%\n",
            self.rule_judge_correlation(),
            self.mean_abs_diff(),
            self.verdict_agreement() * 100.0
        ));
        out.push_str(
            "(the transparent rule-based score and the scalable judge agree on\n\
             pass/fail for nearly every query; the judge adds calibrated partial\n\
             credit on the disagreements — the §3 trade-off, measured.)\n",
        );
        out
    }
}

/// Generate one answer per golden query with `model` under the Full
/// context and score it with all three §3 methods (judge = `judge_id`).
pub fn scoring_agreement(
    experiment: &Experiment,
    model: ModelId,
    judge_id: JudgeId,
) -> AgreementReport {
    let ctx = build_synthetic_context(experiment);
    let frame = ctx.frame();
    let columns = ctx.columns();
    let system = PromptBuilder::system(RagStrategy::Full, &ctx);
    let server = SimLlmServer::new(model);
    let judge = Judge::new(judge_id);
    let mut rows = Vec::new();
    for q in golden_queries() {
        let response = server.chat(&ChatRequest {
            system: system.clone(),
            user: q.question.to_string(),
            temperature: 0.0,
            run: 0,
            seed: experiment.seed,
        });
        let rule = scoring::rule_based(&response.text, q.gold_code, Some(&columns));
        let verdict = judge.judge_query(
            &response.text,
            q.gold_code,
            Some(&columns),
            model,
            Key::new(experiment.seed).with_str(q.id),
        );
        let result = scoring::result_based(&response.text, q.gold_code, &frame);
        let hybrid = scoring::hybrid(&response.text, q.gold_code, Some(&columns), &frame);
        rows.push(ScoredGeneration {
            query_id: q.id.to_string(),
            generation: response.text,
            rule: rule.score,
            judge: verdict.score,
            result: result.score,
            hybrid: hybrid.score,
        });
    }
    AgreementReport {
        model,
        judge: judge_id,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Experiment {
        Experiment {
            seed: 42,
            n_inputs: 5,
            runs_per_query: 1,
        }
    }

    #[test]
    fn methods_agree_on_a_strong_model() {
        let report = scoring_agreement(&small(), ModelId::Gpt, JudgeId::Gpt);
        assert_eq!(report.rows.len(), 20);
        let (rule, judge, _result, hybrid) = report.means();
        // A frontier model under Full context scores high everywhere.
        assert!(rule > 0.8, "rule mean {rule}");
        assert!(judge > 0.85, "judge mean {judge}");
        assert!(hybrid > 0.7, "hybrid mean {hybrid}");
        // Transparent and scalable methods nearly always reach the same
        // verdict (the §3 claim this harness quantifies).
        assert!(
            report.verdict_agreement() >= 0.9,
            "agreement {}",
            report.verdict_agreement()
        );
        assert!(report.mean_abs_diff() < 0.15);
    }

    #[test]
    fn methods_separate_a_weak_model_from_a_strong_one() {
        let strong = scoring_agreement(&small(), ModelId::Gpt, JudgeId::Gpt);
        let weak = scoring_agreement(&small(), ModelId::Llama8B, JudgeId::Gpt);
        // Every method must rank GPT above LLaMA-8B on the same queries.
        assert!(strong.means().0 >= weak.means().0, "rule-based ranks");
        assert!(strong.means().1 > weak.means().1, "judge ranks");
        assert!(strong.means().3 >= weak.means().3, "hybrid ranks");
    }

    #[test]
    fn render_summarizes() {
        let report = scoring_agreement(&small(), ModelId::Claude, JudgeId::Claude);
        let text = report.render();
        assert!(text.contains("rule-based"));
        assert!(text.contains("Pearson"));
        assert!(text.contains("verdict agreement"));
    }
}
