//! Small statistics helpers for score aggregation and boxplots.

/// Median of a sample (empty → 0).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Arithmetic mean (empty → 0).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Pearson correlation coefficient of two equal-length samples.
/// Degenerate inputs (length mismatch, n < 2, zero variance) → 0.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Sample standard deviation, ddof = 1 (n < 2 → 0).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Five-number summary for boxplots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl BoxStats {
    /// Compute from a sample (empty → all zeros).
    pub fn of(values: &[f64]) -> BoxStats {
        if values.is_empty() {
            return BoxStats {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        BoxStats {
            min: v[0],
            q1: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q3: quantile(&v, 0.75),
            max: v[v.len() - 1],
            n: v.len(),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation quantile of a sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert!((std_dev(&v) - 2.13809).abs() < 1e-4);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn box_stats() {
        let v: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = BoxStats::of(&v);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.max, 9.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.iqr(), 4.0);
        assert_eq!(b.n, 9);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.5), 5.0);
        assert_eq!(quantile(&v, 0.25), 2.5);
    }

    #[test]
    fn pearson_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down) + 1.0).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(pearson(&a, &[1.0, 2.0]), 0.0);
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }
}
