//! The three evaluation methods of §3: **rule-based** (transparent
//! structural comparison), **LLM-as-a-judge** (the [`llm_sim::Judge`]
//! panel), and **hybrid** (query-based + result-based blend).
//!
//! "While rule-based scoring is transparent and interpretable … it is
//! difficult to design comprehensively and is prone to edge-case errors.
//! By contrast, LLM-as-a-judge methods are more scalable … however, they
//! introduce opacity." Both are provided; the runner defaults to the
//! judge panel as the paper does.

use dataframe::DataFrame;
use llm_sim::Judge;
use provql::{compare, execute, parse, QueryOutput};

/// A score with its provenance (which method produced it).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodScore {
    /// Score in `[0, 1]`.
    pub score: f64,
    /// Which method produced it.
    pub method: &'static str,
    /// Diagnostic notes.
    pub notes: Vec<String>,
}

/// Rule-based, query-based evaluation: parse both queries and compare
/// structurally (syntax, fields, filters, aggregations) — no LLM, no bias,
/// fully interpretable.
pub fn rule_based(generated: &str, gold: &str, schema_columns: Option<&[String]>) -> MethodScore {
    let gold_query = match parse(gold) {
        Ok(q) => q,
        Err(e) => {
            return MethodScore {
                score: 0.0,
                method: "rule-based",
                notes: vec![format!("gold query invalid: {e}")],
            }
        }
    };
    match parse(generated) {
        Ok(gen) => {
            let cmp = compare(&gen, &gold_query, schema_columns);
            MethodScore {
                score: cmp.score,
                method: "rule-based",
                notes: cmp.notes,
            }
        }
        Err(e) => MethodScore {
            score: 0.0,
            method: "rule-based",
            notes: vec![format!("generated query does not parse: {e}")],
        },
    }
}

/// Result-based evaluation: execute both queries against the same frame
/// and compare the result sets (string/numeric similarity). Tolerant of
/// structurally different but functionally equivalent queries; blind to
/// queries that are "accidentally right" on this particular data.
pub fn result_based(generated: &str, gold: &str, frame: &DataFrame) -> MethodScore {
    let run = |text: &str| -> Result<QueryOutput, String> {
        let q = parse(text).map_err(|e| e.to_string())?;
        execute(&q, frame).map_err(|e| e.to_string())
    };
    match (run(generated), run(gold)) {
        (Ok(a), Ok(b)) => MethodScore {
            score: Judge::result_similarity(&a, &b),
            method: "result-based",
            notes: vec![format!(
                "compared {} generated vs {} gold result entries",
                a.len(),
                b.len()
            )],
        },
        (Err(e), _) => MethodScore {
            score: 0.0,
            method: "result-based",
            notes: vec![format!("generated query failed to execute: {e}")],
        },
        (_, Err(e)) => MethodScore {
            score: 0.0,
            method: "result-based",
            notes: vec![format!("gold query failed to execute: {e}")],
        },
    }
}

/// Hybrid evaluation (§3): blend of query-based and result-based scores
/// (60/40, matching [`Judge::hybrid_score`]).
pub fn hybrid(
    generated: &str,
    gold: &str,
    schema_columns: Option<&[String]>,
    frame: &DataFrame,
) -> MethodScore {
    let q = rule_based(generated, gold, schema_columns);
    let r = result_based(generated, gold, frame);
    let mut notes = q.notes;
    notes.extend(r.notes);
    MethodScore {
        score: (0.6 * q.score + 0.4 * r.score).clamp(0.0, 1.0),
        method: "hybrid",
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::TaskMessageBuilder;

    fn frame() -> DataFrame {
        let msgs: Vec<prov_model::TaskMessage> = (0..10)
            .map(|i| {
                TaskMessageBuilder::new(format!("t{i}"), "wf", if i % 2 == 0 { "a" } else { "b" })
                    .generates("v", i as f64)
                    .span(i as f64, i as f64 + 1.0)
                    .build()
            })
            .collect();
        DataFrame::from_messages(&msgs)
    }

    const GOLD: &str = r#"len(df[df["activity_id"] == "a"])"#;

    #[test]
    fn rule_based_scores_structure() {
        let exact = rule_based(GOLD, GOLD, None);
        assert!(exact.score > 0.999);
        let wrong = rule_based(r#"len(df[df["activity_id"] == "b"])"#, GOLD, None);
        assert!(wrong.score < 0.85);
        let garbage = rule_based("SELECT 1", GOLD, None);
        assert_eq!(garbage.score, 0.0);
        assert!(garbage.notes[0].contains("does not parse"));
    }

    #[test]
    fn result_based_sees_through_structure() {
        let f = frame();
        // Different structure, same result (count of activity-a rows = 5):
        // shape[0] vs len().
        let equivalent = result_based(r#"df[df["activity_id"] == "a"].shape[0]"#, GOLD, &f);
        assert_eq!(equivalent.score, 1.0);
        // Wrong filter → different count → partial numeric similarity.
        let wrong = result_based(r#"len(df)"#, GOLD, &f);
        assert!(wrong.score < 1.0);
    }

    #[test]
    fn result_based_catches_accidental_rightness_limits() {
        let f = frame();
        // activity "a" and "even v" queries coincide on this data: the
        // result-based method cannot tell them apart (its documented blind
        // spot), while the rule-based method can.
        let accidental = r#"len(df[df["activity_id"] == "a"])"#;
        let r = result_based(accidental, GOLD, &f);
        assert_eq!(r.score, 1.0);
    }

    #[test]
    fn hybrid_blends_both() {
        let f = frame();
        // Equivalent-but-different: rule-based near 1 (len ≡ shape[0]),
        // result-based exactly 1 → hybrid high.
        let h = hybrid(r#"df[df["activity_id"] == "a"].shape[0]"#, GOLD, None, &f);
        assert!(h.score > 0.95, "{}", h.score);
        // Broken generation → both components zero.
        let h = hybrid("garbage(", GOLD, None, &f);
        assert_eq!(h.score, 0.0);
        assert_eq!(h.method, "hybrid");
    }

    #[test]
    fn execution_failures_reported() {
        let f = frame();
        let r = result_based(r#"df["missing_column"].mean()"#, GOLD, &f);
        assert_eq!(r.score, 0.0);
        assert!(r.notes[0].contains("failed to execute"));
    }
}
