//! The golden query set (§3 "Query Set", §5.2).
//!
//! Twenty manually curated natural-language queries over the synthetic
//! workflow, each labelled with its query class and paired with the
//! expected DataFrame code. The distribution reproduces Table 1 exactly:
//! evenly split OLAP/OLTP, with data-type totals exceeding 20 because some
//! queries touch multiple provenance types.

use crate::taxonomy::{DataType, QueryClass, Workload};

/// One golden query.
#[derive(Debug, Clone)]
pub struct GoldenQuery {
    /// Stable id (`q01`…`q20`).
    pub id: &'static str,
    /// The natural-language question.
    pub question: &'static str,
    /// Human-written gold DataFrame code.
    pub gold_code: &'static str,
    /// Query-class annotation.
    pub class: QueryClass,
}

/// Build the 20-query golden set.
pub fn golden_queries() -> Vec<GoldenQuery> {
    use DataType::*;
    use Workload::*;
    let q = |id, question, gold_code, data_types: &[DataType], workload| GoldenQuery {
        id,
        question,
        gold_code,
        class: QueryClass::online(data_types, workload),
    };
    vec![
        // ---------------- OLTP (targeted lookups) ----------------
        q(
            "q01",
            "How many tasks have finished so far?",
            r#"len(df[df["status"] == "FINISHED"])"#,
            &[ControlFlow],
            Oltp,
        ),
        q(
            "q02",
            "Show the tasks that ran on host frontier00082 with their activity and duration.",
            r#"df[df["hostname"].str.contains("frontier00082")][["task_id", "activity_id", "duration"]]"#,
            &[Scheduling, Telemetry],
            Oltp,
        ),
        q(
            "q03",
            "What exponent did the power activity use?",
            r#"df[df["activity_id"] == "power"][["task_id", "exponent"]]"#,
            &[Dataflow],
            Oltp,
        ),
        q(
            "q04",
            "Which tasks started after time 1753457859 and what output y did they produce?",
            r#"df[df["started_at"] > 1753457859][["task_id", "y"]]"#,
            &[Scheduling, Dataflow],
            Oltp,
        ),
        q(
            "q05",
            "What was the CPU utilization at the end of the tasks that ran on host frontier00083?",
            r#"df[df["hostname"].str.contains("frontier00083")][["task_id", "cpu_percent_end"]]"#,
            &[Telemetry, Scheduling],
            Oltp,
        ),
        q(
            "q06",
            "List the distinct activities and the hosts they ran on.",
            r#"df[["activity_id", "hostname"]].drop_duplicates()"#,
            &[ControlFlow, Scheduling],
            Oltp,
        ),
        q(
            "q07",
            "How much memory did the average_results tasks use?",
            r#"df[df["activity_id"] == "average_results"][["task_id", "mem_used_mb_end"]]"#,
            &[Telemetry, Dataflow],
            Oltp,
        ),
        q(
            "q08",
            "How many tasks failed?",
            r#"len(df[df["status"] == "ERROR"])"#,
            &[ControlFlow],
            Oltp,
        ),
        q(
            "q09",
            "What is the final average value and how long did that task take?",
            r#"df[df["activity_id"] == "average_results"][["average", "duration"]]"#,
            &[Dataflow, Telemetry],
            Oltp,
        ),
        q(
            "q10",
            "On which host did the task with the highest GPU utilization run?",
            r#"df.loc[df["gpu_percent_end"].idxmax(), "hostname"]"#,
            &[Telemetry, Scheduling],
            Oltp,
        ),
        // ---------------- OLAP (analytical) ----------------
        q(
            "q11",
            "What is the average duration per activity?",
            r#"df.groupby("activity_id")["duration"].mean()"#,
            &[ControlFlow, Telemetry],
            Olap,
        ),
        q(
            "q12",
            "Which activity has the highest mean CPU utilization?",
            r#"df.groupby("activity_id")["cpu_percent_end"].mean().reset_index().sort_values("cpu_percent_end", ascending=False).head(1)"#,
            &[Telemetry, ControlFlow],
            Olap,
        ),
        q(
            "q13",
            "How many tasks ran on each host?",
            r#"df["hostname"].value_counts()"#,
            &[Scheduling],
            Olap,
        ),
        q(
            "q14",
            "What is the total time span of the workflow execution?",
            r#"df["ended_at"].max() - df["started_at"].min()"#,
            &[Scheduling],
            Olap,
        ),
        q(
            "q15",
            "Which task produced the largest output y?",
            r#"df.loc[df["y"].idxmax()]"#,
            &[Dataflow],
            Olap,
        ),
        q(
            "q16",
            "What is the average output y of the power tasks?",
            r#"df[df["activity_id"] == "power"]["y"].mean()"#,
            &[Dataflow],
            Olap,
        ),
        q(
            "q17",
            "Show the 3 slowest tasks with their activity and host.",
            r#"df.sort_values("duration", ascending=False)[["task_id", "activity_id", "hostname", "duration"]].head(3)"#,
            &[Telemetry, Scheduling],
            Olap,
        ),
        {
            let mut g = q(
                "q18",
                "How many tasks consumed outputs of other tasks?",
                r#"len(df[df["depends_on"].notna()])"#,
                &[Dataflow, ControlFlow],
                Olap,
            );
            g.class = QueryClass::online_graph(&[Dataflow, ControlFlow], Olap);
            g
        },
        q(
            "q19",
            "What is the average memory usage per activity?",
            r#"df.groupby("activity_id")["mem_used_mb_end"].mean()"#,
            &[Telemetry],
            Olap,
        ),
        q(
            "q20",
            "Which workflow run had the highest total duration?",
            r#"df.groupby("workflow_id")["duration"].sum().reset_index().sort_values("duration", ascending=False).head(1)"#,
            &[ControlFlow],
            Olap,
        ),
    ]
}

/// Table 1: query counts per data type and workload.
pub fn distribution() -> Vec<(DataType, usize, usize)> {
    let queries = golden_queries();
    DataType::all()
        .into_iter()
        .map(|dt| {
            let olap = queries
                .iter()
                .filter(|q| q.class.workload == Workload::Olap && q.class.data_types.contains(&dt))
                .count();
            let oltp = queries
                .iter()
                .filter(|q| q.class.workload == Workload::Oltp && q.class.data_types.contains(&dt))
                .count();
            (dt, olap, oltp)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provql::parse;

    #[test]
    fn twenty_queries_even_split() {
        let qs = golden_queries();
        assert_eq!(qs.len(), 20);
        let olap = qs
            .iter()
            .filter(|q| q.class.workload == Workload::Olap)
            .count();
        assert_eq!(olap, 10, "evenly split between OLAP and OLTP");
        // Unique ids.
        let mut ids: Vec<&str> = qs.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn table1_marginals_match_paper() {
        // Paper Table 1: CF 4/3, DF 3/4, Sched 3/5, Tel 4/5 (OLAP/OLTP).
        let dist = distribution();
        let get = |dt: DataType| dist.iter().find(|(d, _, _)| *d == dt).unwrap();
        assert_eq!(get(DataType::ControlFlow).1, 4);
        assert_eq!(get(DataType::ControlFlow).2, 3);
        assert_eq!(get(DataType::Dataflow).1, 3);
        assert_eq!(get(DataType::Dataflow).2, 4);
        assert_eq!(get(DataType::Scheduling).1, 3);
        assert_eq!(get(DataType::Scheduling).2, 5);
        assert_eq!(get(DataType::Telemetry).1, 4);
        assert_eq!(get(DataType::Telemetry).2, 5);
        // Totals exceed 20 (31 tags over 20 queries).
        let total: usize = dist.iter().map(|(_, a, b)| a + b).sum();
        assert_eq!(total, 31);
    }

    #[test]
    fn gold_code_parses() {
        for q in golden_queries() {
            assert!(parse(q.gold_code).is_ok(), "{} gold does not parse", q.id);
        }
    }

    #[test]
    fn gold_code_executes_on_synthetic_data() {
        let hub = prov_stream::StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        workflows::run_sweep(&hub, prov_model::sim_clock(), 42, 5).unwrap();
        let msgs: Vec<prov_model::TaskMessage> =
            sub.drain().iter().map(|m| (**m).clone()).collect();
        let frame = dataframe::DataFrame::from_messages(&msgs);
        for q in golden_queries() {
            let query = parse(q.gold_code).unwrap();
            let out = provql::execute(&query, &frame);
            assert!(out.is_ok(), "{} failed: {:?}", q.id, out.err());
        }
    }
}
