//! Table and figure renderers: regenerate every table and figure of the
//! paper's evaluation from [`EvalResults`], as aligned text plus CSV.

use crate::runner::EvalResults;
use crate::stats::{mean, std_dev, BoxStats};
use crate::taxonomy::{DataType, Workload};
use agent_core::RagStrategy;
use llm_sim::{JudgeId, ModelId};
use std::fmt::Write as _;

/// Table 1: distribution of queries by data type and workload.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("Table 1: Distribution of queries by data type and workload.\n");
    out.push_str(&format!(
        "{:<14} {:>5} {:>5} {:>6}\n",
        "Data Type", "OLAP", "OLTP", "Total"
    ));
    let mut t_olap = 0;
    let mut t_oltp = 0;
    for (dt, olap, oltp) in crate::queryset::distribution() {
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>5} {:>6}",
            dt.name(),
            olap,
            oltp,
            olap + oltp
        );
        t_olap += olap;
        t_oltp += oltp;
    }
    let _ = writeln!(
        out,
        "{:<14} {:>5} {:>5} {:>6}",
        "Total",
        t_olap,
        t_oltp,
        t_olap + t_oltp
    );
    out
}

/// Table 2: prompt + RAG configurations.
pub fn table2() -> String {
    let mut out = String::new();
    out.push_str("Table 2: Prompt + RAG configurations used for evaluation.\n");
    let _ = writeln!(out, "{:<28} Context (Prompt+RAG strategy)", "Label");
    for s in RagStrategy::all() {
        let _ = writeln!(out, "{:<28} {}", s.label(), s.description());
    }
    out
}

/// One Fig 6 data point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Point {
    /// Judge identity.
    pub judge: JudgeId,
    /// Evaluated model.
    pub model: ModelId,
    /// Average of per-query median scores.
    pub score: f64,
}

/// Figure 6 series: scores assigned by the two judges across models
/// (Full-context configuration).
pub fn fig6_points(results: &EvalResults) -> Vec<Fig6Point> {
    let mut out = Vec::new();
    for judge in JudgeId::all() {
        for model in ModelId::all() {
            let scores = results.scores(|r| {
                r.strategy == RagStrategy::Full && r.judge == judge && r.model == model
            });
            if !scores.is_empty() {
                out.push(Fig6Point {
                    judge,
                    model,
                    score: mean(&scores),
                });
            }
        }
    }
    out
}

/// Render Figure 6 as text.
pub fn fig6(results: &EvalResults) -> String {
    let points = fig6_points(results);
    let mut out = String::new();
    out.push_str("Figure 6: Scores assigned by two different judges (Full context).\n");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>13}",
        "Model", "GPT Score", "Claude Score"
    );
    for model in ModelId::all() {
        let get = |j: JudgeId| {
            points
                .iter()
                .find(|p| p.judge == j && p.model == model)
                .map(|p| p.score)
                .unwrap_or(f64::NAN)
        };
        let _ = writeln!(
            out,
            "{:<14} {:>10.3} {:>13.3}",
            model.name(),
            get(JudgeId::Gpt),
            get(JudgeId::Claude)
        );
    }
    out
}

/// One Fig 7 boxplot cell.
#[derive(Debug, Clone)]
pub struct Fig7Cell {
    /// Judge.
    pub judge: JudgeId,
    /// Workload.
    pub workload: Workload,
    /// Model.
    pub model: ModelId,
    /// Data type.
    pub data_type: DataType,
    /// Boxplot statistics over per-query median scores.
    pub stats: BoxStats,
}

/// Figure 7 cells: per-class boxplots (model × data type × workload ×
/// judge) under the Full configuration.
pub fn fig7_cells(results: &EvalResults) -> Vec<Fig7Cell> {
    let mut out = Vec::new();
    for judge in JudgeId::all() {
        for workload in Workload::all() {
            for model in ModelId::all() {
                for dt in DataType::all() {
                    let scores = results.scores(|r| {
                        r.strategy == RagStrategy::Full
                            && r.judge == judge
                            && r.model == model
                            && r.workload == workload
                            && r.data_types.contains(&dt)
                    });
                    if !scores.is_empty() {
                        out.push(Fig7Cell {
                            judge,
                            workload,
                            model,
                            data_type: dt,
                            stats: BoxStats::of(&scores),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Render Figure 7 as text (median [q1, q3] per cell).
pub fn fig7(results: &EvalResults) -> String {
    let cells = fig7_cells(results);
    let mut out = String::new();
    out.push_str("Figure 7: LLM performance per query class (Full context).\n");
    for judge in JudgeId::all() {
        for workload in Workload::all() {
            let _ = writeln!(out, "\n[{} judge — {}]", judge.name(), workload.name());
            let _ = write!(out, "{:<14}", "Model");
            for dt in DataType::all() {
                let _ = write!(out, " {:>22}", dt.name());
            }
            out.push('\n');
            for model in ModelId::all() {
                let _ = write!(out, "{:<14}", model.name());
                for dt in DataType::all() {
                    let cell = cells.iter().find(|c| {
                        c.judge == judge
                            && c.workload == workload
                            && c.model == model
                            && c.data_type == dt
                    });
                    match cell {
                        Some(c) => {
                            let _ = write!(
                                out,
                                " {:>8.2} [{:.2},{:.2}]",
                                c.stats.median, c.stats.q1, c.stats.q3
                            );
                        }
                        None => {
                            let _ = write!(out, " {:>22}", "-");
                        }
                    }
                }
                out.push('\n');
            }
        }
    }
    out
}

/// One Fig 8 point: a configuration's score/token trade-off.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Configuration.
    pub strategy: RagStrategy,
    /// Mean of per-query median scores.
    pub score: f64,
    /// Standard deviation of per-query median scores.
    pub score_std: f64,
    /// Mean total tokens (input + output).
    pub tokens: f64,
}

/// Figure 8 points (GPT model, GPT judge).
pub fn fig8_points(results: &EvalResults) -> Vec<Fig8Point> {
    RagStrategy::evaluated()
        .into_iter()
        .filter_map(|strategy| {
            let recs: Vec<_> = results
                .filter(|r| {
                    r.model == ModelId::Gpt && r.judge == JudgeId::Gpt && r.strategy == strategy
                })
                .collect();
            if recs.is_empty() {
                return None;
            }
            let scores: Vec<f64> = recs.iter().map(|r| r.median_score).collect();
            let tokens: Vec<f64> = recs.iter().map(|r| r.median_tokens).collect();
            Some(Fig8Point {
                strategy,
                score: mean(&scores),
                score_std: std_dev(&scores),
                tokens: mean(&tokens),
            })
        })
        .collect()
}

/// Render Figure 8 as text.
pub fn fig8(results: &EvalResults) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 8: Impact of contextual components on performance and token consumption\n\
         (GPT model, GPT judge; mean of per-query medians ± std).\n",
    );
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>7} {:>9}",
        "Context", "Score", "±Std", "Tokens"
    );
    for p in fig8_points(results) {
        let _ = writeln!(
            out,
            "{:<28} {:>7.3} {:>7.3} {:>9.0}",
            p.strategy.label(),
            p.score,
            p.score_std,
            p.tokens
        );
    }
    out
}

/// Figure 9 matrix: per data type × configuration mean scores (GPT/GPT).
pub fn fig9_matrix(results: &EvalResults) -> Vec<(DataType, Vec<(RagStrategy, f64)>)> {
    DataType::all()
        .into_iter()
        .map(|dt| {
            let row = RagStrategy::evaluated()
                .into_iter()
                .map(|strategy| {
                    let scores = results.scores(|r| {
                        r.model == ModelId::Gpt
                            && r.judge == JudgeId::Gpt
                            && r.strategy == strategy
                            && r.data_types.contains(&dt)
                    });
                    (strategy, mean(&scores))
                })
                .collect();
            (dt, row)
        })
        .collect()
}

/// Render Figure 9 as text.
pub fn fig9(results: &EvalResults) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 9: Impact of contextual components per data type (GPT model, GPT judge).\n",
    );
    let _ = write!(out, "{:<14}", "Data Type");
    for s in RagStrategy::evaluated() {
        let _ = write!(out, " {:>12}", short_label(s));
    }
    out.push('\n');
    for (dt, row) in fig9_matrix(results) {
        let _ = write!(out, "{:<14}", dt.name());
        for (_, score) in row {
            let _ = write!(out, " {:>12.3}", score);
        }
        out.push('\n');
    }
    out
}

fn short_label(s: RagStrategy) -> &'static str {
    match s {
        RagStrategy::Nothing => "Zero",
        RagStrategy::Baseline => "Base",
        RagStrategy::BaselineFs => "+FS",
        RagStrategy::BaselineFsSchema => "+Schema",
        RagStrategy::BaselineFsSchemaValues => "+Values",
        RagStrategy::BaselineFsGuidelines => "+Guidelines",
        RagStrategy::Full => "Full",
    }
}

/// Response-time report (§5.2): per model and workload, mean of per-query
/// median latencies, with the ~2 s interactive bound marked.
pub fn latency_report(results: &EvalResults) -> String {
    let mut out = String::new();
    out.push_str("Response times (mean of per-query median latencies, ms; Full context).\n");
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>9} {:>12}",
        "Model", "OLAP", "OLTP", "Interactive?"
    );
    for model in ModelId::all() {
        let lat = |w: Workload| {
            let v: Vec<f64> = results
                .filter(|r| {
                    r.model == model
                        && r.judge == JudgeId::Gpt
                        && r.strategy == RagStrategy::Full
                        && r.workload == w
                })
                .map(|r| r.median_latency_ms)
                .collect();
            mean(&v)
        };
        let olap = lat(Workload::Olap);
        let oltp = lat(Workload::Oltp);
        let interactive = olap.max(oltp) < 2_000.0;
        let _ = writeln!(
            out,
            "{:<14} {:>9.0} {:>9.0} {:>12}",
            model.name(),
            olap,
            oltp,
            if interactive { "yes (<2s)" } else { "NO" }
        );
    }
    out
}

/// Latency deep-dive (§5.4 future work: "whether specific query classes
/// or contextual components impact latency"). Two breakdowns over the GPT
/// model / GPT judge records: per data type at Full context, and per
/// prompt configuration — showing that latency follows prompt size
/// (prefill) while query class barely moves it.
pub fn latency_deep_dive(results: &EvalResults) -> String {
    let mut out = String::new();
    out.push_str("Latency deep-dive (GPT model, GPT judge).\n\n");
    out.push_str("(a) by data type at Full context:\n");
    let _ = writeln!(
        out,
        "    {:<14} {:>12} {:>10}",
        "Data type", "latency ms", "queries"
    );
    for dt in DataType::all() {
        let v: Vec<f64> = results
            .filter(|r| {
                r.model == ModelId::Gpt
                    && r.judge == JudgeId::Gpt
                    && r.strategy == RagStrategy::Full
                    && r.data_types.contains(&dt)
            })
            .map(|r| r.median_latency_ms)
            .collect();
        let _ = writeln!(
            out,
            "    {:<14} {:>12.0} {:>10}",
            dt.name(),
            mean(&v),
            v.len()
        );
    }
    out.push_str("\n(b) by prompt configuration (all classes):\n");
    let _ = writeln!(
        out,
        "    {:<28} {:>12} {:>12}",
        "Context", "latency ms", "tokens"
    );
    for s in RagStrategy::evaluated() {
        let lat: Vec<f64> = results
            .filter(|r| r.model == ModelId::Gpt && r.judge == JudgeId::Gpt && r.strategy == s)
            .map(|r| r.median_latency_ms)
            .collect();
        let tok: Vec<f64> = results
            .filter(|r| r.model == ModelId::Gpt && r.judge == JudgeId::Gpt && r.strategy == s)
            .map(|r| r.median_tokens)
            .collect();
        if lat.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "    {:<28} {:>12.0} {:>12.0}",
            s.label(),
            mean(&lat),
            mean(&tok)
        );
    }
    out.push_str(
        "\n(latency tracks prompt tokens through the prefill term; data types shift\n\
         it only marginally — richer context costs milliseconds, not seconds.)\n",
    );
    out
}

/// CSV export of the raw records (one row per query × model × strategy ×
/// judge cell).
pub fn to_csv(results: &EvalResults) -> String {
    let mut out = String::from(
        "query_id,model,strategy,judge,workload,data_types,median_score,median_tokens,median_latency_ms\n",
    );
    for r in &results.records {
        let dts: Vec<&str> = r.data_types.iter().map(|d| d.name()).collect();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.4},{:.0},{:.1}",
            r.query_id,
            r.model.name(),
            r.strategy.label(),
            r.judge.name(),
            r.workload.name(),
            dts.join("|"),
            r.median_score,
            r.median_tokens,
            r.median_latency_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_matrix, Experiment};
    use llm_sim::Judge;

    fn tiny_results() -> EvalResults {
        run_matrix(
            &Experiment {
                seed: 42,
                n_inputs: 3,
                runs_per_query: 1,
            },
            &[ModelId::Gpt, ModelId::Claude],
            &[RagStrategy::Full, RagStrategy::Baseline],
            &Judge::panel(),
        )
    }

    #[test]
    fn table1_reproduces_marginals() {
        let t = table1();
        assert!(t.contains("Control Flow"));
        let telemetry = t.lines().find(|l| l.starts_with("Telemetry")).unwrap();
        let cells: Vec<&str> = telemetry.split_whitespace().collect();
        assert_eq!(&cells[1..], &["4", "5", "9"]);
        let total = t.lines().find(|l| l.starts_with("Total")).unwrap();
        let cells: Vec<&str> = total.split_whitespace().collect();
        assert_eq!(&cells[1..], &["14", "17", "31"]);
    }

    #[test]
    fn table2_lists_all_configs() {
        let t = table2();
        for s in RagStrategy::all() {
            assert!(t.contains(s.label()), "missing {s}");
        }
    }

    #[test]
    fn figures_render_from_results() {
        let results = tiny_results();
        let f6 = fig6(&results);
        assert!(f6.contains("GPT Score") && f6.contains("Claude"));
        let f7 = fig7(&results);
        assert!(f7.contains("OLAP") && f7.contains("OLTP"));
        let f8 = fig8(&results);
        assert!(f8.contains("Baseline") && f8.contains("Full"));
        let f9 = fig9(&results);
        assert!(f9.contains("Telemetry"));
        let lat = latency_report(&results);
        assert!(lat.contains("yes (<2s)"));
    }

    #[test]
    fn csv_has_all_records() {
        let results = tiny_results();
        let csv = to_csv(&results);
        // Header + one line per record.
        assert_eq!(csv.lines().count(), results.records.len() + 1);
        assert!(csv.starts_with("query_id,model"));
    }

    #[test]
    fn fig8_points_token_monotone() {
        let results = tiny_results();
        let points = fig8_points(&results);
        assert_eq!(points.len(), 2); // Baseline + Full present
        let base = points
            .iter()
            .find(|p| p.strategy == RagStrategy::Baseline)
            .unwrap();
        let full = points
            .iter()
            .find(|p| p.strategy == RagStrategy::Full)
            .unwrap();
        assert!(full.tokens > base.tokens);
        assert!(full.score > base.score);
    }
}
