//! The experiment runner (§3 "Experimental Runs and Refine", §5.2).
//!
//! Runs the model × strategy × query matrix against the synthetic workflow
//! context: each query is sent three times (temperature 0 still varies
//! slightly), both judges score every response, and the per-query medians
//! feed the figures.

use crate::queryset::{golden_queries, GoldenQuery};
use crate::stats::median;
use crate::taxonomy::{DataType, Workload};
use agent_core::{ContextManager, PromptBuilder, RagStrategy};
use llm_sim::{ChatRequest, Judge, JudgeId, LlmServer, ModelId, SimLlmServer};
use prov_model::{sim_clock, TaskMessage};
use prov_stream::StreamingHub;
use std::sync::Arc;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Master seed (all randomness is keyed off it).
    pub seed: u64,
    /// Number of synthetic workflow input configurations (the paper uses
    /// 100 and observes identical results from 1 to 1000).
    pub n_inputs: usize,
    /// Repetitions per query (the paper uses 3 and takes medians).
    pub runs_per_query: usize,
}

impl Default for Experiment {
    fn default() -> Self {
        Self {
            seed: 42,
            n_inputs: 100,
            runs_per_query: 3,
        }
    }
}

/// One aggregated measurement: a (query, model, strategy, judge) cell.
#[derive(Debug, Clone)]
pub struct Record {
    /// Golden query id.
    pub query_id: String,
    /// Evaluated model.
    pub model: ModelId,
    /// Prompt+RAG strategy.
    pub strategy: RagStrategy,
    /// Scoring judge.
    pub judge: JudgeId,
    /// Data types of the query class.
    pub data_types: Vec<DataType>,
    /// Workload of the query class.
    pub workload: Workload,
    /// Median judge score over the runs.
    pub median_score: f64,
    /// Median total tokens (input + output) over the runs.
    pub median_tokens: f64,
    /// Median LLM latency (ms) over the runs.
    pub median_latency_ms: f64,
    /// The last generated output (for inspection).
    pub last_generation: String,
}

/// All measurements of one experiment.
#[derive(Debug, Clone, Default)]
pub struct EvalResults {
    /// Flat record list.
    pub records: Vec<Record>,
}

impl EvalResults {
    /// Records matching a predicate.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&Record) -> bool + 'a,
    ) -> impl Iterator<Item = &'a Record> {
        self.records.iter().filter(move |r| pred(r))
    }

    /// Scores of records matching a predicate.
    pub fn scores(&self, pred: impl Fn(&Record) -> bool) -> Vec<f64> {
        self.filter(pred).map(|r| r.median_score).collect()
    }
}

/// Provenance messages of one synthetic sweep (the corpus behind the
/// evaluation context, the persistent database, and the pushdown
/// differential tests).
pub fn synthetic_messages(experiment: &Experiment) -> Vec<TaskMessage> {
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    workflows::run_sweep(&hub, sim_clock(), experiment.seed, experiment.n_inputs)
        .expect("synthetic workflow executes");
    sub.drain().iter().map(|m| (**m).clone()).collect()
}

/// Build the evaluation context: run the synthetic sweep and ingest its
/// provenance into a fresh context manager.
pub fn build_synthetic_context(experiment: &Experiment) -> Arc<ContextManager> {
    let ctx = ContextManager::default_sized();
    ctx.ingest_all(&synthetic_messages(experiment));
    ctx
}

/// Build the persistent provenance database for the same sweep — the
/// historical-query backend the agent's `provdb_query` tool plans
/// against.
pub fn build_synthetic_db(experiment: &Experiment) -> Arc<prov_db::ProvenanceDatabase> {
    let db = prov_db::ProvenanceDatabase::shared();
    db.insert_batch(&synthetic_messages(experiment));
    db
}

/// Run the full matrix.
pub fn run_matrix(
    experiment: &Experiment,
    models: &[ModelId],
    strategies: &[RagStrategy],
    judges: &[Judge],
) -> EvalResults {
    let ctx = build_synthetic_context(experiment);
    run_matrix_on(
        experiment,
        &ctx,
        models,
        strategies,
        judges,
        &golden_queries(),
    )
}

/// Run the matrix against an existing context and query set (used by the
/// chemistry evaluation too).
pub fn run_matrix_on(
    experiment: &Experiment,
    ctx: &Arc<ContextManager>,
    models: &[ModelId],
    strategies: &[RagStrategy],
    judges: &[Judge],
    queries: &[GoldenQuery],
) -> EvalResults {
    let columns = ctx.columns();
    let mut results = EvalResults::default();
    for &model in models {
        let server = SimLlmServer::new(model);
        for &strategy in strategies {
            let system = PromptBuilder::system(strategy, ctx);
            for q in queries {
                let mut tokens = Vec::with_capacity(experiment.runs_per_query);
                let mut latencies = Vec::with_capacity(experiment.runs_per_query);
                let mut scores_per_judge: Vec<Vec<f64>> = vec![Vec::new(); judges.len()];
                let mut last_generation = String::new();
                for run in 0..experiment.runs_per_query {
                    let response = server.chat(&ChatRequest {
                        system: system.clone(),
                        user: q.question.to_string(),
                        temperature: 0.0,
                        run: run as u32,
                        seed: experiment.seed,
                    });
                    tokens.push(response.total_tokens() as f64);
                    latencies.push(response.latency_ms);
                    for (ji, judge) in judges.iter().enumerate() {
                        let verdict = judge.judge_query(
                            &response.text,
                            q.gold_code,
                            Some(&columns),
                            model,
                            llm_sim::Key::new(experiment.seed)
                                .with_str(q.id)
                                .with_u64(run as u64),
                        );
                        scores_per_judge[ji].push(verdict.score);
                    }
                    last_generation = response.text;
                }
                for (ji, judge) in judges.iter().enumerate() {
                    results.records.push(Record {
                        query_id: q.id.to_string(),
                        model,
                        strategy,
                        judge: judge.id,
                        data_types: q.class.data_types.clone(),
                        workload: q.class.workload,
                        median_score: median(&scores_per_judge[ji]),
                        median_tokens: median(&tokens),
                        median_latency_ms: median(&latencies),
                        last_generation: last_generation.clone(),
                    });
                }
            }
        }
    }
    results
}

/// Convenience: the full paper evaluation (5 models × Full strategy for
/// Figs 6–7; GPT across all strategies for Figs 8–9), sharing one context.
pub fn run_paper_evaluation(experiment: &Experiment) -> EvalResults {
    let ctx = build_synthetic_context(experiment);
    let judges = Judge::panel();
    let queries = golden_queries();
    let mut results = run_matrix_on(
        experiment,
        &ctx,
        &ModelId::all(),
        &[RagStrategy::Full],
        &judges,
        &queries,
    );
    let gpt_ablation = run_matrix_on(
        experiment,
        &ctx,
        &[ModelId::Gpt],
        &RagStrategy::evaluated(),
        &judges,
        &queries,
    );
    // Avoid duplicating the (GPT, Full) cell.
    results.records.extend(
        gpt_ablation
            .records
            .into_iter()
            .filter(|r| r.strategy != RagStrategy::Full),
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_experiment() -> Experiment {
        Experiment {
            seed: 42,
            n_inputs: 5,
            runs_per_query: 3,
        }
    }

    #[test]
    fn matrix_produces_expected_record_count() {
        let e = small_experiment();
        let results = run_matrix(
            &e,
            &[ModelId::Gpt, ModelId::Llama8B],
            &[RagStrategy::Full],
            &Judge::panel(),
        );
        // 2 models × 1 strategy × 20 queries × 2 judges.
        assert_eq!(results.records.len(), 80);
    }

    #[test]
    fn full_context_scores_separate_models() {
        let e = small_experiment();
        let results = run_matrix(
            &e,
            &[ModelId::Gpt, ModelId::Llama8B],
            &[RagStrategy::Full],
            &[Judge::new(JudgeId::Gpt)],
        );
        let gpt = crate::stats::mean(&results.scores(|r| r.model == ModelId::Gpt));
        let l8 = crate::stats::mean(&results.scores(|r| r.model == ModelId::Llama8B));
        assert!(gpt > 0.85, "GPT mean {gpt}");
        assert!(l8 < gpt, "LLaMA-8B ({l8}) should trail GPT ({gpt})");
    }

    #[test]
    fn strategy_ablation_is_monotone_ish() {
        let e = small_experiment();
        let results = run_matrix(
            &e,
            &[ModelId::Gpt],
            &[
                RagStrategy::Baseline,
                RagStrategy::BaselineFsSchema,
                RagStrategy::Full,
            ],
            &[Judge::new(JudgeId::Gpt)],
        );
        let score = |s: RagStrategy| crate::stats::mean(&results.scores(|r| r.strategy == s));
        let baseline = score(RagStrategy::Baseline);
        let schema = score(RagStrategy::BaselineFsSchema);
        let full = score(RagStrategy::Full);
        assert!(baseline < 0.4, "baseline {baseline}");
        assert!(schema > baseline, "schema {schema} vs baseline {baseline}");
        assert!(full > schema, "full {full} vs schema {schema}");
        assert!(full > 0.85, "full {full}");
    }

    #[test]
    fn deterministic_given_seed() {
        let e = small_experiment();
        let a = run_matrix(
            &e,
            &[ModelId::Gemini],
            &[RagStrategy::Full],
            &Judge::panel(),
        );
        let b = run_matrix(
            &e,
            &[ModelId::Gemini],
            &[RagStrategy::Full],
            &Judge::panel(),
        );
        let sa: Vec<f64> = a.records.iter().map(|r| r.median_score).collect();
        let sb: Vec<f64> = b.records.iter().map(|r| r.median_score).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn tokens_grow_with_strategy() {
        let e = small_experiment();
        let results = run_matrix(
            &e,
            &[ModelId::Gpt],
            &[RagStrategy::Baseline, RagStrategy::Full],
            &[Judge::new(JudgeId::Gpt)],
        );
        let t = |s: RagStrategy| {
            crate::stats::mean(
                &results
                    .filter(|r| r.strategy == s)
                    .map(|r| r.median_tokens)
                    .collect::<Vec<_>>(),
            )
        };
        let baseline = t(RagStrategy::Baseline);
        let full = t(RagStrategy::Full);
        assert!(
            full > baseline * 3.0,
            "full {full} should dwarf baseline {baseline}"
        );
    }
}
