//! Adaptive per-class LLM routing (§5.2/§5.4/§6 future work, implemented).
//!
//! "These findings suggest that no single model performs best across all
//! workloads and data types, motivating future research on dynamic LLM
//! routing based on query classes." This module provides that router and
//! the harness to evaluate it:
//!
//! * [`predict_class`] — a rule-based query-class predictor (workload +
//!   data types) from the question text alone, mirroring the Tool Router's
//!   rule-based layer;
//! * [`RoutingPolicy`] — learned from one evaluation run ([`EvalResults`]):
//!   per (workload, data type) cell it remembers each model's mean score
//!   and routes new queries to the argmax;
//! * [`evaluate_routing`] — trains the policy on one seed and evaluates it
//!   on another, reporting routed vs. every fixed-model baseline and the
//!   per-query oracle upper bound.

use crate::queryset::golden_queries;
use crate::runner::{run_matrix, EvalResults, Experiment};
use crate::stats::mean;
use crate::taxonomy::{DataType, Workload};
use agent_core::RagStrategy;
use llm_sim::{Judge, JudgeId, ModelId};
use std::collections::BTreeMap;

/// Predict the query class (workload + data types) from the question text.
///
/// This is deliberately rule-based and transparent (the same trade-off the
/// paper makes for the Tool Router's first layer): aggregation/grouping
/// phrasing marks OLAP, targeted-lookup phrasing marks OLTP, and data
/// types are keyword votes. Multi-label like the golden set: up to two
/// data types are returned, strongest first.
pub fn predict_class(question: &str) -> (Workload, Vec<DataType>) {
    let q = question.to_lowercase();
    let has = |s: &str| q.contains(s);

    // ---- workload ------------------------------------------------------
    let mut olap = 0i32;
    let mut oltp = 0i32;
    for marker in [
        " per ",
        "each ",
        "average duration",
        "average memory",
        "mean ",
        "total ",
        "slowest",
        "distribution",
        "rank",
        "overall",
        "span of the workflow",
    ] {
        if has(marker) {
            olap += 2;
        }
    }
    for marker in [
        "average",
        "how many tasks consumed",
        "largest",
        "highest total",
    ] {
        if has(marker) {
            olap += 1;
        }
    }
    for marker in [
        "which task ",
        "what exponent",
        "show the tasks",
        "on which host did",
        "which tasks started",
        "what was the",
        "did the task",
        "have finished",
        "failed",
    ] {
        if has(marker) {
            oltp += 2;
        }
    }
    for marker in ["what is the final", "how much", "list the distinct"] {
        if has(marker) {
            oltp += 1;
        }
    }
    let workload = if olap > oltp {
        Workload::Olap
    } else {
        Workload::Oltp
    };

    // ---- data types ------------------------------------------------------
    let mut votes: BTreeMap<DataType, i32> = BTreeMap::new();
    let mut vote = |dt: DataType, n: i32| *votes.entry(dt).or_insert(0) += n;
    for marker in [
        "cpu",
        "gpu",
        "memory",
        "utilization",
        "duration",
        "slowest",
        "how long",
        "take?",
        "usage",
    ] {
        if has(marker) {
            vote(DataType::Telemetry, 2);
        }
    }
    for marker in [
        "host",
        "ran on",
        "where",
        "node",
        "started after",
        "time span",
        "started",
        "ended",
    ] {
        if has(marker) {
            vote(DataType::Scheduling, 2);
        }
    }
    for marker in [
        "output",
        "produced",
        "exponent",
        "value",
        "input",
        "parameter",
        "consumed",
        "field",
    ] {
        if has(marker) {
            vote(DataType::Dataflow, 2);
        }
    }
    for marker in [
        "finished",
        "failed",
        "how many tasks",
        "workflow run",
        "distinct activities",
        "depends",
        "order",
    ] {
        if has(marker) {
            vote(DataType::ControlFlow, 2);
        }
    }
    let mut ranked: Vec<(DataType, i32)> = votes.into_iter().filter(|(_, v)| *v > 0).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let data_types: Vec<DataType> = ranked.into_iter().take(2).map(|(d, _)| d).collect();
    if data_types.is_empty() {
        (workload, vec![DataType::ControlFlow])
    } else {
        (workload, data_types)
    }
}

/// A routing policy learned from evaluation records.
#[derive(Debug, Clone)]
pub struct RoutingPolicy {
    /// Mean score per (workload, data type, model) cell.
    pub cell_scores: BTreeMap<(Workload, DataType), Vec<(ModelId, f64)>>,
    /// Fallback when a class was never observed.
    pub global_best: ModelId,
    /// Judge whose scores the policy was trained on.
    pub judge: JudgeId,
}

impl RoutingPolicy {
    /// Learn from Full-context records scored by `judge`. Records with
    /// several data types contribute to each matching cell.
    pub fn learn(results: &EvalResults, judge: JudgeId) -> Self {
        let mut acc: BTreeMap<(Workload, DataType, ModelId), Vec<f64>> = BTreeMap::new();
        let mut overall: BTreeMap<ModelId, Vec<f64>> = BTreeMap::new();
        for r in results
            .records
            .iter()
            .filter(|r| r.judge == judge && r.strategy == RagStrategy::Full)
        {
            overall.entry(r.model).or_default().push(r.median_score);
            for &dt in &r.data_types {
                acc.entry((r.workload, dt, r.model))
                    .or_default()
                    .push(r.median_score);
            }
        }
        let mut cell_scores: BTreeMap<(Workload, DataType), Vec<(ModelId, f64)>> = BTreeMap::new();
        for ((w, dt, m), scores) in acc {
            cell_scores
                .entry((w, dt))
                .or_default()
                .push((m, mean(&scores)));
        }
        for models in cell_scores.values_mut() {
            models.sort_by(|a, b| b.1.total_cmp(&a.1));
        }
        let global_best = overall
            .iter()
            .max_by(|a, b| mean(a.1).total_cmp(&mean(b.1)))
            .map(|(m, _)| *m)
            .unwrap_or(ModelId::Gpt);
        Self {
            cell_scores,
            global_best,
            judge,
        }
    }

    /// Route a query class: average each model's cell means across the
    /// query's (workload, data type) cells and take the argmax.
    pub fn pick(&self, workload: Workload, data_types: &[DataType]) -> ModelId {
        let mut sums: BTreeMap<ModelId, (f64, usize)> = BTreeMap::new();
        for &dt in data_types {
            if let Some(cell) = self.cell_scores.get(&(workload, dt)) {
                for (m, s) in cell {
                    let e = sums.entry(*m).or_insert((0.0, 0));
                    e.0 += s;
                    e.1 += 1;
                }
            }
        }
        sums.into_iter()
            .filter(|(_, (_, n))| *n > 0)
            .max_by(|a, b| (a.1 .0 / a.1 .1 as f64).total_cmp(&(b.1 .0 / b.1 .1 as f64)))
            .map(|(m, _)| m)
            .unwrap_or(self.global_best)
    }

    /// Route from the question text alone (class predicted first).
    pub fn route_question(&self, question: &str) -> ModelId {
        let (w, dts) = predict_class(question);
        self.pick(w, &dts)
    }

    /// Render the learned per-class preferences.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Routing policy (judge: {}; fallback: {}):\n",
            self.judge.name(),
            self.global_best
        );
        for ((w, dt), models) in &self.cell_scores {
            let ranked: Vec<String> = models.iter().map(|(m, s)| format!("{m} {s:.3}")).collect();
            out.push_str(&format!("  {w} / {dt}: {}\n", ranked.join(" > ")));
        }
        out
    }
}

/// Outcome of the train-on-one-seed / test-on-another routing experiment.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// Mean test-set score of each fixed single-model deployment.
    pub fixed: Vec<(ModelId, f64)>,
    /// Mean test-set score when each query goes to the routed model.
    pub routed: f64,
    /// Per-query oracle (always the best model for that query) — the
    /// router's upper bound.
    pub oracle: f64,
    /// Chosen model per query id.
    pub assignments: Vec<(String, ModelId)>,
    /// The learned policy.
    pub policy: RoutingPolicy,
}

impl RoutingOutcome {
    /// Best fixed single-model mean.
    pub fn best_fixed(&self) -> (ModelId, f64) {
        self.fixed
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one model")
    }

    /// Render the §5.4-style routing comparison table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Adaptive LLM routing (train seed != test seed, Full context):\n\n");
        out.push_str(&format!("{:<24} {:>12}\n", "deployment", "mean score"));
        for (m, s) in &self.fixed {
            out.push_str(&format!("{:<24} {:>12.3}\n", format!("fixed: {m}"), s));
        }
        out.push_str(&format!(
            "{:<24} {:>12.3}\n",
            "routed (per class)", self.routed
        ));
        out.push_str(&format!(
            "{:<24} {:>12.3}\n",
            "oracle (per query)", self.oracle
        ));
        let (bm, bs) = self.best_fixed();
        out.push_str(&format!(
            "\nrouted - best fixed ({bm}): {:+.3}; oracle headroom: {:+.3}\n",
            self.routed - bs,
            self.oracle - self.routed
        ));
        let mut counts: BTreeMap<ModelId, usize> = BTreeMap::new();
        for (_, m) in &self.assignments {
            *counts.entry(*m).or_insert(0) += 1;
        }
        let mix: Vec<String> = counts.iter().map(|(m, n)| format!("{m} x{n}")).collect();
        out.push_str(&format!("assignment mix: {}\n", mix.join(", ")));
        out
    }
}

/// Train a routing policy on `train` and evaluate on `test` (different
/// seeds), scoring with `judge`. All five models run the Full strategy on
/// both seeds; the routed deployment answers each test query with the
/// model the policy picks from the *question text alone*.
pub fn evaluate_routing(train: &Experiment, test: &Experiment, judge: JudgeId) -> RoutingOutcome {
    let judges = [Judge::new(judge)];
    let train_results = run_matrix(train, &ModelId::all(), &[RagStrategy::Full], &judges);
    let policy = RoutingPolicy::learn(&train_results, judge);

    let test_results = run_matrix(test, &ModelId::all(), &[RagStrategy::Full], &judges);
    let queries = golden_queries();

    let mut fixed = Vec::new();
    for m in ModelId::all() {
        let scores = test_results.scores(|r| r.model == m);
        fixed.push((m, mean(&scores)));
    }

    let mut routed_scores = Vec::with_capacity(queries.len());
    let mut oracle_scores = Vec::with_capacity(queries.len());
    let mut assignments = Vec::with_capacity(queries.len());
    for q in &queries {
        let routed_model = policy.route_question(q.question);
        let score_of = |m: ModelId| {
            test_results
                .records
                .iter()
                .find(|r| r.query_id == q.id && r.model == m)
                .map(|r| r.median_score)
                .unwrap_or(0.0)
        };
        routed_scores.push(score_of(routed_model));
        oracle_scores.push(
            ModelId::all()
                .iter()
                .map(|&m| score_of(m))
                .fold(f64::NEG_INFINITY, f64::max),
        );
        assignments.push((q.id.to_string(), routed_model));
    }

    RoutingOutcome {
        fixed,
        routed: mean(&routed_scores),
        oracle: mean(&oracle_scores),
        assignments,
        policy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predictor_matches_golden_labels() {
        let queries = golden_queries();
        let mut workload_hits = 0usize;
        let mut type_overlap = 0usize;
        for q in &queries {
            let (w, dts) = predict_class(q.question);
            if w == q.class.workload {
                workload_hits += 1;
            }
            if dts.iter().any(|d| q.class.data_types.contains(d)) {
                type_overlap += 1;
            }
        }
        // The rule-based predictor does not need to be perfect — only good
        // enough that routing decisions land in the right cells.
        assert!(
            workload_hits >= 14,
            "workload accuracy {workload_hits}/20 below threshold"
        );
        assert!(
            type_overlap >= 16,
            "data-type overlap {type_overlap}/20 below threshold"
        );
    }

    #[test]
    fn policy_learns_per_class_argmax() {
        let e = Experiment {
            seed: 42,
            n_inputs: 5,
            runs_per_query: 3,
        };
        let results = run_matrix(
            &e,
            &ModelId::all(),
            &[RagStrategy::Full],
            &[Judge::new(JudgeId::Gpt)],
        );
        let policy = RoutingPolicy::learn(&results, JudgeId::Gpt);
        assert!(!policy.cell_scores.is_empty());
        // The frontier models should dominate the policy's choices.
        let picks: Vec<ModelId> = policy
            .cell_scores
            .keys()
            .map(|&(w, dt)| policy.pick(w, &[dt]))
            .collect();
        let frontier = picks
            .iter()
            .filter(|m| matches!(m, ModelId::Gpt | ModelId::Claude))
            .count();
        assert!(
            frontier * 2 >= picks.len(),
            "frontier models should win most cells: {picks:?}"
        );
        // Unknown class falls back to the global best.
        assert!(matches!(policy.global_best, ModelId::Gpt | ModelId::Claude));
    }

    #[test]
    fn routed_deployment_competitive_with_best_fixed() {
        let train = Experiment {
            seed: 42,
            n_inputs: 5,
            runs_per_query: 3,
        };
        let test = Experiment {
            seed: 1337,
            n_inputs: 5,
            runs_per_query: 3,
        };
        let outcome = evaluate_routing(&train, &test, JudgeId::Gpt);
        let (_, best_fixed) = outcome.best_fixed();
        // Oracle bounds routed from above; routed must not collapse below
        // the best fixed deployment (that would mean routing hurts).
        assert!(outcome.oracle + 1e-9 >= outcome.routed);
        assert!(
            outcome.routed >= best_fixed - 0.02,
            "routed {} vs best fixed {}",
            outcome.routed,
            best_fixed
        );
        // Routing must beat the weakest deployment by a wide margin.
        let worst = outcome
            .fixed
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min);
        assert!(outcome.routed > worst + 0.02);
        assert_eq!(outcome.assignments.len(), 20);
        let rendered = outcome.render();
        assert!(rendered.contains("routed"), "{rendered}");
        assert!(rendered.contains("oracle"), "{rendered}");
    }

    #[test]
    fn policy_render_lists_cells() {
        let e = Experiment {
            seed: 42,
            n_inputs: 3,
            runs_per_query: 1,
        };
        let results = run_matrix(
            &e,
            &[ModelId::Gpt, ModelId::Llama8B],
            &[RagStrategy::Full],
            &[Judge::new(JudgeId::Gpt)],
        );
        let policy = RoutingPolicy::learn(&results, JudgeId::Gpt);
        let s = policy.render();
        assert!(s.contains("OLAP") && s.contains("OLTP"));
        assert!(s.contains("GPT"));
    }
}
