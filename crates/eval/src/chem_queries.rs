//! The §5.3 live-interaction study: ten natural-language questions asked
//! against the running chemistry workflow, with the paper's documented
//! outcomes (Q5 and Q8 incorrect, Q3 correct-with-unit-error, the rest
//! correct with noted presentation caveats).

use agent_core::{AgentConfig, ContextManager, ProvenanceAgent, RagStrategy};
use llm_sim::{ModelId, SimLlmServer};
use prov_model::{sim_clock, TaskMessage};
use prov_stream::StreamingHub;
use std::sync::Arc;

/// Expected outcome of a demo question, as reported in §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Fully correct.
    Correct,
    /// Correct with a caveat (verbose table, missing unit/label, ...).
    CorrectWithCaveat(&'static str),
    /// Incorrect.
    Incorrect(&'static str),
}

/// One demo question.
#[derive(Debug, Clone)]
pub struct ChemQuery {
    /// Paper id (Q1…Q10).
    pub id: &'static str,
    /// The question, verbatim from §5.3.
    pub question: &'static str,
    /// The paper's reported outcome.
    pub expected: Expected,
}

/// The ten §5.3 questions.
pub fn chem_queries() -> Vec<ChemQuery> {
    use Expected::*;
    vec![
        ChemQuery {
            id: "Q1",
            question: "Which bond has the highest dissociation free energy?",
            expected: Correct,
        },
        ChemQuery {
            id: "Q2",
            question: "What functional was used for the calculations?",
            expected: CorrectWithCaveat("tabular result repeats the value across calculations"),
        },
        ChemQuery {
            id: "Q3",
            question: "What is the lowest energy bond enthalpy?",
            expected: CorrectWithCaveat("wrong unit (kJ/mol) and missing bond id"),
        },
        ChemQuery {
            id: "Q4",
            question: "What is the number of atoms in this molecule?",
            expected: CorrectWithCaveat("atom counts not clearly associated with molecule labels"),
        },
        ChemQuery {
            id: "Q5",
            question: "What is the number of atoms in the parent molecule?",
            expected: Incorrect("summed atom counts across all molecules (81 instead of 9)"),
        },
        ChemQuery {
            id: "Q6",
            question: "What are the multiplicity and charge of the parent?",
            expected: Correct,
        },
        ChemQuery {
            id: "Q7",
            question: "Plot a bar graph displaying the bond dissociation enthalpy for each bond label.",
            expected: Correct,
        },
        ChemQuery {
            id: "Q8",
            question: "For this molecule, please plot a bar graph displaying the bond dissociation enthalpy with averaged C-H values.",
            expected: Incorrect("failed to group C-H bonds and average before plotting"),
        },
        ChemQuery {
            id: "Q9",
            question: "What is the average bond dissociation enthalpy for the bond labels that contain 'C-H'?",
            expected: Correct,
        },
        ChemQuery {
            id: "Q10",
            question: "What is the multiplicity and charge of any fragment?",
            expected: Correct,
        },
    ]
}

/// The observed outcome of one question in the live demo.
#[derive(Debug)]
pub struct ChemObservation {
    /// Question id.
    pub id: &'static str,
    /// The question asked.
    pub question: &'static str,
    /// Paper-reported outcome.
    pub expected: Expected,
    /// Generated query code (when any).
    pub code: Option<String>,
    /// Agent answer text.
    pub answer: String,
    /// Rendered chart, when the question produced one.
    pub chart: Option<String>,
    /// Whether our agent's behavior matches the paper's report.
    pub matches_paper: bool,
    /// Note explaining the verdict.
    pub note: String,
}

/// Run the chemistry workflow (ethanol on simulated Frontier) and put the
/// ten questions to a GPT-4-backed agent, checking each observation
/// against the §5.3 report.
pub fn run_chem_demo(seed: u64) -> Vec<ChemObservation> {
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    workflows::run_bde_workflow(&hub, sim_clock(), seed, "CCO", 2)
        .expect("chemistry workflow executes");
    let msgs: Vec<TaskMessage> = sub.drain().iter().map(|m| (**m).clone()).collect();
    let ctx = ContextManager::default_sized();
    ctx.ingest_all(&msgs);
    run_chem_demo_on(ctx, hub, seed)
}

/// Run the demo against an existing context (e.g. shared with an example).
pub fn run_chem_demo_on(
    ctx: Arc<ContextManager>,
    hub: StreamingHub,
    seed: u64,
) -> Vec<ChemObservation> {
    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        None,
        sim_clock(),
        AgentConfig {
            strategy: RagStrategy::Full,
            seed,
            ..AgentConfig::default()
        },
    );
    chem_queries()
        .into_iter()
        .map(|q| {
            let reply = agent.chat(q.question);
            let (matches_paper, note) = check(&q, &reply);
            ChemObservation {
                id: q.id,
                question: q.question,
                expected: q.expected,
                code: reply.code,
                answer: reply.text,
                chart: reply.chart.map(|c| c.render_ascii(40)),
                matches_paper,
                note,
            }
        })
        .collect()
}

/// Verify one observation against the paper's reported behavior.
fn check(q: &ChemQuery, reply: &agent_core::AgentReply) -> (bool, String) {
    match q.id {
        // Q1: correct bond (O-H) with correct unit inference.
        "Q1" => {
            let ok = reply.text.contains("O-H") && reply.error.is_none();
            (ok, format!("answer names the O-H bond: {ok}"))
        }
        // Q2: correct functional, presented as a (repetitive) table.
        "Q2" => {
            let table_ok = reply
                .table
                .as_ref()
                .is_some_and(|t| t.len() > 1 && t.has_column("functional"));
            (
                table_ok,
                format!("B3LYP table with repeated rows: {table_ok}"),
            )
        }
        // Q3: correct value, but unit mislabeled kJ/mol and no bond id.
        "Q3" => {
            let unit_slip = reply.text.contains("kJ/mol");
            let no_bond = !reply.text.contains("C-C");
            (
                unit_slip && no_bond,
                format!("kJ/mol slip: {unit_slip}, bond id omitted: {no_bond}"),
            )
        }
        // Q4: per-molecule atom counts in a table.
        "Q4" => {
            let ok = reply
                .table
                .as_ref()
                .is_some_and(|t| t.has_column("n_atoms") && t.len() > 1);
            (ok, format!("atom counts across molecules: {ok}"))
        }
        // Q5: the sum trap — 81 instead of 9.
        "Q5" => {
            let ok = reply.text.contains("81");
            (ok, format!("returned the incorrect 81 total: {ok}"))
        }
        // Q6: multiplicity 1, charge 0, with singlet/neutral terminology.
        "Q6" => {
            let ok = reply.text.contains("singlet") && reply.text.contains("neutral");
            (ok, format!("enriched with singlet/neutral terms: {ok}"))
        }
        // Q7: a bar chart with one bar per bond label.
        "Q7" => {
            let ok = reply.chart.as_ref().is_some_and(|c| c.len() == 8);
            (ok, format!("bar per bond label (8): {ok}"))
        }
        // Q8: plot produced but WITHOUT grouped/averaged C-H bars.
        "Q8" => {
            let wrong = match &reply.chart {
                // Correct would be 4 bars (C-C, C-H averaged, C-O, O-H).
                Some(c) => c.len() != 4,
                None => true,
            };
            (
                wrong,
                format!("failed to average C-H before plotting: {wrong}"),
            )
        }
        // Q9: the average over the five C-H bonds, ~98-102 kcal/mol.
        "Q9" => {
            let ok = reply.error.is_none()
                && reply
                    .code
                    .as_deref()
                    .is_some_and(|c| c.contains("C-H") && c.contains("mean"));
            (ok, format!("mean over C-H bonds computed: {ok}"))
        }
        // Q10: fragment doublet retrieved, without extra terminology.
        "Q10" => {
            let ok = reply.error.is_none()
                && !reply.text.contains("singlet")
                && reply
                    .code
                    .as_deref()
                    .is_some_and(|c| c.contains("fragment"));
            (ok, format!("fragment spin/charge without enrichment: {ok}"))
        }
        _ => (false, "unknown question".to_string()),
    }
}

/// Render the demo as a report table.
pub fn render_demo(observations: &[ChemObservation]) -> String {
    let mut out = String::new();
    out.push_str("§5.3 Live interaction with the chemistry workflow (ethanol, GPT-4 agent)\n\n");
    let mut matched = 0;
    for o in observations {
        let status = match o.expected {
            Expected::Correct => "correct".to_string(),
            Expected::CorrectWithCaveat(c) => format!("correct, but {c}"),
            Expected::Incorrect(c) => format!("incorrect: {c}"),
        };
        out.push_str(&format!("{}: {}\n", o.id, o.question));
        out.push_str(&format!("  paper outcome : {status}\n"));
        if let Some(code) = &o.code {
            out.push_str(&format!("  generated     : {code}\n"));
        }
        out.push_str(&format!(
            "  agent answer  : {}\n",
            o.answer.lines().next().unwrap_or("")
        ));
        out.push_str(&format!(
            "  reproduces paper behaviour: {}  ({})\n\n",
            if o.matches_paper { "yes" } else { "NO" },
            o.note
        ));
        if o.matches_paper {
            matched += 1;
        }
    }
    out.push_str(&format!(
        "{matched}/{} behaviours reproduced; fully/partially correct answers: >80% as reported.\n",
        observations.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_reproduces_paper_outcomes() {
        let obs = run_chem_demo(7);
        assert_eq!(obs.len(), 10);
        for o in &obs {
            assert!(
                o.matches_paper,
                "{} failed to reproduce the paper: {} (answer: {}, code: {:?})",
                o.id, o.note, o.answer, o.code
            );
        }
    }

    #[test]
    fn q5_returns_81() {
        let obs = run_chem_demo(7);
        let q5 = obs.iter().find(|o| o.id == "Q5").unwrap();
        assert!(q5.answer.contains("81"), "Q5 answer: {}", q5.answer);
    }

    #[test]
    fn report_renders() {
        let obs = run_chem_demo(7);
        let text = render_demo(&obs);
        assert!(text.contains("Q1:"));
        assert!(text.contains("10/10 behaviours reproduced"));
    }
}
