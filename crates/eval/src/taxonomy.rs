//! The workflow provenance query-characteristics taxonomy (Fig 1).
//!
//! Leaves of the taxonomy define the query classes of the methodology:
//! what data (control flow / dataflow / scheduling / telemetry), when
//! (offline/online), who (human/AI), and how (scope, workload type,
//! provenance type).

/// Provenance data type touched by a query (the "What Data" dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Task dependencies and execution order.
    ControlFlow,
    /// How inputs/outputs connect and transform across tasks.
    Dataflow,
    /// Where tasks executed (hosts, placement, timestamps).
    Scheduling,
    /// Performance metrics: CPU/GPU/memory/execution times.
    Telemetry,
}

impl DataType {
    /// All data types in Table 1 order.
    pub fn all() -> [DataType; 4] {
        [
            DataType::ControlFlow,
            DataType::Dataflow,
            DataType::Scheduling,
            DataType::Telemetry,
        ]
    }

    /// Table/figure label.
    pub fn name(self) -> &'static str {
        match self {
            DataType::ControlFlow => "Control Flow",
            DataType::Dataflow => "Dataflow",
            DataType::Scheduling => "Scheduling",
            DataType::Telemetry => "Telemetry",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Query workload type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// Analytical: aggregation, exploration, monitoring.
    Olap,
    /// Transactional: fast targeted lookups.
    Oltp,
}

impl Workload {
    /// Both workloads.
    pub fn all() -> [Workload; 2] {
        [Workload::Olap, Workload::Oltp]
    }

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Olap => "OLAP",
            Workload::Oltp => "OLTP",
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Query scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryScope {
    /// Filter specific tasks or fields.
    Targeted,
    /// Multi-step dependency / causal-chain analysis.
    GraphTraversal,
}

/// When the analysis happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// During workflow execution (the paper's evaluation focus).
    Online,
    /// After workflow completion.
    Offline,
}

/// Who issues/consumes the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Actor {
    /// A human scientist.
    Human,
    /// An AI agent.
    Ai,
}

/// Provenance nature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProvType {
    /// Records of actual execution.
    Retrospective,
    /// Planned workflow structure.
    Prospective,
}

/// A full query-class annotation (taxonomy leaves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryClass {
    /// One or more data types (totals in Table 1 exceed the query count
    /// because some queries touch several).
    pub data_types: Vec<DataType>,
    /// Workload type.
    pub workload: Workload,
    /// Scope.
    pub scope: QueryScope,
    /// Mode.
    pub mode: Mode,
    /// Actor.
    pub actor: Actor,
    /// Provenance type.
    pub prov_type: ProvType,
}

impl QueryClass {
    /// The evaluation default: online, human-issued, retrospective,
    /// targeted (§5.2 scopes the study to online retrospective queries).
    pub fn online(data_types: &[DataType], workload: Workload) -> QueryClass {
        QueryClass {
            data_types: data_types.to_vec(),
            workload,
            scope: QueryScope::Targeted,
            mode: Mode::Online,
            actor: Actor::Human,
            prov_type: ProvType::Retrospective,
        }
    }

    /// Same, but graph-traversal scoped.
    pub fn online_graph(data_types: &[DataType], workload: Workload) -> QueryClass {
        QueryClass {
            scope: QueryScope::GraphTraversal,
            ..QueryClass::online(data_types, workload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(DataType::ControlFlow.name(), "Control Flow");
        assert_eq!(Workload::Olap.to_string(), "OLAP");
        assert_eq!(DataType::all().len(), 4);
    }

    #[test]
    fn default_class_matches_evaluation_scope() {
        let c = QueryClass::online(&[DataType::Telemetry], Workload::Oltp);
        assert_eq!(c.mode, Mode::Online);
        assert_eq!(c.prov_type, ProvType::Retrospective);
        assert_eq!(c.actor, Actor::Human);
        let g = QueryClass::online_graph(&[DataType::Dataflow], Workload::Olap);
        assert_eq!(g.scope, QueryScope::GraphTraversal);
    }
}
