//! Live-interaction study for the third domain (§5.4): the §5.3
//! methodology — natural-language questions against a *running* workflow,
//! each with a documented expected outcome — applied to the
//! additive-manufacturing fleet. The paper reports the agent "generalized
//! effectively to a more complex real-world use case without requiring
//! additional domain-specific prompt engineering" and answered over 80%
//! of questions fully or partially correctly; this study checks the same
//! bar on the AM workflow, including the characteristic failure modes
//! (count scoping, grouping by a dimension the schema has no convention
//! for).

use crate::chem_queries::Expected;
use agent_core::{AgentConfig, ContextManager, ProvenanceAgent, RagStrategy};
use llm_sim::{ModelId, SimLlmServer};
use prov_model::{sim_clock, TaskMessage};
use prov_stream::StreamingHub;
use workflows::AmRun;

/// One AM demo question.
#[derive(Debug, Clone)]
pub struct AmQuery {
    /// Study id (A1…A10).
    pub id: &'static str,
    /// The question.
    pub question: &'static str,
    /// Expected outcome.
    pub expected: Expected,
}

/// The ten AM questions (same size as the §5.3 chemistry study).
pub fn am_queries() -> Vec<AmQuery> {
    use Expected::*;
    vec![
        AmQuery {
            id: "A1",
            question: "How many laser_scan tasks have finished so far?",
            expected: Correct,
        },
        AmQuery {
            id: "A2",
            question: "What is the average energy_density_j_mm3 of the laser_scan tasks?",
            expected: Correct,
        },
        AmQuery {
            id: "A3",
            question: "Which task produced the largest melt_pool_temp_c?",
            expected: CorrectWithCaveat(
                "the extreme row is retrieved but the summary does not surface the part id",
            ),
        },
        AmQuery {
            id: "A4",
            question: "What is the average melt_pool_width_um per activity?",
            expected: CorrectWithCaveat(
                "only laser_scan measures the melt pool, so most activity rows are null",
            ),
        },
        AmQuery {
            id: "A5",
            question: "How many parts were qualified?",
            expected: Incorrect(
                "counts every captured task: 'parts' is not an activity and 'qualified' is a \
                 generated flag with no counting convention",
            ),
        },
        AmQuery {
            id: "A6",
            question: "What is the average porosity_pct of the detect_porosity tasks?",
            expected: Correct,
        },
        AmQuery {
            id: "A7",
            question: "Plot a bar graph of the average melt_pool_temp_c for each layer.",
            expected: Incorrect(
                "groups by activity instead of layer — no grouping convention exists for a \
                 domain dimension (the Q8-style plot failure)",
            ),
        },
        AmQuery {
            id: "A8",
            question: "What is the total layer_time_s of the laser_scan tasks?",
            expected: Correct,
        },
        AmQuery {
            id: "A9",
            question: "Show the 3 slowest tasks with their activity and host.",
            expected: Correct,
        },
        AmQuery {
            id: "A10",
            question: "What is the average spatter_events of the laser_scan tasks?",
            expected: Correct,
        },
    ]
}

/// The observed outcome of one AM question.
#[derive(Debug)]
pub struct AmObservation {
    /// Question id.
    pub id: &'static str,
    /// The question.
    pub question: &'static str,
    /// Expected outcome.
    pub expected: Expected,
    /// Generated code, when any.
    pub code: Option<String>,
    /// Agent answer.
    pub answer: String,
    /// Whether the behaviour matches the expectation.
    pub matches: bool,
    /// Verdict note.
    pub note: String,
}

/// Ground truths derived from the fleet results.
struct Truth {
    scan_tasks: usize,
    total_tasks: usize,
    mean_porosity: f64,
}

/// Run the AM fleet and put the ten questions to a GPT-4-backed agent.
pub fn run_am_demo(seed: u64, n_parts: usize) -> Vec<AmObservation> {
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    let runs: Vec<AmRun> =
        workflows::run_am_fleet(&hub, sim_clock(), seed, n_parts).expect("fleet builds");
    let msgs: Vec<TaskMessage> = sub.drain().iter().map(|m| (**m).clone()).collect();
    let ctx = ContextManager::default_sized();
    ctx.ingest_all(&msgs);
    let truth = Truth {
        scan_tasks: runs.iter().map(|r| r.n_layers).sum(),
        total_tasks: msgs.len(),
        mean_porosity: runs.iter().map(|r| r.porosity_pct).sum::<f64>() / runs.len() as f64,
    };
    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        None,
        sim_clock(),
        AgentConfig {
            strategy: RagStrategy::Full,
            seed,
            ..AgentConfig::default()
        },
    );
    am_queries()
        .into_iter()
        .map(|q| {
            let reply = agent.chat(q.question);
            let (matches, note) = check(&q, &reply, &truth);
            AmObservation {
                id: q.id,
                question: q.question,
                expected: q.expected,
                code: reply.code,
                answer: reply.text,
                matches,
                note,
            }
        })
        .collect()
}

fn check(q: &AmQuery, reply: &agent_core::AgentReply, truth: &Truth) -> (bool, String) {
    match q.id {
        "A1" => {
            let ok = reply.error.is_none() && reply.text.contains(&truth.scan_tasks.to_string());
            (
                ok,
                format!("counted the {} laser_scan tasks: {ok}", truth.scan_tasks),
            )
        }
        "A2" => {
            let code_ok = reply
                .code
                .as_deref()
                .is_some_and(|c| c.contains("energy_density_j_mm3") && c.contains("laser_scan"));
            let ok = code_ok && reply.error.is_none() && reply.text.contains("J/mm³");
            (
                ok,
                format!("field + activity resolved, unit from suffix: {ok}"),
            )
        }
        "A3" => {
            let ok = reply
                .code
                .as_deref()
                .is_some_and(|c| c.contains(r#"df["melt_pool_temp_c"].idxmax()"#))
                && reply.error.is_none();
            (
                ok,
                format!("extreme-row retrieval on the named field: {ok}"),
            )
        }
        "A4" => {
            let ok = reply.code.as_deref().is_some_and(|c| {
                c.contains(r#"groupby("activity_id")"#) && c.contains("melt_pool_width_um")
            }) && reply.error.is_none();
            (
                ok,
                format!("per-activity aggregate over the named field: {ok}"),
            )
        }
        "A5" => {
            // The documented failure: it counts all tasks, not parts.
            let wrong_total = reply.text.contains(&truth.total_tasks.to_string());
            (
                wrong_total,
                format!(
                    "returned the whole buffer count ({}) instead of qualified parts: {wrong_total}",
                    truth.total_tasks
                ),
            )
        }
        "A6" => {
            let value_ok = reply.error.is_none()
                && reply.text.contains(&format!("{:.4}", truth.mean_porosity));
            (
                value_ok,
                format!(
                    "mean porosity {:.4}% reproduced: {value_ok}",
                    truth.mean_porosity
                ),
            )
        }
        "A7" => {
            // The documented failure: grouped by activity, not by layer.
            let grouped_wrong = reply
                .code
                .as_deref()
                .is_some_and(|c| c.contains(r#"groupby("activity_id")"#) && !c.contains("layer\""));
            (
                grouped_wrong,
                format!("grouped by activity instead of layer: {grouped_wrong}"),
            )
        }
        "A8" => {
            let ok = reply
                .code
                .as_deref()
                .is_some_and(|c| c.contains("layer_time_s") && c.contains(".sum()"))
                && reply.error.is_none();
            (ok, format!("sum over the named field: {ok}"))
        }
        "A9" => {
            let ok = reply
                .code
                .as_deref()
                .is_some_and(|c| c.contains("sort_values") && c.contains(".head(3)"))
                && reply.error.is_none();
            (ok, format!("top-3 by duration with projection: {ok}"))
        }
        "A10" => {
            let ok = reply
                .code
                .as_deref()
                .is_some_and(|c| c.contains("spatter_events") && c.contains("laser_scan"))
                && reply.error.is_none();
            (ok, format!("named-field mean over the scan tasks: {ok}"))
        }
        _ => (false, "unknown question".to_string()),
    }
}

/// Render the study report.
pub fn render_am_demo(observations: &[AmObservation]) -> String {
    let mut out = String::from(
        "Live interaction with the additive-manufacturing workflow (LPBF fleet, GPT-4 agent)\n\n",
    );
    for o in observations {
        out.push_str(&format!("{}: {}\n", o.id, o.question));
        out.push_str(&format!(
            "  expected      : {}\n",
            expected_text(&o.expected)
        ));
        if let Some(code) = &o.code {
            out.push_str(&format!("  generated     : {code}\n"));
        }
        out.push_str(&format!("  agent answer  : {}\n", o.answer));
        out.push_str(&format!(
            "  behaves as documented: {}  ({})\n\n",
            if o.matches { "yes" } else { "NO" },
            o.note
        ));
    }
    let matched = observations.iter().filter(|o| o.matches).count();
    let correctish = observations
        .iter()
        .filter(|o| !matches!(o.expected, Expected::Incorrect(_)))
        .count();
    out.push_str(&format!(
        "{matched}/{} behaviours as documented; {} of {} fully or partially correct \
         (>80% bar from §5.4: {}).\n",
        observations.len(),
        correctish,
        observations.len(),
        if correctish * 5 >= observations.len() * 4 {
            "met"
        } else {
            "NOT met"
        }
    ));
    out
}

fn expected_text(e: &Expected) -> String {
    match e {
        Expected::Correct => "correct".to_string(),
        Expected::CorrectWithCaveat(c) => format!("correct, but {c}"),
        Expected::Incorrect(c) => format!("incorrect: {c}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn am_demo_reproduces_documented_outcomes() {
        let observations = run_am_demo(42, 8);
        assert_eq!(observations.len(), 10);
        for o in &observations {
            assert!(
                o.matches,
                "{}: expected {:?}, note: {} (code: {:?}, answer: {})",
                o.id, o.expected, o.note, o.code, o.answer
            );
        }
        // The §5.4 bar: >80% fully or partially correct.
        let correctish = observations
            .iter()
            .filter(|o| !matches!(o.expected, Expected::Incorrect(_)))
            .count();
        assert!(correctish * 5 >= observations.len() * 4);
    }

    #[test]
    fn am_demo_is_deterministic() {
        let a = run_am_demo(42, 4);
        let b = run_am_demo(42, 4);
        let codes = |obs: &[AmObservation]| -> Vec<Option<String>> {
            obs.iter().map(|o| o.code.clone()).collect()
        };
        assert_eq!(codes(&a), codes(&b));
    }

    #[test]
    fn render_lists_every_question() {
        let obs = run_am_demo(42, 4);
        let text = render_am_demo(&obs);
        for id in ["A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10"] {
            assert!(text.contains(id), "{id} missing");
        }
        assert!(text.contains("behaviours as documented"));
    }
}
