//! # eval
//!
//! The paper's evaluation methodology (§3) and experiments (§5): the query
//! class taxonomy (Fig 1), the 20-query golden set with Table 1 marginals,
//! the Table 2 prompt+RAG configurations, the experiment runner (3 runs
//! per query, medians, double-judge scoring), report/figure renderers, and
//! the §5.3 chemistry live-interaction study (Q1–Q10).

#![warn(missing_docs)]

pub mod agreement;
pub mod am_queries;
pub mod chem_queries;
pub mod queryset;
pub mod report;
pub mod routing;
pub mod runner;
pub mod scoring;
pub mod stats;
pub mod taxonomy;

pub use agreement::{scoring_agreement, AgreementReport, ScoredGeneration};
pub use am_queries::{am_queries, render_am_demo, run_am_demo, AmObservation, AmQuery};
pub use chem_queries::{
    chem_queries, render_demo, run_chem_demo, ChemObservation, ChemQuery, Expected,
};
pub use queryset::{distribution, golden_queries, GoldenQuery};
pub use report::{
    fig6, fig7, fig8, fig9, latency_deep_dive, latency_report, table1, table2, to_csv,
};
pub use routing::{evaluate_routing, predict_class, RoutingOutcome, RoutingPolicy};
pub use runner::{
    build_synthetic_context, build_synthetic_db, run_matrix, run_matrix_on, run_paper_evaluation,
    synthetic_messages, EvalResults, Experiment, Record,
};
pub use scoring::{hybrid, result_based, rule_based, MethodScore};
pub use stats::{mean, median, pearson, std_dev, BoxStats};
pub use taxonomy::{Actor, DataType, Mode, ProvType, QueryClass, QueryScope, Workload};
