//! Differential tests for index-aware pushdown: for every query in the
//! evaluation query sets — the 20-query golden set over the synthetic
//! sweep, and the code the simulated agent generates for the §5.3
//! chemistry and AM live-interaction studies — the plan-then-push path
//! (`prov_db::try_execute`) must produce exactly the `QueryOutput` (or
//! exactly the error) of the full-materialize oracle. A property test
//! extends the same check to randomly generated pipelines.

use dataframe::{col, lit, AggFunc, DataFrame};
use proptest::prelude::*;
use prov_db::{ProvenanceDatabase, Pushdown};
use prov_model::TaskMessage;
use provql::{execute, parse, Query, Stage};

fn db_from(msgs: &[TaskMessage]) -> ProvenanceDatabase {
    let db = ProvenanceDatabase::new();
    db.insert_batch(msgs);
    db
}

/// The full-materialize oracle — the same `prov_db::full_frame` the
/// agent's `provdb_query` fallback builds, so the equivalence asserted
/// here covers the production code path.
fn oracle_frame(db: &ProvenanceDatabase) -> DataFrame {
    prov_db::full_frame(db)
}

/// Check one parsed query through both paths. Returns whether the
/// pushdown executor actually served it (vs deferring to the oracle).
fn check_query(db: &ProvenanceDatabase, frame: &DataFrame, query: &Query, label: &str) -> bool {
    let oracle = execute(query, frame);
    match prov_db::try_execute(db, query) {
        Pushdown::Executed(got) => {
            assert_eq!(got, oracle, "{label}: pushdown diverged from oracle");
            true
        }
        // The fallback path *is* the oracle — trivially identical.
        Pushdown::NeedsFullFrame(_) => false,
    }
}

#[test]
fn golden_queries_identical_through_both_paths() {
    let experiment = eval::Experiment {
        seed: 42,
        n_inputs: 10,
        runs_per_query: 1,
    };
    let db = eval::build_synthetic_db(&experiment);
    let frame = oracle_frame(&db);
    let mut served = 0usize;
    for q in eval::golden_queries() {
        let query = parse(q.gold_code).expect("gold code parses");
        if check_query(&db, &frame, &query, q.id) {
            served += 1;
        }
    }
    // The set mixes shapes on purpose; a healthy majority must be served
    // by the pushdown executor rather than deferred.
    assert!(served >= 12, "only {served}/20 golden queries were pushed");
}

#[test]
fn chem_demo_generations_identical_through_both_paths() {
    use prov_model::sim_clock;
    let hub = prov_stream::StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    workflows::run_bde_workflow(&hub, sim_clock(), 7, "CCO", 2).expect("chemistry workflow");
    let msgs: Vec<TaskMessage> = sub.drain().iter().map(|m| (**m).clone()).collect();
    let db = db_from(&msgs);
    let frame = oracle_frame(&db);

    let mut seen = 0usize;
    for obs in eval::run_chem_demo(7) {
        let Some(code) = &obs.code else { continue };
        // Some documented §5.3 failure modes generate unparseable or
        // non-executable code; the differential claim covers everything
        // the query engine accepts.
        let Ok(query) = parse(code) else { continue };
        check_query(&db, &frame, &query, obs.id);
        seen += 1;
    }
    assert!(seen >= 6, "only {seen} chem generations reached the engine");
}

#[test]
fn am_demo_generations_identical_through_both_paths() {
    use prov_model::sim_clock;
    let hub = prov_stream::StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    workflows::run_am_fleet(&hub, sim_clock(), 42, 8).expect("AM fleet");
    let msgs: Vec<TaskMessage> = sub.drain().iter().map(|m| (**m).clone()).collect();
    let db = db_from(&msgs);
    let frame = oracle_frame(&db);

    let mut seen = 0usize;
    for obs in eval::run_am_demo(42, 8) {
        let Some(code) = &obs.code else { continue };
        let Ok(query) = parse(code) else { continue };
        check_query(&db, &frame, &query, obs.id);
        seen += 1;
    }
    assert!(seen >= 6, "only {seen} AM generations reached the engine");
}

// ---------------------------------------------------------------------
// Property: random pipelines agree through both paths (including their
// errors — invalid stage combinations must fail identically).
// ---------------------------------------------------------------------

/// Columns mixing pushable common fields, dataflow fields of the
/// synthetic sweep, and a name no message ever sets.
fn arb_column() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("task_id".to_string()),
        Just("workflow_id".to_string()),
        Just("activity_id".to_string()),
        Just("hostname".to_string()),
        Just("status".to_string()),
        Just("started_at".to_string()),
        Just("duration".to_string()),
        Just("y".to_string()),
        Just("exponent".to_string()),
        Just("ghost_column".to_string()),
    ]
}

fn arb_filter() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (arb_column(), -10.0f64..2e9).prop_map(|(c, v)| Stage::Filter(col(c).gt(lit(v)))),
        (arb_column(), "[a-z0-9_-]{1,10}")
            .prop_map(|(c, s)| Stage::Filter(col(c).eq(lit(s.as_str())))),
        // `!=` and unindexed-Eq conjuncts: residual pre-columnar, now
        // evaluated over the column vectors.
        (arb_column(), "[a-z0-9_-]{1,10}")
            .prop_map(|(c, s)| Stage::Filter(col(c).ne(lit(s.as_str())))),
        Just(Stage::Filter(col("status").eq(lit("ERROR")))),
        Just(Stage::Filter(col("hostname").ne(lit("h0")))),
        Just(Stage::Filter(col("activity_id").eq(lit("power")))),
        Just(Stage::Filter(
            col("activity_id")
                .eq(lit("power"))
                .and(col("started_at").gt(lit(0)))
        )),
        Just(Stage::Filter(
            col("activity_id")
                .eq(lit("power"))
                .or(col("status").eq(lit("ERROR")))
        )),
        (arb_column()).prop_map(|c| Stage::Filter(col(c).not_null())),
        // Null literal: both paths must agree on the null-to-false rule.
        (arb_column()).prop_map(|c| Stage::Filter(col(c).gt(lit(prov_model::Value::Null)))),
        // Membership lists: dictionary-coded scan conjunct when null-free
        // on a columnar column, residual frame filter otherwise.
        (arb_column(), prop::collection::vec("[a-z0-9_-]{1,8}", 1..4)).prop_map(|(c, vals)| {
            Stage::Filter(
                col(c).isin(
                    vals.iter()
                        .map(|s| prov_model::Value::from(s.as_str()))
                        .collect(),
                ),
            )
        }),
        Just(Stage::Filter(col("status").isin(vec![
            prov_model::Value::from("ERROR"),
            prov_model::Value::Null,
        ]))),
        (arb_column(), -5.0f64..2e9).prop_map(|(c, v)| {
            Stage::Filter(col(c).isin(vec![
                prov_model::Value::Float(v),
                prov_model::Value::Int(v as i64),
            ]))
        }),
    ]
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        arb_filter(),
        prop::collection::vec(arb_column(), 1..3).prop_map(Stage::Select),
        arb_column().prop_map(Stage::Col),
        arb_column().prop_map(|c| Stage::GroupBy(vec![c])),
        prop_oneof![
            Just(AggFunc::Mean),
            Just(AggFunc::Sum),
            Just(AggFunc::Min),
            Just(AggFunc::Max),
            Just(AggFunc::Count),
        ]
        .prop_map(Stage::Agg),
        (arb_column(), any::<bool>()).prop_map(|(c, asc)| Stage::SortValues(vec![(c, asc)])),
        // 0 included: a pushed `sort → head(0)` top-k must stay exact.
        (0usize..6).prop_map(Stage::Head),
        (1usize..6).prop_map(Stage::Tail),
        Just(Stage::Unique),
        Just(Stage::ValueCounts),
        Just(Stage::Count),
        (arb_column(), any::<bool>()).prop_map(|(column, max)| Stage::LocIdx {
            column,
            max,
            cell: Some("task_id".into()),
        }),
        prop::collection::vec(arb_column(), 0..2).prop_map(Stage::DropDuplicates),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (prop::collection::vec(arb_stage(), 0..4), any::<bool>()).prop_map(|(stages, wrap)| {
        let p = Query::pipeline(stages);
        if wrap {
            Query::Len(Box::new(p))
        } else {
            p
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_pipelines_identical_through_both_paths(q in arb_query()) {
        use std::sync::{Arc, OnceLock};
        static CORPUS: OnceLock<(Arc<ProvenanceDatabase>, DataFrame)> = OnceLock::new();
        let (db, frame) = CORPUS.get_or_init(|| {
            let experiment = eval::Experiment { seed: 7, n_inputs: 6, runs_per_query: 1 };
            let db = eval::build_synthetic_db(&experiment);
            let frame = oracle_frame(&db);
            (db, frame)
        });
        let oracle = execute(&q, frame);
        // Both scan paths — columnar vectors and document decoding — must
        // reproduce the oracle exactly (outputs *and* errors).
        match prov_db::try_execute(db, &q) {
            Pushdown::Executed(got) => prop_assert_eq!(got, oracle.clone()),
            Pushdown::NeedsFullFrame(_) => {}
        }
        match prov_db::try_execute_with(db, &q, false) {
            Pushdown::Executed(got) => prop_assert_eq!(got, oracle),
            Pushdown::NeedsFullFrame(_) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Cache equivalence on the snapshot read path: for one snapshot,
    /// `query_with(q, true)` must return exactly what
    /// `query_with(q, false)` returns — outputs *and* errors — both on
    /// the first (miss-then-insert) execution and on the repeat that is
    /// served straight from the plan-keyed cache. All cases share one
    /// snapshot, so the cache fills up across cases exactly as it would
    /// under a real dashboard storm.
    #[test]
    fn snapshot_cache_on_equals_cache_off(q in arb_query()) {
        use std::sync::{Arc, OnceLock};
        use prov_db::{CacheOutcome, StoreSnapshot};
        static SNAP: OnceLock<Arc<StoreSnapshot>> = OnceLock::new();
        let snap = SNAP.get_or_init(|| {
            let experiment = eval::Experiment { seed: 7, n_inputs: 6, runs_per_query: 1 };
            eval::build_synthetic_db(&experiment).snapshot()
        });
        let (uncached, outcome) = snap.query_with(&q, false);
        prop_assert_eq!(outcome, CacheOutcome::Bypass);
        let (first, _) = snap.query_with(&q, true);
        let (second, second_outcome) = snap.query_with(&q, true);
        match (&uncached, &first, &second) {
            (Ok(a), Ok(b), Ok(c)) => {
                prop_assert_eq!(&**a, &**b, "first cached run diverged");
                prop_assert_eq!(&**a, &**c, "cache-served repeat diverged");
                // Successful outputs are cached, so the repeat must have
                // been a hit (the corpus is far below the cache budget).
                prop_assert_eq!(second_outcome, CacheOutcome::Hit);
            }
            (Err(a), Err(b), Err(c)) => {
                // Errors are never cached; both arms re-derive them.
                prop_assert_eq!(a, b);
                prop_assert_eq!(a, c);
            }
            other => prop_assert!(false, "cache arms disagree: {other:?}"),
        }
    }
}

#[test]
fn topk_pushdown_identical_through_both_paths() {
    let experiment = eval::Experiment {
        seed: 42,
        n_inputs: 10,
        runs_per_query: 1,
    };
    let db = eval::build_synthetic_db(&experiment);
    let frame = oracle_frame(&db);
    // "latest/slowest N" shapes: a leading sort over an orderable key no
    // longer blocks limit pushdown — the pair executes as a top-k scan.
    // Ties, descending order, k = 0, k > corpus, and filtered variants
    // must all match the oracle exactly, through the columnar scan *and*
    // the decode-based scan (where the sort stays frame-side).
    for text in [
        r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(5)"#,
        r#"df.sort_values("duration")[["task_id", "duration"]].head(7)"#,
        r#"df.sort_values("status")[["task_id"]].head(6)"#, // heavy ties
        r#"df.sort_values("started_at")[["task_id"]].head(0)"#,
        r#"df.sort_values("started_at", ascending=False)[["task_id"]].head(100000)"#,
        r#"df[df["status"] != "FINISHED"].sort_values("duration", ascending=False)[["task_id"]].head(4)"#,
        r#"df[df["activity_id"] == "power"].sort_values("started_at")[["task_id"]].head(3)"#,
        r#"len(df.sort_values("duration").head(9))"#,
    ] {
        let query = parse(text).expect("query parses");
        assert!(
            check_query(&db, &frame, &query, text),
            "{text}: top-k should be served by the pushdown executor"
        );
        match prov_db::try_execute_with(&db, &query, false) {
            Pushdown::Executed(got) => {
                assert_eq!(got, execute(&query, &frame), "{text} (decode path)")
            }
            Pushdown::NeedsFullFrame(_) => {}
        }
        // The plan shape: sort and limit both pushed into the scan.
        let plan = provql::plan(&query, db.as_ref());
        for p in plan.pipelines() {
            assert!(!p.scan.sort.is_empty(), "{text}: sort should push");
            assert_eq!(
                p.scan.limit.is_some(),
                text.contains(".head("),
                "{text}: head should push through the sort"
            );
        }
    }
}

#[test]
fn isin_pushdown_identical_through_both_paths() {
    let experiment = eval::Experiment {
        seed: 42,
        n_inputs: 10,
        runs_per_query: 1,
    };
    let db = eval::build_synthetic_db(&experiment);
    let frame = oracle_frame(&db);
    // Membership filters the decode-based planner left residual now
    // compile to dictionary code sets inside the scan.
    for text in [
        r#"len(df[df["activity_id"].isin(["power", "material"])])"#,
        r#"df[df["status"].isin(["ERROR", "FINISHED"])]["duration"].mean()"#,
        r#"df[df["hostname"].isin(["h0", "h2", "absent"])][["task_id"]].head(4)"#,
        r#"df[df["workflow_id"].isin(["nope"])][["task_id"]]"#,
        r#"df[df["activity_id"].isin(["power"])].sort_values("started_at")[["task_id"]].head(3)"#,
    ] {
        let query = parse(text).expect("query parses");
        assert!(
            check_query(&db, &frame, &query, text),
            "{text}: isin should be served by the scan"
        );
        let plan = provql::plan(&query, db.as_ref());
        for p in plan.pipelines() {
            assert!(!p.scan.isin.is_empty(), "{text}: isin should push");
            assert!(p.scan.residual.is_none(), "{text}: nothing residual");
        }
    }
    // A null element keeps the conjunct residual — and still exact.
    let query = parse(r#"len(df[df["activity_id"].isin(["power", None])])"#).expect("parses");
    check_query(&db, &frame, &query, "isin-with-null");
    let plan = provql::plan(&query, db.as_ref());
    for p in plan.pipelines() {
        assert!(p.scan.isin.is_empty());
        assert!(p.scan.residual.is_some());
    }
}

#[test]
fn vectorized_groupby_identical_through_both_paths() {
    let experiment = eval::Experiment {
        seed: 42,
        n_inputs: 10,
        runs_per_query: 1,
    };
    let db = eval::build_synthetic_db(&experiment);
    let frame = oracle_frame(&db);
    // The grouped-aggregation shapes `exec` serves over dictionary codes:
    // group keys resolved from shard dictionaries, aggregation cells
    // gathered once, output bit-identical to the frame group-by.
    for text in [
        r#"df.groupby("activity_id")["duration"].mean()"#,
        r#"df.groupby("workflow_id")["started_at"].min()"#,
        r#"df.groupby("hostname")["duration"].sum()"#,
        r#"df[df["status"] != "ERROR"].groupby("activity_id")["duration"].max()"#,
        r#"df[df["started_at"] > 0].groupby("task_id")["duration"].count()"#,
        r#"df.groupby("activity_id")["duration"].mean().sort_values("duration").head(2)"#,
    ] {
        let query = parse(text).expect("query parses");
        assert!(
            check_query(&db, &frame, &query, text),
            "{text}: grouped aggregate should be served"
        );
    }
}

#[test]
fn columnar_scan_serves_previously_oracle_only_queries() {
    let experiment = eval::Experiment {
        seed: 42,
        n_inputs: 10,
        runs_per_query: 1,
    };
    let db = eval::build_synthetic_db(&experiment);
    let frame = oracle_frame(&db);
    // Unselective aggregates over hot fields and residual `col op lit`
    // filters: the decode-based scan deferred these to the oracle; the
    // columnar scan serves them (identically).
    for text in [
        r#"df.groupby("activity_id")["duration"].mean()"#,
        r#"df["hostname"].value_counts()"#,
        r#"len(df[df["status"] != "FINISHED"])"#,
        r#"df[df["hostname"] == "h1"]["duration"].sum()"#,
    ] {
        let query = parse(text).expect("query parses");
        assert!(
            check_query(&db, &frame, &query, text),
            "{text}: columnar scan should serve this"
        );
        // The agent tool's routing rule: no pushed conjunct, no limit —
        // pre-columnar these pipelines were sent to the cached oracle;
        // `columnar_only` is what routes them through the scan now.
        let plan = provql::plan(&query, db.as_ref());
        for p in plan.pipelines() {
            assert!(!p.has_pushdown(), "{text}: no index conjunct expected");
            assert_eq!(p.scan.limit, None, "{text}");
            assert!(p.scan.columnar_only, "{text}: should be columnar-servable");
        }
    }
}
