//! Ablation benches for the design decisions DESIGN.md calls out:
//! buffered bulk streaming vs per-message publish, broker backends,
//! capture overhead, parallel vs sequential DataFrame kernels, and
//! provenance-database insert fan-out.

use criterion::{criterion_group, criterion_main, Criterion};
use dataframe::{col, lit, DataFrame};
use prov_db::ProvenanceDatabase;
use prov_model::{sim_clock, TaskMessage, TaskMessageBuilder, Value};
use prov_stream::{
    topics, Broker, FlushStrategy, MemoryBroker, PartitionedBroker, RdmaBroker, StreamingHub,
};
use std::hint::black_box;
use std::time::Duration;

fn msg(i: usize) -> TaskMessage {
    TaskMessageBuilder::new(format!("t{i}"), "wf", "step")
        .uses("x", i as f64)
        .generates("y", (i * 2) as f64)
        .span(i as f64, i as f64 + 1.0)
        .build()
}

/// Buffered bulk emission vs per-message publish (§4.1's overhead claim).
fn bench_hub_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("hub_throughput");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    const N: usize = 2_000;
    g.bench_function("per_message_publish", |b| {
        b.iter(|| {
            let hub = StreamingHub::in_memory();
            let _sub = hub.subscribe_tasks();
            for i in 0..N {
                hub.publish_task(msg(i)).unwrap();
            }
            black_box(hub.stats().published)
        })
    });
    g.bench_function("bulk_flush_128", |b| {
        b.iter(|| {
            let hub = StreamingHub::in_memory();
            let _sub = hub.subscribe_tasks();
            let emitter = hub.task_emitter(FlushStrategy::by_count(128));
            for i in 0..N {
                emitter.emit(msg(i)).unwrap();
            }
            emitter.flush().unwrap();
            black_box(hub.stats().published)
        })
    });
    g.finish();
}

/// The three broker backends under the same batch workload.
fn bench_broker_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker_backends");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    const N: usize = 1_000;
    let batch = || (0..N).map(msg).collect::<Vec<_>>();
    g.bench_function("memory", |b| {
        b.iter(|| {
            let broker = MemoryBroker::shared();
            let _s = broker.subscribe(topics::TASKS);
            black_box(broker.publish_batch(topics::TASKS, batch()).unwrap())
        })
    });
    g.bench_function("partitioned", |b| {
        b.iter(|| {
            let broker = PartitionedBroker::shared();
            let _s = broker.subscribe(topics::TASKS);
            black_box(broker.publish_batch(topics::TASKS, batch()).unwrap())
        })
    });
    g.bench_function("rdma", |b| {
        b.iter(|| {
            let broker = RdmaBroker::shared();
            let _s = broker.subscribe(topics::TASKS);
            black_box(broker.publish_batch(topics::TASKS, batch()).unwrap())
        })
    });
    g.finish();
}

/// Per-task capture overhead: immediate vs bulk flushing.
fn bench_capture_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("capture_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, strategy) in [
        ("immediate", FlushStrategy::immediate()),
        ("bulk", FlushStrategy::bulk()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let hub = StreamingHub::in_memory();
                let _sub = hub.subscribe_tasks();
                let ctx = prov_capture::CaptureContext::new(&hub, "c", "w", sim_clock(), 1)
                    .with_flush_strategy(&hub, strategy);
                for i in 0..500u64 {
                    let t = ctx.instrument(
                        "step",
                        prov_model::obj! {"x" => i as f64},
                        0.2,
                        &[],
                        |u| Ok(prov_model::obj! {"y" => u.get("x").unwrap().as_f64().unwrap() * 2.0}),
                    );
                    black_box(t.task_id);
                }
                ctx.flush();
            })
        });
    }
    g.finish();
}

/// Parallel vs sequential DataFrame kernels on a large buffer.
fn bench_dataframe_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataframe_parallel");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let n = 200_000;
    let xs: Vec<Value> = (0..n).map(|i| Value::Float((i % 1000) as f64)).collect();
    let frame = DataFrame::from_columns(vec![("x", xs)]).unwrap();
    let expr = col("x").gt(lit(500.0));
    g.bench_function("mask_sequential", |b| {
        b.iter(|| black_box(expr.mask(&frame).len()))
    });
    g.bench_function("mask_parallel_8", |b| {
        b.iter(|| black_box(dataframe::parallel::par_mask(&frame, &expr, 8).len()))
    });
    g.bench_function("mean_sequential", |b| {
        b.iter(|| black_box(frame.agg("x", dataframe::AggFunc::Mean).unwrap()))
    });
    g.bench_function("mean_parallel_8", |b| {
        b.iter(|| black_box(dataframe::parallel::par_mean(&frame, "x", 8)))
    });
    g.finish();
}

/// Provenance database insert fan-out (document + KV + graph).
fn bench_db_inserts(c: &mut Criterion) {
    let mut g = c.benchmark_group("provdb_inserts");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let msgs: Vec<TaskMessage> = (0..1_000).map(msg).collect();
    g.bench_function("insert_1k_messages", |b| {
        b.iter(|| {
            let db = ProvenanceDatabase::new();
            black_box(db.insert_batch(&msgs))
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_hub_throughput,
    bench_broker_backends,
    bench_capture_overhead,
    bench_dataframe_parallel,
    bench_db_inserts
);
criterion_main!(substrates);
