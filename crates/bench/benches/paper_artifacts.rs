//! One Criterion bench per paper artifact: each table and figure is
//! regenerated end-to-end (workflow → provenance → prompts → simulated
//! LLMs → judges → report), measuring the full reproduction cost.
//!
//! A reduced experiment (5 inputs, 1 run/query) keeps wall time sane; the
//! `repro` binary runs the paper-sized version.

use agent_core::RagStrategy;
use criterion::{criterion_group, criterion_main, Criterion};
use eval::{
    fig6, fig7, fig8, fig9, latency_report, render_demo, run_chem_demo, run_matrix, table1, table2,
    Experiment,
};
use llm_sim::{Judge, ModelId};
use std::hint::black_box;
use std::time::Duration;

fn small() -> Experiment {
    Experiment {
        seed: 42,
        n_inputs: 5,
        runs_per_query: 1,
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("table1_queryset", |b| b.iter(|| black_box(table1())));
    g.bench_function("table2_configs", |b| b.iter(|| black_box(table2())));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_judges");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("five_models_two_judges", |b| {
        b.iter(|| {
            let results = run_matrix(
                &small(),
                &ModelId::all(),
                &[RagStrategy::Full],
                &Judge::panel(),
            );
            black_box(fig6(&results))
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_query_classes");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let results = run_matrix(
        &small(),
        &ModelId::all(),
        &[RagStrategy::Full],
        &Judge::panel(),
    );
    g.bench_function("boxplot_stats", |b| b.iter(|| black_box(fig7(&results))));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_context_ablation");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("gpt_six_configs", |b| {
        b.iter(|| {
            let results = run_matrix(
                &small(),
                &[ModelId::Gpt],
                &RagStrategy::evaluated(),
                &[Judge::new(llm_sim::JudgeId::Gpt)],
            );
            black_box(fig8(&results))
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_data_types");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let results = run_matrix(
        &small(),
        &[ModelId::Gpt],
        &RagStrategy::evaluated(),
        &[Judge::new(llm_sim::JudgeId::Gpt)],
    );
    g.bench_function("per_type_matrix", |b| b.iter(|| black_box(fig9(&results))));
    g.finish();
}

fn bench_latency_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency_models");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let results = run_matrix(
        &small(),
        &ModelId::all(),
        &[RagStrategy::Full],
        &[Judge::new(llm_sim::JudgeId::Gpt)],
    );
    g.bench_function("latency_report", |b| {
        b.iter(|| black_box(latency_report(&results)))
    });
    g.finish();
}

fn bench_chem_demo(c: &mut Criterion) {
    let mut g = c.benchmark_group("chem_live_interaction");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("q1_to_q10", |b| {
        b.iter(|| {
            let observations = run_chem_demo(7);
            black_box(render_demo(&observations))
        })
    });
    g.finish();
}

criterion_group!(
    artifacts,
    bench_tables,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_latency_models,
    bench_chem_demo
);
criterion_main!(artifacts);
