//! `prov_db` bench group: the sharded, clone-free engine vs the seed
//! baseline on the three hot paths the ISSUE names — batch ingest,
//! indexed point find, and group-by aggregation — plus the vectorized
//! kernels (zone-map chunk skipping, code-based group-by) against their
//! decode- and frame-based equivalents.

use bench::baseline::BaselineDatabase;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_db::{AggOp, Aggregate, DocQuery, GroupSpec, Op, ProvenanceDatabase};
use prov_model::{TaskMessage, TaskMessageBuilder};
use std::hint::black_box;
use std::time::Duration;

fn msg(i: usize) -> TaskMessage {
    TaskMessageBuilder::new(
        format!("t{i}"),
        format!("wf-{}", i % 50),
        format!("act{}", i % 8),
    )
    .host(format!("node{:03}", i % 64))
    .uses("x", i as f64)
    .generates("y", (i * 2) as f64)
    .span(i as f64, i as f64 + 1.0)
    .build()
}

fn corpus(n: usize) -> Vec<TaskMessage> {
    (0..n).map(msg).collect()
}

/// Batch ingest of task messages through the full three-backend fan-out:
/// the seed's per-message loop, the new eager batch path, the streaming
/// accept path (keeper-style `Arc` handover), and accept + materialize.
fn bench_batch_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("provdb_batch_ingest");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    const N: usize = 20_000;
    let msgs = corpus(N);
    let shared: Vec<std::sync::Arc<TaskMessage>> =
        msgs.iter().cloned().map(std::sync::Arc::new).collect();
    g.bench_with_input(BenchmarkId::new("baseline", N), &msgs, |b, msgs| {
        b.iter(|| {
            let db = BaselineDatabase::new();
            black_box(db.insert_batch(msgs))
        })
    });
    g.bench_with_input(BenchmarkId::new("sharded_eager", N), &msgs, |b, msgs| {
        b.iter(|| {
            let db = ProvenanceDatabase::new();
            black_box(db.insert_batch(msgs))
        })
    });
    g.bench_with_input(
        BenchmarkId::new("sharded_accept", N),
        &shared,
        |b, shared| {
            b.iter(|| {
                let db = ProvenanceDatabase::new();
                black_box(db.insert_batch_shared(shared.iter().cloned()))
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("sharded_accept_materialize", N),
        &shared,
        |b, shared| {
            b.iter(|| {
                let db = ProvenanceDatabase::new();
                db.insert_batch_shared(shared.iter().cloned());
                db.flush_views();
                black_box(db.insert_count())
            })
        },
    );
    g.finish();
}

/// Indexed equality find (p50-style repeated probe on a hot field).
fn bench_indexed_find(c: &mut Criterion) {
    let mut g = c.benchmark_group("provdb_indexed_find");
    g.sample_size(20).measurement_time(Duration::from_secs(5));
    const N: usize = 100_000;
    let msgs = corpus(N);
    let baseline = BaselineDatabase::new();
    baseline.insert_batch(&msgs);
    let sharded = ProvenanceDatabase::new();
    sharded.insert_batch(&msgs);
    let query = DocQuery::new().filter("workflow_id", Op::Eq, "wf-7");
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(baseline.documents.find(&query).len()))
    });
    g.bench_function("sharded", |b| {
        b.iter(|| black_box(sharded.find(&query).len()))
    });
    g.finish();
}

/// Group-by aggregation over 100k documents.
fn bench_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("provdb_aggregate_100k");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    const N: usize = 100_000;
    let msgs = corpus(N);
    let baseline = BaselineDatabase::new();
    baseline.insert_batch(&msgs);
    let sharded = ProvenanceDatabase::new();
    sharded.insert_batch(&msgs);
    let group = GroupSpec {
        key: "activity_id".into(),
        aggs: vec![
            Aggregate {
                path: "generated.y".into(),
                op: AggOp::Mean,
            },
            Aggregate {
                path: "generated.y".into(),
                op: AggOp::Count,
            },
        ],
    };
    let query = DocQuery::new();
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(baseline.documents.aggregate(&query, &group).len()))
    });
    g.bench_function("sharded", |b| {
        b.iter(|| black_box(sharded.aggregate(&query, &group).len()))
    });
    g.finish();
}

fn run_query(db: &ProvenanceDatabase, q: &provql::Query, use_columnar: bool) -> usize {
    match prov_db::try_execute_with(db, q, use_columnar) {
        prov_db::Pushdown::Executed(out) => out.expect("query runs").len(),
        prov_db::Pushdown::NeedsFullFrame(reason) => {
            panic!("bench query was not served by the scan: {reason}")
        }
    }
}

/// Selective range scan where the per-chunk zone maps do the work:
/// `started_at` is monotone in the corpus, so a high bound lets the
/// kernel discard nearly every granule from its min/max alone. The
/// contrast is the decode path, which rebuilds the corpus into a frame
/// and filters row by row.
fn bench_chunk_skip(c: &mut Criterion) {
    let mut g = c.benchmark_group("provdb_chunk_skip");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    const N: usize = 100_000;
    let db = ProvenanceDatabase::new();
    db.insert_batch(&corpus(N));
    let q = provql::parse(r#"df[df["started_at"] > 99000.0][["task_id", "started_at"]]"#)
        .expect("bench query parses");
    g.bench_function("decode_scan", |b| {
        b.iter(|| black_box(run_query(&db, &q, false)))
    });
    g.bench_function("zone_map_skip", |b| {
        b.iter(|| black_box(run_query(&db, &q, true)))
    });
    g.finish();
}

/// Single-key grouped aggregate: hash a per-row `Vec<Value>` key over the
/// cached full frame vs grouping directly over dictionary codes (one
/// symbol unification per (shard, distinct value), aggregation over
/// gathered cells).
fn bench_vectorized_groupby(c: &mut Criterion) {
    let mut g = c.benchmark_group("provdb_vectorized_groupby");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    const N: usize = 100_000;
    let db = ProvenanceDatabase::new();
    db.insert_batch(&corpus(N));
    let frame = prov_db::full_frame(&db);
    let q =
        provql::parse(r#"df.groupby("hostname")["duration"].mean()"#).expect("bench query parses");
    g.bench_function("frame_hash_keys", |b| {
        b.iter(|| black_box(provql::execute(&q, &frame).expect("query runs")))
    });
    g.bench_function("dictionary_codes", |b| {
        b.iter(|| black_box(run_query(&db, &q, true)))
    });
    g.finish();
}

criterion_group!(
    prov_db,
    bench_batch_ingest,
    bench_indexed_find,
    bench_aggregate,
    bench_chunk_skip,
    bench_vectorized_groupby
);
criterion_main!(prov_db);
