//! Scale benches: the metadata-driven design's independence from
//! provenance volume (the §5.2/§5.4 claim) and end-to-end workflow
//! execution throughput (sequential vs parallel DAG executor).

use agent_core::{ContextManager, PromptBuilder, RagStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_sim::count_tokens;
use prov_capture::CaptureContext;
use prov_model::{sim_clock, TaskMessage};
use prov_stream::StreamingHub;
use std::hint::black_box;
use std::time::Duration;

fn synthetic_messages(n_inputs: usize) -> Vec<TaskMessage> {
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    workflows::run_sweep(&hub, sim_clock(), 42, n_inputs).expect("sweep");
    sub.drain().iter().map(|m| (**m).clone()).collect()
}

/// Full-context prompt construction cost and size as the number of
/// workflow inputs grows 1 → 1000: tokens must stay flat (the prompt is a
/// function of workflow complexity, not task count).
fn bench_scale_independence(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale_independence");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let mut token_counts = Vec::new();
    for n in [1usize, 10, 100] {
        let msgs = synthetic_messages(n);
        let ctx = ContextManager::default_sized();
        ctx.ingest_all(&msgs);
        let tokens = count_tokens(&PromptBuilder::system(RagStrategy::Full, &ctx));
        token_counts.push((n, tokens));
        g.bench_with_input(BenchmarkId::new("build_full_prompt", n), &ctx, |b, ctx| {
            b.iter(|| black_box(PromptBuilder::system(RagStrategy::Full, ctx).len()))
        });
    }
    g.finish();
    // Print the flat-token evidence alongside the timing data.
    println!("scale_independence tokens: {token_counts:?}");
    let min = token_counts.iter().map(|(_, t)| *t).min().unwrap();
    let max = token_counts.iter().map(|(_, t)| *t).max().unwrap();
    assert!(
        (max - min) < min / 5,
        "prompt tokens should stay ~flat across scales: {token_counts:?}"
    );
}

/// Context ingestion throughput (the agent-side cost of streaming).
fn bench_context_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_ingest");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let msgs = synthetic_messages(100); // 800 tasks
    g.bench_function("ingest_800_messages", |b| {
        b.iter(|| {
            let ctx = ContextManager::default_sized();
            ctx.ingest_all(&msgs);
            black_box(ctx.len())
        })
    });
    g.finish();
}

/// Sequential vs parallel DAG execution of a wide fan-out workflow.
fn bench_dag_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_executor");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let build = || {
        let mut dag = workflows::WorkflowDag::new().add(
            "src",
            "src",
            prov_model::obj! {"x" => 1.0},
            0.1,
            &[],
            workflows::task_fn(|u, _| Ok(u.clone())),
        );
        for i in 0..64 {
            dag = dag.add(
                format!("w{i}"),
                "worker",
                prov_model::obj! {},
                0.1,
                &["src"],
                workflows::task_fn(move |_, deps| {
                    let x = deps["src"].get("x").unwrap().as_f64().unwrap();
                    // A little arithmetic so the task body is not free.
                    let mut acc = x;
                    for k in 0..2_000 {
                        acc = (acc + k as f64).sqrt() + 1.0;
                    }
                    Ok(prov_model::obj! {"y" => acc + i as f64})
                }),
            );
        }
        dag
    };
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let hub = StreamingHub::in_memory();
            let ctx = CaptureContext::new(&hub, "c", "w", sim_clock(), 1);
            black_box(build().execute(&ctx).unwrap().outputs.len())
        })
    });
    g.bench_function("parallel_8", |b| {
        b.iter(|| {
            let hub = StreamingHub::in_memory();
            let ctx = CaptureContext::new(&hub, "c", "w", sim_clock(), 1);
            black_box(build().execute_parallel(&ctx, 8).unwrap().outputs.len())
        })
    });
    g.finish();
}

criterion_group!(
    scale,
    bench_scale_independence,
    bench_context_ingest,
    bench_dag_executor
);
criterion_main!(scale);
