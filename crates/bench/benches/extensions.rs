//! Benches for the implemented future-work extensions (§5.4): the
//! additive-manufacturing workflow, prospective-plan conformance, PROV
//! graph traversals, the per-class LLM router, the query auto-fixer, and
//! chaos-broker fault-injection overhead.

use agent_core::{AutoFixer, RagStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eval::{predict_class, Experiment, RoutingPolicy};
use llm_sim::{Judge, JudgeId, ModelId};
use prov_db::ProvenanceDatabase;
use prov_model::{sim_clock, TaskMessage};
use prov_stream::{Broker, ChaosBroker, ChaosConfig, MemoryBroker, StreamingHub};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use workflows::{build_am_dag, run_am_workflow, AmParams, ProspectivePlan};

fn bench_am_workflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("am_workflow");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    for layers in [6usize, 12, 24] {
        g.bench_with_input(BenchmarkId::new("build_part", layers), &layers, |b, &n| {
            let mut p = AmParams::nominal("bench");
            p.n_layers = n;
            b.iter(|| {
                let hub = StreamingHub::in_memory();
                black_box(run_am_workflow(&hub, sim_clock(), 42, &p).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_conformance(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_conformance");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    // Plan + a 100-instance retrospective stream.
    let dag = workflows::build_synthetic_dag(workflows::SyntheticParams::config(0));
    let plan = ProspectivePlan::from_dag("synthetic", &dag);
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    workflows::run_sweep(&hub, sim_clock(), 42, 100).unwrap();
    let msgs: Vec<TaskMessage> = sub.drain().iter().map(|m| (**m).clone()).collect();
    g.bench_function("check_800_tasks", |b| {
        b.iter(|| black_box(plan.check(&msgs)).conforms())
    });
    g.bench_function("plan_from_am_dag", |b| {
        let p = AmParams::nominal("bench");
        let dag = build_am_dag(&p, &workflows::am::ProcessModel::new(7));
        b.iter(|| black_box(ProspectivePlan::from_dag("am", &dag)))
    });
    g.finish();
}

fn bench_graph_traversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_traversal");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    // A deep lineage chain plus fan-out, persisted via the database.
    let db = ProvenanceDatabase::new();
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    let bde = workflows::run_bde_workflow(&hub, sim_clock(), 42, "CCO", 5).unwrap();
    for m in sub.drain() {
        db.insert(&m);
    }
    let leaf = bde
        .run
        .task_ids
        .iter()
        .find(|(name, _)| name.starts_with("postprocess"))
        .map(|(_, id)| id.as_str().to_string())
        .unwrap();
    g.bench_function("upstream_lineage", |b| {
        b.iter(|| black_box(db.graph().upstream_lineage(&leaf, 16)))
    });
    let root = bde
        .run
        .task_ids
        .iter()
        .find(|(name, _)| name.starts_with("generate_conformer"))
        .map(|(_, id)| id.as_str().to_string())
        .unwrap();
    g.bench_function("shortest_path", |b| {
        b.iter(|| black_box(db.graph().shortest_path(&leaf, &root)))
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("llm_routing");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let e = Experiment {
        seed: 42,
        n_inputs: 5,
        runs_per_query: 1,
    };
    let results = eval::run_matrix(
        &e,
        &ModelId::all(),
        &[RagStrategy::Full],
        &[Judge::new(JudgeId::Gpt)],
    );
    g.bench_function("learn_policy", |b| {
        b.iter(|| black_box(RoutingPolicy::learn(&results, JudgeId::Gpt)))
    });
    let policy = RoutingPolicy::learn(&results, JudgeId::Gpt);
    g.bench_function("route_question", |b| {
        b.iter(|| black_box(policy.route_question("What is the average duration per activity?")))
    });
    g.bench_function("predict_class", |b| {
        b.iter(|| black_box(predict_class("How many tasks ran on each host?")))
    });
    g.finish();
}

fn bench_autofix(c: &mut Criterion) {
    let mut g = c.benchmark_group("auto_fixer");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    let columns: Vec<String> = [
        "task_id",
        "activity_id",
        "hostname",
        "started_at",
        "ended_at",
        "duration",
        "cpu_percent_end",
        "melt_pool_temp_c",
        "energy_density_j_mm3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let fixer = AutoFixer::new();
    g.bench_function("column_repair", |b| {
        b.iter(|| {
            black_box(fixer.propose(
                r#"df.groupby("node")["duration"].mean()"#,
                "unknown column 'node'; available: [...]",
                &columns,
            ))
        })
    });
    g.bench_function("prose_extraction", |b| {
        b.iter(|| {
            black_box(fixer.propose(
                "Sure!\n```python\ndf['duration'].mean()\n```\n",
                "query parse error: unexpected character '!'",
                &columns,
            ))
        })
    });
    g.finish();
}

fn bench_chaos_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos_broker");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    let msg = prov_model::TaskMessageBuilder::new("t", "wf", "a").build();
    g.bench_function("publish_plain", |b| {
        let broker = MemoryBroker::new();
        let _sub = broker.subscribe("x");
        b.iter(|| broker.publish("x", black_box(msg.clone())).unwrap())
    });
    g.bench_function("publish_chaos_wrapped", |b| {
        let broker = ChaosBroker::new(Arc::new(MemoryBroker::new()), ChaosConfig::default());
        let _sub = broker.subscribe("x");
        b.iter(|| broker.publish("x", black_box(msg.clone())).unwrap())
    });
    g.bench_function("publish_at_least_once", |b| {
        let broker = ChaosBroker::new(Arc::new(MemoryBroker::new()), ChaosConfig::at_least_once(7));
        let _sub = broker.subscribe("x");
        b.iter(|| broker.publish("x", black_box(msg.clone())).unwrap())
    });
    g.finish();
}

criterion_group!(
    extensions,
    bench_am_workflow,
    bench_conformance,
    bench_graph_traversal,
    bench_routing,
    bench_autofix,
    bench_chaos_overhead
);
criterion_main!(extensions);
