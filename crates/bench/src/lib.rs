//! Benchmark support library: the pre-refactor (single-lock, clone-heavy)
//! provenance-database baseline that `repro --provdb` and the `prov_db`
//! criterion group measure the sharded engine against.

#![warn(missing_docs)]

pub mod baseline;
pub mod seed_value;
