//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench --bin repro --release            # everything
//! cargo run -p bench --bin repro --release -- --fig8  # one artifact
//! ```
//!
//! Writes CSVs next to the textual output under `target/repro/`.

use agent_core::RagStrategy;
use eval::{
    evaluate_routing, fig6, fig7, fig8, fig9, latency_deep_dive, latency_report, render_demo,
    run_chem_demo, run_paper_evaluation, scoring_agreement, table1, table2, to_csv, Experiment,
};
use llm_sim::count_tokens;
use prov_model::sim_clock;
use prov_stream::StreamingHub;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Hidden child mode for `--provdb`: run exactly one measurement in a
    // fresh process (heap isolation — on a single shared core, allocator
    // aging from a previous measurement otherwise skews the next one) and
    // print the metric to stdout.
    if let Some(pos) = args.iter().position(|a| a == "--provdb-measure") {
        let which = args.get(pos + 1).cloned().unwrap_or_default();
        println!("{}", provdb_measure(&which));
        return;
    }

    // Bench-regression gate: `repro --check-bench <committed.json>
    // <fresh.json> [tolerance] [--summary]` exits non-zero when any
    // speedup in the fresh report falls more than `tolerance` (default
    // 0.20) below the committed one. CI runs this after regenerating
    // `BENCH_provdb.json`; with `--summary` the comparison is printed as
    // a markdown table (appended to `$GITHUB_STEP_SUMMARY` by the bench
    // job, so regressions are readable without downloading the artifact).
    if let Some(pos) = args.iter().position(|a| a == "--check-bench") {
        let committed = args
            .get(pos + 1)
            .expect("--check-bench <committed> <fresh>");
        let fresh = args
            .get(pos + 2)
            .expect("--check-bench <committed> <fresh>");
        let tolerance = args
            .get(pos + 3)
            .and_then(|t| t.parse::<f64>().ok())
            .unwrap_or(0.20);
        let summary = args.iter().any(|a| a == "--summary");
        std::process::exit(check_bench_regression(committed, fresh, tolerance, summary));
    }

    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    let experiment = Experiment::default();
    println!(
        "provagent repro — seed {}, {} synthetic inputs, {} runs/query\n",
        experiment.seed, experiment.n_inputs, experiment.runs_per_query
    );

    if want("--table1") {
        println!("{}", table1());
    }
    if want("--table2") {
        println!("{}", table2());
    }

    let needs_matrix = want("--fig6")
        || want("--fig7")
        || want("--fig8")
        || want("--fig9")
        || want("--latency")
        || want("--csv");
    if needs_matrix {
        eprintln!("running evaluation matrix (5 models × configs × 20 queries × 3 runs)…");
        let results = run_paper_evaluation(&experiment);
        if want("--fig6") {
            println!("{}", fig6(&results));
        }
        if want("--fig7") {
            println!("{}", fig7(&results));
        }
        if want("--fig8") {
            println!("{}", fig8(&results));
        }
        if want("--fig9") {
            println!("{}", fig9(&results));
        }
        if want("--latency") {
            println!("{}", latency_report(&results));
        }
        if want("--latency-deep") {
            println!("{}", latency_deep_dive(&results));
        }
        let dir = std::path::Path::new("target/repro");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join("records.csv");
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = f.write_all(to_csv(&results).as_bytes());
                eprintln!("wrote {}", path.display());
            }
        }
    }

    if want("--chem") {
        eprintln!("running §5.3 chemistry live-interaction demo (ethanol)…");
        let observations = run_chem_demo(7);
        println!("{}", render_demo(&observations));
    }

    if want("--am") {
        eprintln!("running the additive-manufacturing live-interaction study (§5.4 third domain)…");
        let observations = eval::run_am_demo(42, 8);
        println!("{}", eval::render_am_demo(&observations));
    }

    if want("--scale") {
        println!("{}", scale_independence());
    }

    if want("--scoring") {
        eprintln!("comparing the three §3 scoring methods on GPT generations…");
        let report = scoring_agreement(&experiment, llm_sim::ModelId::Gpt, llm_sim::JudgeId::Gpt);
        println!("{}", report.render());
    }

    if want("--provdb") {
        eprintln!("benchmarking the sharded provenance database against the seed baseline…");
        let report = provdb_benchmark();
        println!("{}", report.render());
        let path = std::path::Path::new("BENCH_provdb.json");
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    if want("--routing") {
        eprintln!("training + evaluating the per-class LLM router (two seeds)…");
        let train = Experiment::default();
        let test = Experiment {
            seed: 1337,
            ..Experiment::default()
        };
        let outcome = evaluate_routing(&train, &test, llm_sim::JudgeId::Gpt);
        println!("{}", outcome.policy.render());
        println!("{}", outcome.render());
    }
}

/// Compare two `BENCH_provdb.json` reports: exit code 0 when every
/// speedup in `fresh` is at least `(1 - tolerance) ×` the committed one,
/// 1 on regression, 2 on unreadable/malformed input. The tolerance absorbs
/// runner noise; the committed file is the floor the perf work locked in.
/// With `summary` the comparison is rendered as a markdown table (for CI
/// step summaries) instead of plain log lines.
fn check_bench_regression(
    committed_path: &str,
    fresh_path: &str,
    tolerance: f64,
    summary: bool,
) -> i32 {
    use prov_model::{json, Value};

    fn load(path: &str) -> Option<Value> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| eprintln!("check-bench: cannot read {path}: {e}"))
            .ok()?;
        json::from_str(&text)
            .map_err(|e| eprintln!("check-bench: cannot parse {path}: {e}"))
            .ok()
    }

    let (Some(committed_report), Some(fresh)) = (load(committed_path), load(fresh_path)) else {
        return 2;
    };
    let Some(committed) = committed_report.as_object() else {
        eprintln!("check-bench: {committed_path} is not a JSON object");
        return 2;
    };

    // Speedups are only comparable between like runners: a committed
    // 1-core number replayed on a multi-core class (or vice versa) shifts
    // every parallel-sensitive ratio, so say what each run saw.
    fn runner_line(report: &Value) -> String {
        let Some(r) = report.get("runner") else {
            return "unrecorded (pre-PR5 report)".to_string();
        };
        let count = |key: &str| {
            r.get(key)
                .and_then(Value::as_i64)
                .map(|n| n.to_string())
                .unwrap_or_else(|| "?".to_string())
        };
        let with_override = |key: &str| match r.get(key).and_then(Value::as_str) {
            Some(v) => format!(" (override {v})"),
            None => String::new(),
        };
        format!(
            "{} core(s), {} shard(s){}, {} scan thread(s){}",
            count("cores_detected"),
            count("document_store_shards"),
            with_override("shards_override"),
            count("scan_threads"),
            with_override("threads_override"),
        )
    }

    if summary {
        println!(
            "### prov-db bench: committed vs fresh (tolerance {:.0}%)\n",
            tolerance * 100.0
        );
        println!("- committed runner: {}", runner_line(&committed_report));
        println!("- fresh runner: {}\n", runner_line(&fresh));
        println!("| metric | committed | fresh | floor | status |");
        println!("|---|---:|---:|---:|:---:|");
    }
    let mut checked = 0;
    let mut failures = 0;
    for (metric, entry) in committed {
        let Some(want) = entry.get("speedup").and_then(Value::as_f64) else {
            continue; // metadata keys (generated_by, notes, …)
        };
        let got = fresh
            .get_path(&format!("{metric}.speedup"))
            .and_then(Value::as_f64);
        checked += 1;
        // Parity entries assert "both sides coincide" (speedup ≈ 1.0, e.g.
        // sequential-vs-parallel on a 1-core runner) rather than a locked-in
        // win; around 1.0x the ratio is pure scheduler noise in both
        // directions, so the gate triples its tolerance there — a genuine
        // parallel-path regression still trips it, random jitter cannot.
        let parity = entry
            .get("parity")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let tol = if parity {
            (tolerance * 3.0).min(0.9)
        } else {
            tolerance
        };
        let floor = want * (1.0 - tol);
        let status_ok = if parity { "ok (parity)" } else { "ok" };
        match got {
            Some(got) if got >= floor => {
                if summary {
                    println!("| {metric} | {want:.1}x | {got:.1}x | {floor:.1}x | {status_ok} |");
                } else {
                    println!("check-bench: ok   {metric}: {got:.1}x (floor {floor:.1}x)");
                }
            }
            Some(got) => {
                if summary {
                    println!("| {metric} | {want:.1}x | {got:.1}x | {floor:.1}x | **REGRESSED** |");
                }
                eprintln!(
                    "check-bench: FAIL {metric}: fresh {got:.2}x is more than {:.0}% below committed {want:.2}x",
                    tol * 100.0
                );
                failures += 1;
            }
            None => {
                if summary {
                    println!("| {metric} | {want:.1}x | — | {floor:.1}x | **MISSING** |");
                }
                eprintln!("check-bench: FAIL {metric}: missing from {fresh_path}");
                failures += 1;
            }
        }
    }
    if checked == 0 {
        eprintln!("check-bench: no speedup metrics found in {committed_path}");
        return 2;
    }
    if summary {
        println!();
    }
    if failures > 0 {
        1
    } else {
        println!("check-bench: {checked} metrics within tolerance");
        0
    }
}

/// One measured hot path: the seed baseline vs the sharded engine.
struct ProvDbMeasurement {
    name: &'static str,
    unit: &'static str,
    baseline: f64,
    sharded: f64,
    /// Parity entries assert both sides coincide (speedup ≈ 1.0x) rather
    /// than lock in a win; the check-bench gate widens its tolerance for
    /// them so scheduler noise around 1.0x cannot fail CI.
    parity: bool,
}

impl ProvDbMeasurement {
    fn speedup(&self) -> f64 {
        if self.sharded > 0.0 {
            self.baseline / self.sharded
        } else {
            f64::INFINITY
        }
    }
}

/// Observability numbers from one mixed-load run through the serving
/// stack (committed as the `mixed_load_profile` metadata object — no
/// `speedup` key, so the regression gate reads past it).
struct MixedLoadProfile {
    workers: usize,
    ingest_msgs_per_s: f64,
    query_p50_us: f64,
    query_p99_us: f64,
    queries: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// The `--provdb` report backing `BENCH_provdb.json`.
struct ProvDbReport {
    messages: usize,
    shards: usize,
    /// Scan-worker count the stores auto-tuned to (or were forced to).
    threads: usize,
    /// Cores the runner actually reported — committed numbers from a
    /// 1-core container and a multi-core rerun must be distinguishable,
    /// not silently compared.
    cores: usize,
    shards_override: Option<String>,
    threads_override: Option<String>,
    /// Rows per column chunk (zone-map granule) the stores ran with.
    chunk: usize,
    chunk_override: Option<String>,
    /// Resident-set budget (MiB) lazily opened stores page within.
    resident_mb: usize,
    resident_override: Option<String>,
    measurements: Vec<ProvDbMeasurement>,
    mixed: MixedLoadProfile,
}

impl ProvDbReport {
    fn render(&self) -> String {
        let override_note = |raw: &Option<String>| match raw {
            Some(v) => format!(" (override {v})"),
            None => String::new(),
        };
        let mut out = format!(
            "Provenance DB: sharded clone-free engine vs seed baseline \
             ({} task messages, {} shards).\nrunner: {} core(s), {} shard(s){}, {} scan thread(s){}, {}-row chunks{}, {} MiB resident budget{}\n{:<28} {:>14} {:>14} {:>9}\n",
            self.messages,
            self.shards,
            self.cores,
            self.shards,
            override_note(&self.shards_override),
            self.threads,
            override_note(&self.threads_override),
            self.chunk,
            override_note(&self.chunk_override),
            self.resident_mb,
            override_note(&self.resident_override),
            "hot path",
            "baseline",
            "sharded",
            "speedup"
        );
        for m in &self.measurements {
            out.push_str(&format!(
                "{:<28} {:>11.3} {} {:>11.3} {} {:>8.1}x\n",
                m.name,
                m.baseline,
                m.unit,
                m.sharded,
                m.unit,
                m.speedup()
            ));
        }
        out.push_str(&format!(
            "mixed-load profile ({} workers): ingest {:.0} msg/s, query p50 {:.0} \u{b5}s, \
             p99 {:.0} \u{b5}s over {} queries ({} cache hits / {} misses)\n",
            self.mixed.workers,
            self.mixed.ingest_msgs_per_s,
            self.mixed.query_p50_us,
            self.mixed.query_p99_us,
            self.mixed.queries,
            self.mixed.cache_hits,
            self.mixed.cache_misses,
        ));
        out
    }

    fn to_json(&self) -> String {
        use prov_model::{json, Map, Value};
        let mut root = Map::new();
        root.insert("generated_by".into(), Value::from("repro --provdb"));
        root.insert("corpus_messages".into(), Value::from(self.messages));
        root.insert("document_store_shards".into(), Value::from(self.shards));
        let mut runner = Map::new();
        runner.insert("cores_detected".into(), Value::from(self.cores));
        runner.insert("document_store_shards".into(), Value::from(self.shards));
        runner.insert("scan_threads".into(), Value::from(self.threads));
        runner.insert(
            "shards_override".into(),
            self.shards_override
                .as_deref()
                .map(Value::from)
                .unwrap_or(Value::Null),
        );
        runner.insert(
            "threads_override".into(),
            self.threads_override
                .as_deref()
                .map(Value::from)
                .unwrap_or(Value::Null),
        );
        runner.insert("chunk_rows".into(), Value::from(self.chunk));
        runner.insert(
            "chunk_override".into(),
            self.chunk_override
                .as_deref()
                .map(Value::from)
                .unwrap_or(Value::Null),
        );
        runner.insert("resident_mb".into(), Value::from(self.resident_mb));
        runner.insert(
            "resident_override".into(),
            self.resident_override
                .as_deref()
                .map(Value::from)
                .unwrap_or(Value::Null),
        );
        root.insert("runner".into(), Value::object(runner));
        root.insert(
            "baseline".into(),
            Value::from(
                "pre-refactor engine (single RwLock<Vec<Value>> store, String index keys, \
                 deep-clone find, per-message backend fan-out); preserved in \
                 crates/bench/src/baseline.rs; every number is the best of repeated runs \
                 in an isolated child process",
            ),
        );
        root.insert(
            "notes".into(),
            Value::from(
                "batch_ingest_100k_ms measures the streaming accept path \
                 (insert_batch_shared: the keeper hands over the broker's Arc handles; \
                 views materialize lazily, batched, at the next query). \
                 batch_ingest_100k_materialized_ms additionally includes flush_views(), \
                 i.e. the full deferred cost of building all three views. \
                 indexed_find_p50_us probes a 100k-doc store after materialization. \
                 query_pushdown_vs_scan compares the agent's provdb_query paths on the \
                 current engine: full-materialize-then-row-scan (a selective find plus a \
                 filtered group-by aggregate, whole corpus rebuilt into a DataFrame per \
                 query) vs plan-then-push (hash-index probes, projected frame over the \
                 surviving documents only). columnar_find and columnar_aggregate compare \
                 the two scan paths of the current engine: decode-based projected scan \
                 (every surviving document decoded back into a task message) vs the \
                 columnar sidecar (filters evaluated over typed column vectors, frame \
                 built straight from them; columnar_find is a selective two-column find, \
                 columnar_aggregate an unselective corpus-wide group-by). topk_find \
                 compares the agent paths for a sort_values(...).head(5) \"latest N \
                 tasks\" query on the current engine: sort the whole pre-built frame \
                 per call (the cached-oracle path this shape used before sort/limit \
                 pushdown) vs the pushed top-k scan (sorted-index cursor / bounded \
                 per-shard selection over the column vectors, zero document decodes). \
                 parallel_scan compares the forced-sequential (PROVDB_THREADS=1) and \
                 auto-tuned shard-parallel columnar scan on one pinned 8-shard store \
                 over an unselective filter; on a 1-core runner both sides coincide \
                 (~1.0x), so the entry carries parity: true and the check-bench gate \
                 widens its tolerance for it — see the runner object for the detected \
                 core count, shard count, chunk size, and any \
                 PROVDB_SHARDS/PROVDB_THREADS/PROVDB_CHUNK overrides in effect. \
                 dict_filter compares the two engine paths for an unindexed membership \
                 filter (hostname isin list, task_id projection): decode every \
                 document into a frame and evaluate the predicate row by row vs the \
                 dictionary kernel (literals compiled to shard-local codes once, \
                 chunked zone maps skipping non-matching granules, selection vectors \
                 instead of per-row branches). vectorized_groupby compares a \
                 single-key group-by aggregate (mean duration by hostname) on the \
                 cached full frame (hash per-row Vec<Value> keys) vs the code-based \
                 fast path (group directly over dictionary codes, unify symbols \
                 across shards by cached content hash, aggregate gathered cells). \
                 mixed_load interleaves 12 streaming ingest bursts of 256 messages \
                 with 48-query dashboard storms cycling a 4-query repeated set, and \
                 compares the pre-serving agent path (try-pushdown per query, \
                 otherwise re-execute stages over a generation-keyed whole-frame \
                 cache, all on one thread) against the serving stack (storms \
                 submitted to the bounded QueryServer pool, answered from \
                 generation-pinned snapshots through the plan-keyed result cache). \
                 mixed_load_profile carries the observability numbers from one \
                 serving run — ingest throughput, query p50/p99, cache hit/miss \
                 counts — and has no speedup key, so the regression gate skips it. \
                 graph_traverse compares the transitive upstream closure from the \
                 deepest task of a million-edge layered lineage DAG (250 layers of \
                 1000 tasks, each prov:wasInformedBy 4 tasks of the previous layer) \
                 on the locking adjacency-map traversal — kept as the differential \
                 oracle — vs the CSR kernels (dense u32 adjacency, visited bitset, \
                 level-synchronous frontiers). graph_khop is the 4-hop any-relation \
                 neighborhood from a mid-graph task on the same corpus. Both sides \
                 run on the current engine; the CSR build runs outside the timed \
                 region because it is paid once per store generation and memoized \
                 (see docs/lineage.md). wal_ingest compares the accept + materialize \
                 workload on an in-memory store vs a durable one (every drained batch \
                 serialized into the checksummed WAL under the env-selected \
                 PROVDB_WAL_SYNC policy, complete chunks sealed into columnar \
                 segments) — the durability tax; a disk-bound near-1x contrast, so \
                 it carries parity: true. recovery_replay compares rebuilding the \
                 store by re-ingesting the 100k source messages vs \
                 ProvenanceDatabase::open's recovery path, which since the \
                 out-of-core work loads only the segment directory + zone-map \
                 footers and replays the WAL tail — sealed rows page in on first \
                 touch and the kv/graph backends hydrate on first access, so replay \
                 now beats re-ingest by the sealed fraction of history and the \
                 entry is a real (non-parity) speedup. cold_open isolates the \
                 open-time contrast on an explicitly sealed corpus: the same \
                 directory opened with eager_open=true (replay every sealed row \
                 into RAM, the pre-out-of-core behaviour) vs lazily. \
                 out_of_core_scan is the steady-state paged-read tax: the \
                 dict_filter columnar scan on a fully resident store vs the same \
                 scan re-paging every chunk through a deliberately tiny 4 MiB \
                 resident budget (the bounded-memory worst case); the paged side is \
                 expected to trail, so the entry carries parity: true and the gate \
                 only guards against collapse. The runner object records the \
                 resident budget in effect (resident_mb, with any \
                 PROVDB_RESIDENT_MB override) alongside the core/shard/thread/chunk \
                 geometry. The crash-consistency contract itself is enforced by the \
                 recovery and out-of-core differential suites and the crash_harness \
                 binary, not by these timings (see docs/durability.md).",
            ),
        );
        let mut profile = Map::new();
        profile.insert("workers".into(), Value::from(self.mixed.workers));
        profile.insert(
            "ingest_msgs_per_s".into(),
            Value::from(self.mixed.ingest_msgs_per_s),
        );
        profile.insert("query_p50_us".into(), Value::from(self.mixed.query_p50_us));
        profile.insert("query_p99_us".into(), Value::from(self.mixed.query_p99_us));
        profile.insert("queries".into(), Value::from(self.mixed.queries as i64));
        profile.insert(
            "cache_hits".into(),
            Value::from(self.mixed.cache_hits as i64),
        );
        profile.insert(
            "cache_misses".into(),
            Value::from(self.mixed.cache_misses as i64),
        );
        root.insert("mixed_load_profile".into(), Value::object(profile));
        for m in &self.measurements {
            let mut entry = Map::new();
            entry.insert("baseline".into(), Value::from(m.baseline));
            entry.insert("sharded".into(), Value::from(m.sharded));
            entry.insert("unit".into(), Value::from(m.unit));
            entry.insert("speedup".into(), Value::from(m.speedup()));
            if m.parity {
                entry.insert("parity".into(), Value::Bool(true));
            }
            root.insert(m.name.into(), Value::object(entry));
        }
        json::to_string_pretty(&Value::object(root))
    }
}

/// Build the 100k-message benchmark corpus (PROV-AGENT-shaped task
/// messages: payloads, spans, hosts, 50 workflows, 8 activities).
fn provdb_corpus() -> Vec<prov_model::TaskMessage> {
    const N: usize = 100_000;
    (0..N)
        .map(|i| {
            prov_model::TaskMessageBuilder::new(
                format!("t{i}"),
                format!("wf-{}", i % 50),
                format!("act{}", i % 8),
            )
            .host(format!("node{:03}", i % 64))
            .uses("x", i as f64)
            .generates("y", (i * 2) as f64)
            .span(i as f64, i as f64 + 1.0)
            .build()
        })
        .collect()
}

/// Seed `root` with the benchmark corpus as a durable store and seal
/// every complete chunk into columnar segments, so a reopen finds sealed
/// coverage with only the chunk-unaligned remainder left in the WAL tail
/// — the store shape the cold-open and out-of-core measurements contrast.
fn seed_sealed_store(root: &std::path::Path, msgs: &[prov_model::TaskMessage]) {
    let _ = std::fs::remove_dir_all(root);
    let shared: Vec<std::sync::Arc<prov_model::TaskMessage>> =
        msgs.iter().cloned().map(std::sync::Arc::new).collect();
    let db = prov_db::ProvenanceDatabase::open(root).expect("seed sealed bench store");
    db.insert_batch_shared(shared);
    db.flush_views();
    db.seal_now().expect("seal bench store");
}

fn provdb_find_query() -> prov_db::DocQuery {
    use prov_db::Op;
    prov_db::DocQuery::new().filter("workflow_id", Op::Eq, "wf-7")
}

/// The selective agent queries behind `query_pushdown_vs_scan`: a
/// filtered find with a projection, and a filtered group-by aggregate —
/// the §5.2 interactive shapes. Both are plannable (equality conjunct on
/// the indexed `workflow_id`, bounded output columns), so the pushdown
/// path touches ~2k of the 100k documents where the scan path
/// materializes every one into a frame per query.
fn pushdown_queries() -> Vec<provql::Query> {
    [
        r#"df[df["workflow_id"] == "wf-7"][["task_id", "y"]]"#,
        r#"df[df["workflow_id"] == "wf-7"].groupby("activity_id")["y"].mean()"#,
    ]
    .iter()
    .map(|t| provql::parse(t).expect("bench query parses"))
    .collect()
}

/// The queries behind `columnar_find` and `columnar_aggregate`: a
/// selective projected find over columnar columns only, and an unselective
/// corpus-wide group-by aggregate over columnar columns. Both are measured
/// through `try_execute_with` on the *current* engine — decode-based
/// projected scan (`use_columnar = false`, the PR 3 path that decodes
/// every surviving document) vs the columnar scan (`use_columnar = true`,
/// which materializes the frame straight from the column vectors).
fn columnar_queries() -> (provql::Query, provql::Query) {
    (
        provql::parse(r#"df[df["workflow_id"] == "wf-7"][["task_id", "duration"]]"#)
            .expect("bench query parses"),
        provql::parse(r#"df.groupby("activity_id")["duration"].mean()"#)
            .expect("bench query parses"),
    )
}

/// The query behind `dict_filter`: an unindexed membership filter over a
/// 64-symbol dictionary column. Neither engine path gets index help here
/// (hostname carries no hash index), so the contrast is pure scan
/// machinery: decode every document into a frame and evaluate the isin
/// predicate row by row vs the dictionary kernel — the literal list is
/// compiled to shard-local code sets once, chunked zone maps skip
/// granules whose code range misses the set, and the survivors come out
/// of a branch-light selection-vector pass with zero decodes.
fn dict_filter_query() -> provql::Query {
    provql::parse(r#"df[df["hostname"].isin(["node007", "node011", "node023"])][["task_id"]]"#)
        .expect("bench query parses")
}

/// The query behind `vectorized_groupby`: the single-key grouped
/// aggregate shape the agent asks constantly ("mean duration by host").
/// The frame side hashes a per-row `Vec<Value>` key for each of the 100k
/// rows; the code side groups directly over dictionary codes (one
/// unification per distinct symbol per shard) and aggregates gathered
/// cells.
fn vectorized_groupby_query() -> provql::Query {
    provql::parse(r#"df.groupby("hostname")["duration"].mean()"#).expect("bench query parses")
}

/// The query behind `topk_find`: "latest N tasks" — the interactive
/// drill-down shape the paper's agent answers over and over. Pre-PR5 the
/// leading sort blocked limit pushdown, so the agent sorted the whole
/// materialized frame per call; now the pair executes as a streaming
/// top-k scan (sorted-index cursor / bounded per-shard selection), with
/// zero document decodes.
fn topk_query() -> provql::Query {
    provql::parse(
        r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(5)"#,
    )
    .expect("bench query parses")
}

/// The mixed-load workload shape: a seed corpus, then `MIXED_BURSTS`
/// ingest bursts of `MIXED_BURST_SIZE` streaming messages, each followed
/// by a storm of `MIXED_STORM` dashboard queries cycling through a small
/// repeated set — the §5.2 interactive pattern (ingest never stops,
/// monitoring queries repeat).
const MIXED_SEED: usize = 2_048;
const MIXED_BURSTS: usize = 12;
const MIXED_BURST_SIZE: usize = 256;
const MIXED_STORM: usize = 48;

fn mixed_corpus() -> Vec<std::sync::Arc<prov_model::TaskMessage>> {
    (0..MIXED_SEED + MIXED_BURSTS * MIXED_BURST_SIZE)
        .map(|i| {
            std::sync::Arc::new(
                prov_model::TaskMessageBuilder::new(
                    format!("t{i}"),
                    format!("wf-{}", i % 50),
                    format!("act{}", i % 8),
                )
                .host(format!("node{:03}", i % 64))
                .uses("x", i as f64)
                .generates("y", (i * 2) as f64)
                .span(i as f64, i as f64 + 1.0)
                .build(),
            )
        })
        .collect()
}

/// The repeated dashboard set: a pushed selective find, a columnar
/// group-by, a pushed top-k, and a column distinct — the shapes a
/// monitoring loop reissues verbatim (which is what makes the plan-keyed
/// result cache earn its keep).
fn mixed_query_texts() -> [&'static str; 4] {
    [
        r#"df[df["workflow_id"] == "wf-7"][["task_id", "y"]].head(20)"#,
        r#"df.groupby("activity_id")["duration"].mean()"#,
        r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(5)"#,
        r#"df["y"].unique()"#,
    ]
}

/// The store behind `parallel_scan`: the benchmark corpus in a pinned
/// 8-shard document store (shard count never changes scan results; pinning
/// it keeps the two sides comparable across runner classes), scanned with
/// an unselective columnar filter so the whole 100k-row vector set is
/// evaluated per probe.
fn parallel_scan_store() -> prov_db::DocumentStore {
    let store = prov_db::DocumentStore::with_shards(8);
    store.enable_columnar();
    store.insert_many(provdb_corpus().iter().map(|m| m.to_value()).collect());
    store
}

fn run_columnar_query(
    db: &prov_db::ProvenanceDatabase,
    q: &provql::Query,
    use_columnar: bool,
) -> usize {
    match prov_db::try_execute_with(db, q, use_columnar) {
        prov_db::Pushdown::Executed(out) => out.expect("query runs").len(),
        prov_db::Pushdown::NeedsFullFrame(reason) => {
            panic!("bench query was not served by the scan: {reason}")
        }
    }
}

fn provdb_group() -> prov_db::GroupSpec {
    use prov_db::{AggOp, Aggregate};
    prov_db::GroupSpec {
        key: "activity_id".into(),
        aggs: vec![
            Aggregate {
                path: "generated.y".into(),
                op: AggOp::Mean,
            },
            Aggregate {
                path: "generated.y".into(),
                op: AggOp::Count,
            },
        ],
    }
}

fn best_of(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn p50(mut probe: impl FnMut() -> usize) -> f64 {
    let mut times: Vec<f64> = (0..101)
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(probe());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One isolated measurement (child-process mode); returns seconds.
fn provdb_measure(which: &str) -> f64 {
    use bench::baseline::BaselineDatabase;
    use prov_db::{DocQuery, ProvenanceDatabase};

    let msgs = provdb_corpus();
    match which {
        "ingest-baseline" => best_of(5, || {
            let db = BaselineDatabase::new();
            std::hint::black_box(db.insert_batch(&msgs));
        }),
        // The streaming ingest path: accept the broker's shared handles
        // (what a keeper holds when its flush fires). Milliseconds per
        // run, so take the best of many — the CI regression gate compares
        // against this number and must not ride scheduler noise.
        "ingest-sharded" => {
            let shared: Vec<std::sync::Arc<prov_model::TaskMessage>> =
                msgs.iter().cloned().map(std::sync::Arc::new).collect();
            best_of(10, || {
                let db = ProvenanceDatabase::new();
                std::hint::black_box(db.insert_batch_shared(shared.iter().cloned()));
            })
        }
        // Accept + materialize all three views (the full deferred cost, for
        // transparency next to the accept-path number).
        "ingest-sharded-materialized" => {
            let shared: Vec<std::sync::Arc<prov_model::TaskMessage>> =
                msgs.iter().cloned().map(std::sync::Arc::new).collect();
            best_of(5, || {
                let db = ProvenanceDatabase::new();
                db.insert_batch_shared(shared.iter().cloned());
                db.flush_views();
                std::hint::black_box(db.insert_count());
            })
        }
        "find-baseline" => {
            let db = BaselineDatabase::new();
            db.insert_batch(&msgs);
            let q = provdb_find_query();
            p50(|| db.documents.find(&q).len())
        }
        "find-sharded" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let q = provdb_find_query();
            p50(|| db.find(&q).len())
        }
        // The pre-pushdown agent path: every query materializes the whole
        // corpus into a DataFrame (docs → TaskMessages → from_messages)
        // and row-scans it. This is what `provdb_query` did before plans.
        "query-scan" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let queries = pushdown_queries();
            // Same rep count as query-pushdown: best-of-N favors the side
            // with more samples, so an asymmetric N would bias the ratio.
            best_of(5, || {
                for q in &queries {
                    let frame = prov_db::full_frame(&db);
                    std::hint::black_box(provql::execute(q, &frame).expect("query runs"));
                }
            })
        }
        // Plan-then-push: equality conjuncts probe the hash indexes and
        // only the surviving documents' referenced columns become a frame.
        "query-pushdown" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let queries = pushdown_queries();
            best_of(5, || {
                for q in &queries {
                    match prov_db::try_execute(&db, q) {
                        prov_db::Pushdown::Executed(out) => {
                            std::hint::black_box(out.expect("query runs"));
                        }
                        prov_db::Pushdown::NeedsFullFrame(reason) => {
                            panic!("bench query was not pushed: {reason}")
                        }
                    }
                }
            })
        }
        // Selective find through both scan paths of the current engine:
        // index probe + decode ~2k surviving docs into a projected frame
        // vs index probe + column-vector gather (no decode at all).
        "columnar-find-scan" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let (find, _) = columnar_queries();
            p50(|| run_columnar_query(&db, &find, false))
        }
        "columnar-find" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let (find, _) = columnar_queries();
            p50(|| run_columnar_query(&db, &find, true))
        }
        // Unselective corpus-wide aggregate: decode all 100k docs into a
        // projected frame vs building the two referenced columns straight
        // from the vectors. This is the shape that used to be servable
        // only by the cached oracle.
        "columnar-agg-scan" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let (_, agg) = columnar_queries();
            best_of(5, || {
                std::hint::black_box(run_columnar_query(&db, &agg, false));
            })
        }
        "columnar-agg" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let (_, agg) = columnar_queries();
            best_of(5, || {
                std::hint::black_box(run_columnar_query(&db, &agg, true));
            })
        }
        // Top-k through both agent paths on the current engine: sort the
        // whole (pre-built, cached-oracle-style) frame per query vs the
        // pushed sort+limit scan. The frame side is what `provdb_query`
        // did for this shape before sort pushdown existed.
        "topk-frame" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let frame = prov_db::full_frame(&db);
            let q = topk_query();
            p50(|| provql::execute(&q, &frame).expect("query runs").len())
        }
        "topk-push" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let q = topk_query();
            p50(|| run_columnar_query(&db, &q, true))
        }
        // Unindexed membership filter through both scan paths of the
        // current engine: full decode + row-by-row isin on the frame vs
        // the dictionary kernel (code-compiled literals, zone-map chunk
        // skipping, selection vectors). The decode side rebuilds the
        // corpus per probe, so best-of-N keeps the runtime sane.
        "dict-filter-scan" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let q = dict_filter_query();
            best_of(5, || {
                std::hint::black_box(run_columnar_query(&db, &q, false));
            })
        }
        "dict-filter" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let q = dict_filter_query();
            best_of(5, || {
                std::hint::black_box(run_columnar_query(&db, &q, true));
            })
        }
        // Single-key grouped aggregate through both agent paths on the
        // current engine: hash per-row Vec<Value> keys over the cached
        // full frame vs grouping directly over dictionary codes.
        "vec-groupby-frame" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let frame = prov_db::full_frame(&db);
            let q = vectorized_groupby_query();
            best_of(5, || {
                std::hint::black_box(provql::execute(&q, &frame).expect("query runs"));
            })
        }
        "vec-groupby-codes" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let q = vectorized_groupby_query();
            best_of(5, || {
                std::hint::black_box(run_columnar_query(&db, &q, true));
            })
        }
        // The shard-parallel columnar scan vs the forced-sequential path
        // (PROVDB_THREADS=1 semantics) on the same 8-shard store. On a
        // 1-core runner the auto-tuned worker count is 1 and the two
        // sides coincide (~1.0x) — the committed number records that, and
        // the runner metadata in the JSON says how many cores were seen.
        "parallel-scan-seq" | "parallel-scan-par" => {
            let store = parallel_scan_store();
            let threads = if which.ends_with("par") {
                prov_db::DocumentStore::new().scan_threads()
            } else {
                1
            };
            store.set_scan_threads(threads);
            let bound = prov_model::Value::Float(0.5);
            use dataframe::CmpOp;
            p50(|| {
                store
                    .columnar_scan(&[("duration", CmpOp::Gt, &bound)], None)
                    .expect("columnar scan servable")
                    .len()
            })
        }
        // Concurrent ingest bursts interleaved with dashboard query
        // storms, through the pre-serving agent path: each query tries
        // pushdown and otherwise re-executes its stages over a
        // generation-keyed whole-frame cache (exactly what
        // `provdb_query` did before snapshots + the plan cache), all on
        // the caller's thread.
        "mixed-load-baseline" => {
            let msgs = mixed_corpus();
            let queries: Vec<provql::Query> = mixed_query_texts()
                .iter()
                .map(|t| provql::parse(t).expect("bench query parses"))
                .collect();
            best_of(3, || {
                let db = ProvenanceDatabase::new();
                let (seed, rest) = msgs.split_at(MIXED_SEED);
                db.insert_batch_shared(seed.iter().cloned());
                let mut cached: Option<(u64, dataframe::DataFrame)> = None;
                for burst in rest.chunks(MIXED_BURST_SIZE) {
                    db.insert_batch_shared(burst.iter().cloned());
                    for i in 0..MIXED_STORM {
                        let q = &queries[i % queries.len()];
                        match prov_db::try_execute(&db, q) {
                            prov_db::Pushdown::Executed(out) => {
                                std::hint::black_box(out.expect("query runs"));
                            }
                            prov_db::Pushdown::NeedsFullFrame(_) => {
                                let generation = db.generation();
                                if cached.as_ref().map(|(g, _)| *g) != Some(generation) {
                                    cached = Some((generation, prov_db::full_frame(&db)));
                                }
                                let frame = &cached.as_ref().expect("just filled").1;
                                std::hint::black_box(
                                    provql::execute(q, frame).expect("query runs"),
                                );
                            }
                        }
                    }
                }
            })
        }
        // The same workload through the serving stack: storms submitted
        // to the bounded worker pool, answered from generation-pinned
        // snapshots through the plan-keyed result cache.
        "mixed-load-serve" => {
            let msgs = mixed_corpus();
            let texts = mixed_query_texts();
            best_of(3, || {
                let db = ProvenanceDatabase::shared();
                let server = prov_db::QueryServer::start(
                    db.clone(),
                    prov_db::ServeConfig {
                        workers: prov_db::ServeConfig::default().workers,
                        queue_depth: MIXED_STORM,
                    },
                );
                let (seed, rest) = msgs.split_at(MIXED_SEED);
                db.insert_batch_shared(seed.iter().cloned());
                for burst in rest.chunks(MIXED_BURST_SIZE) {
                    db.insert_batch_shared(burst.iter().cloned());
                    let pending: Vec<_> = (0..MIXED_STORM)
                        .map(|i| {
                            server
                                .submit(texts[i % texts.len()])
                                .expect("queue sized for the storm")
                        })
                        .collect();
                    for rx in pending {
                        let resp = rx.recv().expect("worker replies");
                        std::hint::black_box(resp.result.expect("query runs"));
                    }
                }
            })
        }
        "aggregate-baseline" => {
            let db = BaselineDatabase::new();
            db.insert_batch(&msgs);
            let g = provdb_group();
            best_of(5, || {
                std::hint::black_box(db.documents.aggregate(&DocQuery::new(), &g).len());
            })
        }
        "aggregate-sharded" => {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            let g = provdb_group();
            best_of(5, || {
                std::hint::black_box(db.aggregate(&DocQuery::new(), &g).len());
            })
        }
        // Million-edge lineage closure through both graph read paths of
        // the current engine: the locking adjacency-map traversal (the
        // differential oracle) vs the CSR kernels. The CSR build runs
        // outside the timed region — it is paid once per store generation
        // and memoized (see docs/lineage.md).
        "graph-traverse-oracle" => {
            let store = graph_lineage_store();
            best_of(5, || {
                std::hint::black_box(store.upstream_lineage(GRAPH_DEEP_TASK, usize::MAX).len());
            })
        }
        "graph-traverse-csr" => {
            let store = graph_lineage_store();
            let csr = prov_db::CsrGraph::build(&store);
            best_of(5, || {
                std::hint::black_box(csr.upstream(GRAPH_DEEP_TASK, usize::MAX).len());
            })
        }
        // 4-hop any-relation neighborhood from a mid-graph task.
        "graph-khop-oracle" => {
            let store = graph_lineage_store();
            best_of(5, || {
                std::hint::black_box(store.khop(GRAPH_MID_TASK, 4).len());
            })
        }
        "graph-khop-csr" => {
            let store = graph_lineage_store();
            let csr = prov_db::CsrGraph::build(&store);
            best_of(5, || {
                std::hint::black_box(csr.khop(GRAPH_MID_TASK, 4).len());
            })
        }
        // Durability tax on the streaming path: the same
        // accept + materialize workload with no disk vs WAL-logged (and
        // chunk-sealed) through a durable store. Disk-bound, so fewer
        // repetitions and a parity-flagged entry.
        "wal-ingest-memory" => {
            let shared: Vec<std::sync::Arc<prov_model::TaskMessage>> =
                msgs.iter().cloned().map(std::sync::Arc::new).collect();
            best_of(3, || {
                let db = ProvenanceDatabase::new();
                db.insert_batch_shared(shared.iter().cloned());
                db.flush_views();
                std::hint::black_box(db.insert_count());
            })
        }
        "wal-ingest-durable" => {
            let shared: Vec<std::sync::Arc<prov_model::TaskMessage>> =
                msgs.iter().cloned().map(std::sync::Arc::new).collect();
            let root =
                std::env::temp_dir().join(format!("provdb-bench-wal-{}", std::process::id()));
            let t = best_of(3, || {
                let _ = std::fs::remove_dir_all(&root);
                let db = ProvenanceDatabase::open(&root).expect("open durable bench store");
                db.insert_batch_shared(shared.iter().cloned());
                db.flush_views();
                std::hint::black_box(db.insert_count());
            });
            let _ = std::fs::remove_dir_all(&root);
            t
        }
        // Recovery speed: rebuild the store by re-ingesting the source
        // messages (the only option without durability) vs
        // recovery-by-replay from sealed segments + the WAL tail.
        "recovery-reingest" => best_of(3, || {
            let db = ProvenanceDatabase::new();
            db.insert_batch(&msgs);
            std::hint::black_box(db.insert_count());
        }),
        "recovery-replay" => {
            let root =
                std::env::temp_dir().join(format!("provdb-bench-replay-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            {
                let shared: Vec<std::sync::Arc<prov_model::TaskMessage>> =
                    msgs.iter().cloned().map(std::sync::Arc::new).collect();
                let db = ProvenanceDatabase::open(&root).expect("open durable bench store");
                db.insert_batch_shared(shared.iter().cloned());
                db.flush_views();
            }
            let t = best_of(3, || {
                let db = ProvenanceDatabase::open(&root).expect("recover bench store");
                std::hint::black_box(db.insert_count());
            });
            let _ = std::fs::remove_dir_all(&root);
            t
        }
        // Cold open over an explicitly sealed corpus: eager replay of
        // every sealed row into RAM (the pre-out-of-core behaviour,
        // forced via `eager_open`) vs the lazy path that loads only the
        // segment directory + zone-map footers and replays the WAL tail.
        // Seeding runs once outside the timed region; both sides open
        // the same files.
        "cold-open-eager" | "cold-open-lazy" => {
            let root =
                std::env::temp_dir().join(format!("provdb-bench-{which}-{}", std::process::id()));
            seed_sealed_store(&root, &msgs);
            let eager = which == "cold-open-eager";
            let t = best_of(3, || {
                let opts = prov_db::DurabilityOptions {
                    eager_open: eager,
                    ..Default::default()
                };
                let db =
                    ProvenanceDatabase::open_with(&root, opts).expect("open sealed bench store");
                std::hint::black_box(db.insert_count());
            });
            let _ = std::fs::remove_dir_all(&root);
            t
        }
        // Steady-state paged-read tax: the dict-filter columnar scan on
        // a fully resident (eager-opened) store vs the same scan through
        // the chunk pager under a deliberately tiny 4 MiB budget — small
        // enough that every probe re-pages cold chunks from the segment
        // files, the bounded-memory worst case rather than a warm-cache
        // best case.
        "ooc-scan-resident" | "ooc-scan-paged" => {
            let root =
                std::env::temp_dir().join(format!("provdb-bench-{which}-{}", std::process::id()));
            seed_sealed_store(&root, &msgs);
            let opts = prov_db::DurabilityOptions {
                eager_open: which == "ooc-scan-resident",
                resident_bytes: Some(4 << 20),
                ..Default::default()
            };
            let db = ProvenanceDatabase::open_with(&root, opts).expect("open sealed bench store");
            let q = dict_filter_query();
            let t = best_of(5, || {
                std::hint::black_box(run_columnar_query(&db, &q, true));
            });
            drop(db);
            let _ = std::fs::remove_dir_all(&root);
            t
        }
        other => panic!("unknown provdb measurement `{other}`"),
    }
}

/// Deepest task of the graph bench corpus (last node of the last layer).
const GRAPH_DEEP_TASK: &str = "t249999";
/// A mid-graph task for the k-hop measurement.
const GRAPH_MID_TASK: &str = "t125000";

/// Million-edge layered lineage DAG for the graph kernels: 250 layers ×
/// 1000 tasks, each task `prov:wasInformedBy` 4 tasks of the previous
/// layer (deterministic LCG picks), ids `t{i}`. ~996k edges; the
/// transitive upstream closure from [`GRAPH_DEEP_TASK`] touches nearly
/// every layer below it.
fn graph_lineage_store() -> prov_db::GraphStore {
    const LAYERS: usize = 250;
    const WIDTH: usize = 1000;
    let store = prov_db::GraphStore::new();
    let mut batch = prov_db::GraphBatch::new();
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    for layer in 0..LAYERS {
        for j in 0..WIDTH {
            let id = layer * WIDTH + j;
            batch.upsert_node(format!("t{id}"), "prov:Activity", prov_model::Map::new());
            if layer > 0 {
                for _ in 0..4 {
                    rng = rng
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    let parent = (layer - 1) * WIDTH + (rng >> 33) as usize % WIDTH;
                    batch.add_edge(format!("t{id}"), format!("t{parent}"), "prov:wasInformedBy");
                }
            }
        }
    }
    store.apply_batch(batch);
    store
}

/// Run one measurement in a fresh child process; falls back to in-process
/// when re-spawning the binary is not possible.
fn provdb_measure_isolated(which: &str) -> f64 {
    let child = std::env::current_exe().ok().and_then(|exe| {
        let out = std::process::Command::new(exe)
            .args(["--provdb-measure", which])
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        String::from_utf8(out.stdout)
            .ok()?
            .trim()
            .parse::<f64>()
            .ok()
    });
    child.unwrap_or_else(|| provdb_measure(which))
}

/// Measure batch ingest, indexed find (p50), and group-by aggregation on a
/// 100k-message corpus for both engines, each in its own process.
fn provdb_benchmark() -> ProvDbReport {
    let ingest_baseline = provdb_measure_isolated("ingest-baseline") * 1e3;
    let measurements = vec![
        ProvDbMeasurement {
            name: "batch_ingest_100k_ms",
            unit: "ms",
            baseline: ingest_baseline,
            sharded: provdb_measure_isolated("ingest-sharded") * 1e3,
            parity: false,
        },
        ProvDbMeasurement {
            name: "batch_ingest_100k_materialized_ms",
            unit: "ms",
            baseline: ingest_baseline,
            sharded: provdb_measure_isolated("ingest-sharded-materialized") * 1e3,
            parity: false,
        },
        ProvDbMeasurement {
            name: "indexed_find_p50_us",
            unit: "\u{b5}s",
            baseline: provdb_measure_isolated("find-baseline") * 1e6,
            sharded: provdb_measure_isolated("find-sharded") * 1e6,
            parity: false,
        },
        ProvDbMeasurement {
            name: "groupby_aggregate_100k_ms",
            unit: "ms",
            baseline: provdb_measure_isolated("aggregate-baseline") * 1e3,
            sharded: provdb_measure_isolated("aggregate-sharded") * 1e3,
            parity: false,
        },
        // Unlike the rows above, both sides here run on the *current*
        // engine: the contrast is the agent's query path (materialize the
        // whole corpus per query vs plan-then-push into the indexes).
        ProvDbMeasurement {
            name: "query_pushdown_vs_scan",
            unit: "ms",
            baseline: provdb_measure_isolated("query-scan") * 1e3,
            sharded: provdb_measure_isolated("query-pushdown") * 1e3,
            parity: false,
        },
        // Current engine on both sides again: the decode-based projected
        // scan vs the columnar scan, on a selective find and on an
        // unselective corpus-wide aggregate.
        ProvDbMeasurement {
            name: "columnar_find",
            unit: "\u{b5}s",
            baseline: provdb_measure_isolated("columnar-find-scan") * 1e6,
            sharded: provdb_measure_isolated("columnar-find") * 1e6,
            parity: false,
        },
        ProvDbMeasurement {
            name: "columnar_aggregate",
            unit: "ms",
            baseline: provdb_measure_isolated("columnar-agg-scan") * 1e3,
            sharded: provdb_measure_isolated("columnar-agg") * 1e3,
            parity: false,
        },
        // Current engine on both sides: sort-the-full-frame vs the pushed
        // top-k scan, and sequential vs shard-parallel columnar scans.
        ProvDbMeasurement {
            name: "topk_find",
            unit: "ms",
            baseline: provdb_measure_isolated("topk-frame") * 1e3,
            sharded: provdb_measure_isolated("topk-push") * 1e3,
            parity: false,
        },
        ProvDbMeasurement {
            name: "parallel_scan",
            unit: "ms",
            baseline: provdb_measure_isolated("parallel-scan-seq") * 1e3,
            sharded: provdb_measure_isolated("parallel-scan-par") * 1e3,
            // On a 1-core runner both sides coincide; the gate must not
            // treat noise around 1.0x as a regression.
            parity: true,
        },
        // Current engine on both sides: the dictionary/zone-map kernels
        // vs their decode- and frame-based equivalents.
        ProvDbMeasurement {
            name: "dict_filter",
            unit: "ms",
            baseline: provdb_measure_isolated("dict-filter-scan") * 1e3,
            sharded: provdb_measure_isolated("dict-filter") * 1e3,
            parity: false,
        },
        ProvDbMeasurement {
            name: "vectorized_groupby",
            unit: "ms",
            baseline: provdb_measure_isolated("vec-groupby-frame") * 1e3,
            sharded: provdb_measure_isolated("vec-groupby-codes") * 1e3,
            parity: false,
        },
        // Both sides run the same ingest-bursts + query-storms workload
        // on the current engine: the pre-serving single-threaded agent
        // path vs the QueryServer pool with snapshots + the plan cache.
        ProvDbMeasurement {
            name: "mixed_load",
            unit: "ms",
            baseline: provdb_measure_isolated("mixed-load-baseline") * 1e3,
            sharded: provdb_measure_isolated("mixed-load-serve") * 1e3,
            parity: false,
        },
        // Both sides run on the current engine's graph backend: the
        // locking adjacency-map traversal (kept as the differential
        // oracle) vs the CSR kernels, over a million-edge lineage DAG.
        ProvDbMeasurement {
            name: "graph_traverse",
            unit: "ms",
            baseline: provdb_measure_isolated("graph-traverse-oracle") * 1e3,
            sharded: provdb_measure_isolated("graph-traverse-csr") * 1e3,
            parity: false,
        },
        ProvDbMeasurement {
            name: "graph_khop",
            unit: "ms",
            baseline: provdb_measure_isolated("graph-khop-oracle") * 1e3,
            sharded: provdb_measure_isolated("graph-khop-csr") * 1e3,
            parity: false,
        },
        // Durability entries, both sides on the current engine. Ratios
        // near 1.0x on both (the tax of logging, and replay vs rebuild)
        // and disk-bound, so parity-flagged: the gate guards against a
        // durable path collapsing, not scheduler/disk jitter.
        ProvDbMeasurement {
            name: "wal_ingest",
            unit: "ms",
            baseline: provdb_measure_isolated("wal-ingest-memory") * 1e3,
            sharded: provdb_measure_isolated("wal-ingest-durable") * 1e3,
            parity: true,
        },
        // Recovery is no longer a near-1x parity contrast: since the
        // out-of-core work, open loads only the segment directory +
        // footers and the WAL tail, so replay beats re-ingest by the
        // sealed fraction of history.
        ProvDbMeasurement {
            name: "recovery_replay",
            unit: "ms",
            baseline: provdb_measure_isolated("recovery-reingest") * 1e3,
            sharded: provdb_measure_isolated("recovery-replay") * 1e3,
            parity: false,
        },
        // Both sides open the same sealed files; the contrast is eager
        // replay of sealed rows vs the lazy out-of-core open.
        ProvDbMeasurement {
            name: "cold_open",
            unit: "ms",
            baseline: provdb_measure_isolated("cold-open-eager") * 1e3,
            sharded: provdb_measure_isolated("cold-open-lazy") * 1e3,
            parity: false,
        },
        // The paged side deliberately runs under a 4 MiB resident budget
        // (the bounded-memory worst case, re-paging every chunk per
        // probe), so it is expected to trail the resident side — parity
        // keeps the gate guarding against collapse, not the ratio.
        ProvDbMeasurement {
            name: "out_of_core_scan",
            unit: "ms",
            baseline: provdb_measure_isolated("ooc-scan-resident") * 1e3,
            sharded: provdb_measure_isolated("ooc-scan-paged") * 1e3,
            parity: true,
        },
    ];
    let probe = prov_db::DocumentStore::new();
    ProvDbReport {
        messages: 100_000,
        shards: probe.shard_count(),
        threads: probe.scan_threads(),
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        shards_override: std::env::var("PROVDB_SHARDS").ok(),
        threads_override: std::env::var("PROVDB_THREADS").ok(),
        chunk: probe.chunk_rows(),
        chunk_override: std::env::var("PROVDB_CHUNK").ok(),
        resident_mb: std::env::var("PROVDB_RESIDENT_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(256),
        resident_override: std::env::var("PROVDB_RESIDENT_MB").ok(),
        measurements,
        mixed: mixed_load_profile(),
    }
}

/// One observed mixed-load run through the serving stack, for the
/// `mixed_load_profile` metadata object: ingest throughput of the burst
/// path and the serve layer's own latency/cache ledger.
fn mixed_load_profile() -> MixedLoadProfile {
    use prov_db::{ProvenanceDatabase, QueryServer, ServeConfig};
    let msgs = mixed_corpus();
    let texts = mixed_query_texts();
    let db = ProvenanceDatabase::shared();
    let config = ServeConfig {
        workers: ServeConfig::default().workers,
        queue_depth: MIXED_STORM,
    };
    let workers = config.workers;
    let server = QueryServer::start(db.clone(), config);
    let (seed, rest) = msgs.split_at(MIXED_SEED);
    db.insert_batch_shared(seed.iter().cloned());
    let mut ingest_secs = 0.0f64;
    for burst in rest.chunks(MIXED_BURST_SIZE) {
        let t = std::time::Instant::now();
        db.insert_batch_shared(burst.iter().cloned());
        ingest_secs += t.elapsed().as_secs_f64();
        let pending: Vec<_> = (0..MIXED_STORM)
            .map(|i| {
                server
                    .submit(texts[i % texts.len()])
                    .expect("queue sized for the storm")
            })
            .collect();
        for rx in pending {
            let resp = rx.recv().expect("worker replies");
            std::hint::black_box(resp.result.expect("query runs"));
        }
    }
    let stats = server.stats();
    MixedLoadProfile {
        workers,
        ingest_msgs_per_s: (MIXED_BURSTS * MIXED_BURST_SIZE) as f64 / ingest_secs.max(1e-9),
        query_p50_us: stats.p50_micros as f64,
        query_p99_us: stats.p99_micros as f64,
        queries: stats.completed,
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
    }
}

/// The scale-independence claim (§5.2, §5.4): prompt size depends on
/// workflow complexity, not on the number of workflow inputs or tasks.
fn scale_independence() -> String {
    let mut out = String::from(
        "Scale independence: dynamic-schema prompt size vs number of workflow inputs.\n",
    );
    out.push_str(&format!(
        "{:>8} {:>8} {:>12} {:>14} {:>14}\n",
        "inputs", "tasks", "activities", "schema fields", "prompt tokens"
    ));
    for n in [1usize, 10, 100, 1000] {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        workflows::run_sweep(&hub, sim_clock(), 42, n).expect("sweep");
        let msgs: Vec<prov_model::TaskMessage> =
            sub.drain().iter().map(|m| (**m).clone()).collect();
        let tasks = msgs.len();
        let ctx = agent_core::ContextManager::default_sized();
        ctx.ingest_all(&msgs);
        let system = agent_core::PromptBuilder::system(RagStrategy::Full, &ctx);
        let schema = ctx.schema();
        out.push_str(&format!(
            "{:>8} {:>8} {:>12} {:>14} {:>14}\n",
            n,
            tasks,
            schema.activity_count(),
            schema.field_count(),
            count_tokens(&system)
        ));
    }
    out.push_str(
        "(tokens stay flat as inputs scale 1 -> 1000: the metadata-driven design is\n\
         independent of provenance volume, as claimed in §5.4.)\n",
    );
    out
}
