//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench --bin repro --release            # everything
//! cargo run -p bench --bin repro --release -- --fig8  # one artifact
//! ```
//!
//! Writes CSVs next to the textual output under `target/repro/`.

use agent_core::RagStrategy;
use eval::{
    evaluate_routing, fig6, fig7, fig8, fig9, latency_deep_dive, latency_report, render_demo,
    run_chem_demo, run_paper_evaluation, scoring_agreement, table1, table2, to_csv, Experiment,
};
use llm_sim::count_tokens;
use prov_model::sim_clock;
use prov_stream::StreamingHub;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    let experiment = Experiment::default();
    println!(
        "provagent repro — seed {}, {} synthetic inputs, {} runs/query\n",
        experiment.seed, experiment.n_inputs, experiment.runs_per_query
    );

    if want("--table1") {
        println!("{}", table1());
    }
    if want("--table2") {
        println!("{}", table2());
    }

    let needs_matrix = want("--fig6")
        || want("--fig7")
        || want("--fig8")
        || want("--fig9")
        || want("--latency")
        || want("--csv");
    if needs_matrix {
        eprintln!("running evaluation matrix (5 models × configs × 20 queries × 3 runs)…");
        let results = run_paper_evaluation(&experiment);
        if want("--fig6") {
            println!("{}", fig6(&results));
        }
        if want("--fig7") {
            println!("{}", fig7(&results));
        }
        if want("--fig8") {
            println!("{}", fig8(&results));
        }
        if want("--fig9") {
            println!("{}", fig9(&results));
        }
        if want("--latency") {
            println!("{}", latency_report(&results));
        }
        if want("--latency-deep") {
            println!("{}", latency_deep_dive(&results));
        }
        let dir = std::path::Path::new("target/repro");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join("records.csv");
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = f.write_all(to_csv(&results).as_bytes());
                eprintln!("wrote {}", path.display());
            }
        }
    }

    if want("--chem") {
        eprintln!("running §5.3 chemistry live-interaction demo (ethanol)…");
        let observations = run_chem_demo(7);
        println!("{}", render_demo(&observations));
    }

    if want("--am") {
        eprintln!("running the additive-manufacturing live-interaction study (§5.4 third domain)…");
        let observations = eval::run_am_demo(42, 8);
        println!("{}", eval::render_am_demo(&observations));
    }

    if want("--scale") {
        println!("{}", scale_independence());
    }

    if want("--scoring") {
        eprintln!("comparing the three §3 scoring methods on GPT generations…");
        let report = scoring_agreement(&experiment, llm_sim::ModelId::Gpt, llm_sim::JudgeId::Gpt);
        println!("{}", report.render());
    }

    if want("--routing") {
        eprintln!("training + evaluating the per-class LLM router (two seeds)…");
        let train = Experiment::default();
        let test = Experiment {
            seed: 1337,
            ..Experiment::default()
        };
        let outcome = evaluate_routing(&train, &test, llm_sim::JudgeId::Gpt);
        println!("{}", outcome.policy.render());
        println!("{}", outcome.render());
    }
}

/// The scale-independence claim (§5.2, §5.4): prompt size depends on
/// workflow complexity, not on the number of workflow inputs or tasks.
fn scale_independence() -> String {
    let mut out = String::from(
        "Scale independence: dynamic-schema prompt size vs number of workflow inputs.\n",
    );
    out.push_str(&format!(
        "{:>8} {:>8} {:>12} {:>14} {:>14}\n",
        "inputs", "tasks", "activities", "schema fields", "prompt tokens"
    ));
    for n in [1usize, 10, 100, 1000] {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        workflows::run_sweep(&hub, sim_clock(), 42, n).expect("sweep");
        let msgs: Vec<prov_model::TaskMessage> =
            sub.drain().iter().map(|m| (**m).clone()).collect();
        let tasks = msgs.len();
        let ctx = agent_core::ContextManager::default_sized();
        ctx.ingest_all(&msgs);
        let system = agent_core::PromptBuilder::system(RagStrategy::Full, &ctx);
        let schema = ctx.schema();
        out.push_str(&format!(
            "{:>8} {:>8} {:>12} {:>14} {:>14}\n",
            n,
            tasks,
            schema.activity_count(),
            schema.field_count(),
            count_tokens(&system)
        ));
    }
    out.push_str(
        "(tokens stay flat as inputs scale 1 -> 1000: the metadata-driven design is\n\
         independent of provenance volume, as claimed in §5.4.)\n",
    );
    out
}
