//! Crash-point-injection harness for the durable provenance store.
//!
//! The recovery differential suite simulates crashes by truncating WAL
//! bytes; this binary injects the real thing. For each run it spawns
//! itself as a child (`--crash-child`) with `PROVDB_CRASH_AFTER=<n>`:
//! the child streams a deterministic corpus through a durable store and
//! the store's WAL writer syncs exactly `n` records and then
//! `abort()`s — mid-batch, views half-applied, by design at the worst
//! spot. The parent reopens the directory and holds recovery to the
//! contract:
//!
//! * the recovered insert count is exactly `min(n, total)` — nothing a
//!   sync covered is lost, nothing past the abort leaks in;
//! * every golden pipeline answers **byte-identically** to a
//!   never-crashed oracle over that prefix — through **both** open
//!   paths: the default lazy open (sealed rows attached cold and paged
//!   on demand, kv/graph hydrated on first access) and a forced eager
//!   replay (`eager_open`), so crash recovery is held on the
//!   out-of-core path too.
//!
//! Crash points come from a seeded LCG so a CI leg loops a reproducible
//! schedule: `crash_harness --runs 12 --seed 7`. Any mismatch leaves the
//! durable directory in place (under `PROVDB_TEST_ARTIFACT_DIR` when
//! set) and exits non-zero so CI can upload the bytes.

use prov_db::ProvenanceDatabase;
use prov_model::{TaskMessage, TaskMessageBuilder, TaskStatus};
use provql::{execute, parse};
use std::path::PathBuf;
use std::sync::Arc;

const TOTAL: usize = 600;
const BATCH: usize = 7;

const GOLDEN: &[&str] = &[
    r#"len(df)"#,
    r#"len(df[df["status"] == "ERROR"])"#,
    r#"df[df["status"] != "ERROR"]["duration"].sum()"#,
    r#"df["y"].sum()"#,
    r#"df.groupby("activity_id")["duration"].mean()"#,
    r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(5)"#,
    r#"len(df[df["hostname"].isin(["n0", "n2"])])"#,
    r#"df["status"].value_counts()"#,
];

/// Same corpus family as `tests/recovery_differential.rs`: NaN payloads
/// in `y` (never a sort key), lineage and agents sprinkled in.
fn corpus(n: usize) -> Vec<TaskMessage> {
    (0..n)
        .map(|i| {
            let status = match i % 4 {
                0 => TaskStatus::Error,
                1 => TaskStatus::Running,
                _ => TaskStatus::Finished,
            };
            let y = if i % 11 == 3 {
                f64::NAN
            } else {
                i as f64 * 0.5
            };
            let mut b = TaskMessageBuilder::new(
                format!("t{i}"),
                format!("wf-{}", i % 3),
                format!("act{}", i % 2),
            )
            .host(format!("n{}", i % 4))
            .status(status)
            .span(i as f64, i as f64 + 1.5)
            .uses("y", y);
            if i % 7 == 2 && i > 0 {
                b = b.depends_on(format!("t{}", i - 1)).agent("agent-7");
            }
            b.build()
        })
        .collect()
}

/// Scrub the per-instance-random `HashMap` Debug order of DataFrame's
/// name→position index (derived from the compared column list).
fn scrub_index_maps(mut s: String) -> String {
    const KEY: &str = "index: {";
    let mut from = 0;
    while let Some(at) = s[from..].find(KEY) {
        let open = from + at + KEY.len() - 1;
        let Some(close) = s[open..].find('}') else {
            break;
        };
        s.replace_range(open..open + close + 1, "_");
        from += at + KEY.len();
    }
    s
}

fn fingerprint(db: &ProvenanceDatabase) -> Vec<String> {
    let frame = prov_db::full_frame(db);
    GOLDEN
        .iter()
        .map(|text| {
            let q = parse(text).expect("golden query parses");
            let full = execute(&q, &frame);
            let pushed = match prov_db::try_execute(db, &q) {
                prov_db::Pushdown::Executed(r) => format!("pushed:{r:?}"),
                prov_db::Pushdown::NeedsFullFrame(r) => format!("fallback:{r}"),
            };
            scrub_index_maps(format!("{text} => {full:?} | {pushed}"))
        })
        .collect()
}

/// Durability options forcing one of the two open paths, regardless of
/// any `PROVDB_EAGER_OPEN` in the environment.
fn open_opts(eager: bool) -> prov_db::DurabilityOptions {
    prov_db::DurabilityOptions {
        eager_open: eager,
        ..Default::default()
    }
}

fn artifact_root() -> PathBuf {
    std::env::var("PROVDB_TEST_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir())
}

/// Child: stream the corpus into the durable store at `dir`, flushing
/// every batch. `PROVDB_CRASH_AFTER` (set by the parent) aborts the
/// process from inside the WAL writer.
fn run_child(dir: &str) -> i32 {
    let msgs = corpus(TOTAL);
    let db = ProvenanceDatabase::open(dir).expect("child: open durable store");
    for chunk in msgs.chunks(BATCH) {
        db.insert_batch_shared(chunk.iter().cloned().map(Arc::new));
        db.flush_views();
    }
    0
}

fn run_parent(runs: u64, seed: u64) -> i32 {
    let exe = std::env::current_exe().expect("current_exe");
    let msgs = corpus(TOTAL);
    let root = artifact_root();
    let mut rng = seed.wrapping_mul(2).wrapping_add(1);
    let mut failures = 0;
    for run in 0..runs {
        rng = rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Crash points across the whole schedule, including a tail past
        // the corpus (clean completion) every so often.
        let crash_at = 1 + ((rng >> 33) as usize % (TOTAL + TOTAL / 10));
        let dir = root.join(format!(
            "provdb-crash-{}-run{}-at{}",
            std::process::id(),
            run,
            crash_at
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let status = std::process::Command::new(&exe)
            .args(["--crash-child", dir.to_str().expect("utf-8 dir")])
            .env("PROVDB_CRASH_AFTER", crash_at.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn crash child");
        let expect = crash_at.min(TOTAL) as u64;
        if crash_at >= TOTAL && !status.success() {
            eprintln!("run {run}: child crashed past the corpus (crash_at={crash_at})");
            failures += 1;
            continue;
        }
        // Recover through the default lazy path first (sealed prefix
        // attached cold, kv/graph hydrated on first access) …
        let lazy = ProvenanceDatabase::open_with(&dir, open_opts(false))
            .expect("parent: recover store (lazy)");
        let got = lazy.insert_count();
        let oracle = ProvenanceDatabase::new();
        oracle.insert_batch(&msgs[..got as usize]);
        let want = fingerprint(&oracle);
        let lazy_ok = fingerprint(&lazy) == want;
        let stats = lazy.durable_stats().expect("durable");
        let paged = lazy.pager_stats();
        drop(lazy);
        // … then again with eager replay forced: both open paths must
        // agree on the recovered prefix and every golden answer.
        let eager = ProvenanceDatabase::open_with(&dir, open_opts(true))
            .expect("parent: recover store (eager)");
        let eager_ok = eager.insert_count() == got && fingerprint(&eager) == want;
        drop(eager);
        if got != expect || !lazy_ok || !eager_ok {
            eprintln!(
                "run {run}: MISMATCH crash_at={crash_at} recovered={got} expect={expect} \
                 lazy_identical={lazy_ok} eager_identical={eager_ok}; artifacts kept at {}",
                dir.display()
            );
            failures += 1;
            continue;
        }
        println!(
            "run {run}: ok crash_at={crash_at} recovered={got} sealed_slots={} segments={} \
             wal_tail={} paged_in={}",
            stats.sealed_slots, stats.segments, stats.wal_tail, paged.paged_in
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    if failures > 0 {
        eprintln!("crash_harness: {failures}/{runs} runs FAILED");
        1
    } else {
        println!("crash_harness: {runs} runs, recovery byte-identical at every crash point");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 3 && args[1] == "--crash-child" {
        std::process::exit(run_child(&args[2]));
    }
    let mut runs = 8u64;
    let mut seed = 1u64;
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--runs" => runs = args[i + 1].parse().expect("--runs <u64>"),
            "--seed" => seed = args[i + 1].parse().expect("--seed <u64>"),
            other => panic!("unknown argument `{other}` (use --runs N --seed S)"),
        }
        i += 2;
    }
    std::process::exit(run_parent(runs, seed));
}
