//! The seed's value representation, preserved for honest benchmarking.
//!
//! The interned-`Sym` refactor rebuilt `prov_model::Value` around shared
//! strings and `Arc`'d containers, which makes `Clone` a refcount bump and
//! key construction allocation-free. The pre-refactor engine in
//! [`crate::baseline`] exists to measure those wins — so it must keep
//! paying the pre-refactor costs. [`SeedValue`] is the exact data layout
//! the seed shipped (`String` keys, owned `Vec`/`BTreeMap` containers,
//! deep `Clone`), together with ports of the lookup/compare/render helpers
//! the baseline store uses. Nothing outside the bench crate touches this.

use prov_model::{TaskMessage, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Map type the seed used for JSON objects: owned `String` keys.
pub type SeedMap = BTreeMap<String, SeedValue>;

/// The seed's JSON-like value: owned strings and containers, so `Clone`
/// copies every node — the cost profile the sharded engine is measured
/// against.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedValue {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// Owned UTF-8 string.
    Str(String),
    /// Owned array.
    Array(Vec<SeedValue>),
    /// Owned `String`-keyed object.
    Object(SeedMap),
}

impl SeedValue {
    /// Dotted-path lookup (port of the seed's `Value::get_path`).
    pub fn get_path(&self, path: &str) -> Option<&SeedValue> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                SeedValue::Object(m) => m.get(seg)?,
                SeedValue::Array(a) => a.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&SeedValue> {
        match self {
            SeedValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SeedValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SeedValue::Int(i) => Some(*i as f64),
            SeedValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// True if `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, SeedValue::Null)
    }

    fn kind_tag(&self) -> u8 {
        match self {
            SeedValue::Null => 0,
            SeedValue::Bool(_) => 1,
            SeedValue::Int(_) => 2,
            SeedValue::Float(_) => 3,
            SeedValue::Str(_) => 4,
            SeedValue::Array(_) => 5,
            SeedValue::Object(_) => 6,
        }
    }

    /// Total deterministic ordering with numeric coercion (port of the
    /// seed's `Value::compare`).
    pub fn compare(&self, other: &SeedValue) -> Ordering {
        use SeedValue::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Null, Null) => Ordering::Equal,
            (Array(a), Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.compare(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => a.kind_tag().cmp(&b.kind_tag()),
        }
    }

    /// Render without quotes around strings — the seed's index-key builder
    /// (one `String` allocation per indexed insert and per probe).
    pub fn display_plain(&self) -> String {
        match self {
            SeedValue::Str(s) => s.clone(),
            SeedValue::Null => "null".to_string(),
            SeedValue::Bool(b) => b.to_string(),
            SeedValue::Int(i) => i.to_string(),
            SeedValue::Float(f) => f.to_string(),
            SeedValue::Array(a) => format!(
                "[{}]",
                a.iter()
                    .map(SeedValue::display_plain)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            SeedValue::Object(m) => format!(
                "{{{}}}",
                m.iter()
                    .map(|(k, v)| format!("{k}:{}", v.display_plain()))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        }
    }
}

impl From<&Value> for SeedValue {
    /// Node-by-node conversion from the shared representation: every key
    /// and string re-allocates as an owned `String` — exactly what the
    /// seed's deep `Clone` of a document paid.
    fn from(v: &Value) -> SeedValue {
        match v {
            Value::Null => SeedValue::Null,
            Value::Bool(b) => SeedValue::Bool(*b),
            Value::Int(i) => SeedValue::Int(*i),
            Value::Float(f) => SeedValue::Float(*f),
            Value::Str(s) => SeedValue::Str(s.as_str().to_string()),
            Value::Array(a) => SeedValue::Array(a.iter().map(SeedValue::from).collect()),
            Value::Object(m) => SeedValue::Object(
                m.iter()
                    .map(|(k, val)| (k.as_str().to_string(), SeedValue::from(val)))
                    .collect(),
            ),
        }
    }
}

/// The seed's `TaskMessage::to_value`: one fresh `String` per key, owned
/// string payloads, and a deep copy of the `used`/`generated`/`tags`
/// payloads — the per-message serialization cost on the seed ingest path.
pub fn seed_to_value(msg: &TaskMessage) -> SeedValue {
    // Key-ordered pushes + bulk map build, matching the pre-`Sym` encoder
    // this baseline was first benchmarked with (PR 1's `to_value`).
    let mut pairs: Vec<(String, SeedValue)> = Vec::with_capacity(16);
    let mut put = |k: &str, v: SeedValue| pairs.push((k.to_string(), v));
    put(
        "activity_id",
        SeedValue::Str(msg.activity_id.as_str().to_string()),
    );
    if let Some(a) = &msg.agent_id {
        put("agent_id", SeedValue::Str(a.as_str().to_string()));
    }
    put(
        "campaign_id",
        SeedValue::Str(msg.campaign_id.as_str().to_string()),
    );
    if !msg.depends_on.is_empty() {
        put(
            "depends_on",
            SeedValue::Array(
                msg.depends_on
                    .iter()
                    .map(|t| SeedValue::Str(t.as_str().to_string()))
                    .collect(),
            ),
        );
    }
    put("ended_at", SeedValue::Float(msg.ended_at));
    put("generated", SeedValue::from(&msg.generated));
    put("hostname", SeedValue::Str(msg.hostname.clone()));
    put("started_at", SeedValue::Float(msg.started_at));
    put("status", SeedValue::Str(msg.status.as_str().to_string()));
    if !msg.tags.is_empty() {
        put(
            "tags",
            SeedValue::Object(
                msg.tags
                    .iter()
                    .map(|(k, v)| (k.as_str().to_string(), SeedValue::from(v)))
                    .collect(),
            ),
        );
    }
    put("task_id", SeedValue::Str(msg.task_id.as_str().to_string()));
    if let Some(t) = &msg.telemetry_at_end {
        put("telemetry_at_end", SeedValue::from(&t.to_value()));
    }
    if let Some(t) = &msg.telemetry_at_start {
        put("telemetry_at_start", SeedValue::from(&t.to_value()));
    }
    put("type", SeedValue::Str(msg.msg_type.as_str().to_string()));
    put("used", SeedValue::from(&msg.used));
    put(
        "workflow_id",
        SeedValue::Str(msg.workflow_id.as_str().to_string()),
    );
    debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "keys sorted");
    SeedValue::Object(SeedMap::from_iter(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{obj, TaskMessageBuilder};

    #[test]
    fn conversion_preserves_structure() {
        let v = obj! {
            "task_id" => "t1",
            "used" => obj! {"x" => 1, "frags" => obj!{"label" => "C-H_3"}},
            "list" => prov_model::arr![1, 2.5, "s"],
        };
        let s = SeedValue::from(&v);
        assert_eq!(
            s.get_path("used.frags.label").and_then(SeedValue::as_str),
            Some("C-H_3")
        );
        assert_eq!(s.get_path("list.1").and_then(SeedValue::as_f64), Some(2.5));
        assert_eq!(s.get("task_id").and_then(SeedValue::as_str), Some("t1"));
    }

    #[test]
    fn seed_encoder_matches_shared_encoder_shape() {
        let msg = TaskMessageBuilder::new("t1", "wf", "act")
            .uses("x", 1.5)
            .generates("y", 2)
            .span(1.0, 2.0)
            .build();
        // Same document content, independent representations.
        let seed = seed_to_value(&msg);
        let shared = SeedValue::from(&msg.to_value());
        assert_eq!(seed, shared);
    }

    #[test]
    fn compare_ports_seed_semantics() {
        assert_eq!(
            SeedValue::Int(2).compare(&SeedValue::Float(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            SeedValue::Str("b".into()).compare(&SeedValue::Str("a".into())),
            Ordering::Greater
        );
        let _ = SeedValue::Null.compare(&SeedValue::Str("x".into()));
    }
}
