//! The pre-refactor provenance-database hot path, preserved verbatim so the
//! sharded engine's speedups are measured against the real thing rather
//! than a strawman. This is the exact design the seed shipped:
//!
//! * one `RwLock<Vec<Value>>` serializing all writers;
//! * `String` index keys built with `display_plain()` (one allocation per
//!   index probe and per indexed insert);
//! * `find` deep-cloning every matching document;
//! * `candidates` returning the **first** index hit, never intersecting;
//! * `aggregate` materializing a full clone of every matching document and
//!   doing O(n·groups) linear bucket search;
//! * per-message fan-out: 3 lock round-trips per message on the batch path.

use parking_lot::RwLock;
use prov_db::{Condition, DocQuery, GroupSpec, Op};
use prov_model::{Map, ProvRelation, TaskMessage, Value};
use std::collections::HashMap;

/// Single-lock, clone-on-read document store (the seed implementation).
#[derive(Default)]
pub struct BaselineDocumentStore {
    docs: RwLock<Vec<Value>>,
    /// field path → (value text → doc indices)
    indexes: RwLock<HashMap<String, HashMap<String, Vec<usize>>>>,
}

impl BaselineDocumentStore {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert one document; returns its index.
    pub fn insert(&self, doc: Value) -> usize {
        let mut docs = self.docs.write();
        let idx = docs.len();
        let mut indexes = self.indexes.write();
        for (path, index) in indexes.iter_mut() {
            if let Some(v) = doc.get_path(path) {
                index.entry(v.display_plain()).or_default().push(idx);
            }
        }
        docs.push(doc);
        idx
    }

    /// Bulk insert: loops the per-document lock round-trip (seed behavior).
    pub fn insert_many(&self, batch: Vec<Value>) -> usize {
        let n = batch.len();
        for d in batch {
            self.insert(d);
        }
        n
    }

    /// Create a hash index over a dotted field path.
    pub fn create_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        if indexes.contains_key(path) {
            return;
        }
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, d) in self.docs.read().iter().enumerate() {
            if let Some(v) = d.get_path(path) {
                index.entry(v.display_plain()).or_default().push(i);
            }
        }
        indexes.insert(path.to_string(), index);
    }

    /// Run a query, deep-cloning every matching document.
    pub fn find(&self, query: &DocQuery) -> Vec<Value> {
        let docs = self.docs.read();
        let mut hits: Vec<usize> = match self.candidates(&query.conditions) {
            Some(c) => c
                .into_iter()
                .filter(|&i| query.matches(&docs[i]))
                .collect(),
            None => (0..docs.len()).filter(|&i| query.matches(&docs[i])).collect(),
        };
        if let Some((path, ascending)) = &query.sort {
            hits.sort_by(|&a, &b| {
                let va = docs[a].get_path(path).cloned().unwrap_or(Value::Null);
                let vb = docs[b].get_path(path).cloned().unwrap_or(Value::Null);
                let o = va.compare(&vb);
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            });
        }
        if let Some(n) = query.limit {
            hits.truncate(n);
        }
        hits.into_iter()
            .map(|i| project(&docs[i], &query.projection))
            .collect()
    }

    /// Count matching documents.
    pub fn count(&self, query: &DocQuery) -> usize {
        let docs = self.docs.read();
        match self.candidates(&query.conditions) {
            Some(c) => c.into_iter().filter(|&i| query.matches(&docs[i])).count(),
            None => docs.iter().filter(|d| query.matches(d)).count(),
        }
    }

    /// First-index-hit candidate selection (seed behavior: no smallest-set
    /// choice, no intersection, one `display_plain` String per probe).
    fn candidates(&self, conditions: &[Condition]) -> Option<Vec<usize>> {
        let indexes = self.indexes.read();
        for c in conditions {
            if c.op == Op::Eq {
                if let Some(index) = indexes.get(&c.path) {
                    return Some(index.get(&c.value.display_plain()).cloned().unwrap_or_default());
                }
            }
        }
        None
    }

    /// Group-and-aggregate via a full clone of the matching documents and a
    /// linear bucket scan per document (seed behavior).
    pub fn aggregate(&self, query: &DocQuery, group: &GroupSpec) -> Vec<Value> {
        let docs = self.find(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        });
        let mut buckets: Vec<(Value, Vec<&Value>)> = Vec::new();
        for d in &docs {
            let key = d.get_path(&group.key).cloned().unwrap_or(Value::Null);
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, items)) => items.push(d),
                None => buckets.push((key, vec![d])),
            }
        }
        buckets
            .into_iter()
            .map(|(key, items)| {
                let mut out = Map::new();
                out.insert("_id".into(), key);
                for agg in &group.aggs {
                    let vals: Vec<Value> = items
                        .iter()
                        .filter_map(|d| d.get_path(&agg.path))
                        .cloned()
                        .collect();
                    out.insert(agg.output_name(), agg.apply(&vals));
                }
                Value::Object(out)
            })
            .collect()
    }
}

fn project(doc: &Value, projection: &[String]) -> Value {
    if projection.is_empty() {
        return doc.clone();
    }
    let mut out = Map::new();
    for p in projection {
        if let Some(v) = doc.get_path(p) {
            out.insert(p.clone(), v.clone());
        }
    }
    Value::Object(out)
}

/// Seed-shaped unified database: per-message fan-out to document, KV, and
/// graph backends with one lock round-trip each (no batch path).
#[derive(Default)]
pub struct BaselineDatabase {
    /// Document collection.
    pub documents: BaselineDocumentStore,
    kv: RwLock<std::collections::BTreeMap<String, Value>>,
    graph_nodes: RwLock<HashMap<String, (String, Map)>>,
    graph_edges: RwLock<Vec<(String, String, String)>>,
}

impl BaselineDatabase {
    /// Fresh database with the seed's hot-field indexes.
    pub fn new() -> Self {
        let db = Self::default();
        db.documents.create_index("task_id");
        db.documents.create_index("activity_id");
        db.documents.create_index("workflow_id");
        db
    }

    /// Insert one message: deep-clones the document for the KV row and
    /// takes one write lock per backend touched (seed behavior).
    pub fn insert(&self, msg: &TaskMessage) {
        let doc = msg.to_value();
        self.documents.insert(doc.clone());
        self.kv
            .write()
            .insert(format!("task/{}", msg.task_id.as_str()), doc);
        let mut props = Map::new();
        props.insert("activity_id".into(), Value::from(msg.activity_id.as_str()));
        props.insert("hostname".into(), Value::from(msg.hostname.as_str()));
        props.insert("status".into(), Value::from(msg.status.as_str()));
        self.graph_nodes
            .write()
            .insert(msg.task_id.as_str().to_string(), ("prov:Activity".into(), props));
        for dep in &msg.depends_on {
            self.graph_edges.write().push((
                msg.task_id.as_str().to_string(),
                dep.as_str().to_string(),
                ProvRelation::WasInformedBy.as_str().to_string(),
            ));
        }
    }

    /// Bulk insert = a loop of single inserts (seed behavior).
    pub fn insert_batch<'a>(&self, msgs: impl IntoIterator<Item = &'a TaskMessage>) -> usize {
        let mut n = 0;
        for m in msgs {
            self.insert(m);
            n += 1;
        }
        n
    }
}
