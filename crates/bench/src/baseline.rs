//! The pre-refactor provenance-database hot path, preserved verbatim so the
//! sharded engine's speedups are measured against the real thing rather
//! than a strawman. This is the exact design the seed shipped:
//!
//! * the seed's value layout ([`SeedValue`]: owned `String` keys and
//!   containers, deep `Clone`) — preserved separately because today's
//!   `prov_model::Value` shares strings and containers and would silently
//!   gift the baseline the very wins this module exists to measure;
//! * one `RwLock<Vec<SeedValue>>` serializing all writers;
//! * `String` index keys built with `display_plain()` (one allocation per
//!   index probe and per indexed insert);
//! * `find` deep-cloning every matching document;
//! * `candidates` returning the **first** index hit, never intersecting;
//! * `aggregate` materializing a full clone of every matching document and
//!   doing O(n·groups) linear bucket search;
//! * per-message fan-out: 3 lock round-trips per message on the batch path.
//!
//! Queries still arrive as `prov_db::DocQuery` (so `repro --provdb` issues
//! one query object to both engines); condition bounds are converted to
//! `SeedValue` once per query, which is what the seed's query layer held
//! anyway.

use crate::seed_value::{seed_to_value, SeedMap, SeedValue};
use parking_lot::RwLock;
use prov_db::{AggOp, Condition, DocQuery, GroupSpec, Op};
use prov_model::{ProvRelation, TaskMessage};
use std::collections::HashMap;

/// The seed's `Condition::matches`, over the preserved value layout.
fn condition_matches(op: Op, bound: &SeedValue, doc: &SeedValue, path: &str) -> bool {
    let field = doc.get_path(path);
    match op {
        Op::Exists => field.is_some(),
        Op::Contains => match (field.and_then(SeedValue::as_str), bound.as_str()) {
            (Some(s), Some(pat)) => s.contains(pat),
            _ => false,
        },
        op => {
            let Some(v) = field else { return op == Op::Ne };
            let equal = match (v, bound) {
                (SeedValue::Int(a), SeedValue::Float(b)) => *a as f64 == *b,
                (SeedValue::Float(a), SeedValue::Int(b)) => *a == *b as f64,
                (a, b) => a == b,
            };
            let ord = v.compare(bound);
            match op {
                Op::Eq => equal,
                Op::Ne => !equal,
                Op::Lt => ord == std::cmp::Ordering::Less,
                Op::Lte => ord != std::cmp::Ordering::Greater,
                Op::Gt => ord == std::cmp::Ordering::Greater,
                Op::Gte => ord != std::cmp::Ordering::Less,
                Op::Contains | Op::Exists => unreachable!("handled above"),
            }
        }
    }
}

/// Query conditions with bounds converted to the seed layout (once per
/// query, as the seed's own query objects held them).
struct SeedConditions(Vec<(String, Op, SeedValue)>);

impl SeedConditions {
    fn new(conditions: &[Condition]) -> Self {
        Self(
            conditions
                .iter()
                .map(|c| (c.path.clone(), c.op, SeedValue::from(&c.value)))
                .collect(),
        )
    }

    fn matches(&self, doc: &SeedValue) -> bool {
        self.0
            .iter()
            .all(|(path, op, bound)| condition_matches(*op, bound, doc, path))
    }
}

/// The seed's aggregation operator application.
fn apply_agg(op: AggOp, values: &[SeedValue]) -> SeedValue {
    match op {
        AggOp::Count => SeedValue::Int(values.len() as i64),
        AggOp::Sum => SeedValue::Float(values.iter().filter_map(SeedValue::as_f64).sum()),
        AggOp::Mean => {
            let nums: Vec<f64> = values.iter().filter_map(SeedValue::as_f64).collect();
            if nums.is_empty() {
                SeedValue::Null
            } else {
                SeedValue::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggOp::Min | AggOp::Max => {
            let mut best: Option<&SeedValue> = None;
            for v in values {
                if v.is_null() {
                    continue;
                }
                best = match best {
                    None => Some(v),
                    Some(b) => {
                        let take = if op == AggOp::Min {
                            v.compare(b) == std::cmp::Ordering::Less
                        } else {
                            v.compare(b) == std::cmp::Ordering::Greater
                        };
                        if take {
                            Some(v)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            best.cloned().unwrap_or(SeedValue::Null)
        }
    }
}

/// Single-lock, clone-on-read document store (the seed implementation).
#[derive(Default)]
pub struct BaselineDocumentStore {
    docs: RwLock<Vec<SeedValue>>,
    /// field path → (value text → doc indices)
    indexes: RwLock<HashMap<String, HashMap<String, Vec<usize>>>>,
}

impl BaselineDocumentStore {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert one document; returns its index.
    pub fn insert(&self, doc: SeedValue) -> usize {
        let mut docs = self.docs.write();
        let idx = docs.len();
        let mut indexes = self.indexes.write();
        for (path, index) in indexes.iter_mut() {
            if let Some(v) = doc.get_path(path) {
                index.entry(v.display_plain()).or_default().push(idx);
            }
        }
        docs.push(doc);
        idx
    }

    /// Bulk insert: loops the per-document lock round-trip (seed behavior).
    pub fn insert_many(&self, batch: Vec<SeedValue>) -> usize {
        let n = batch.len();
        for d in batch {
            self.insert(d);
        }
        n
    }

    /// Create a hash index over a dotted field path.
    pub fn create_index(&self, path: &str) {
        let mut indexes = self.indexes.write();
        if indexes.contains_key(path) {
            return;
        }
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, d) in self.docs.read().iter().enumerate() {
            if let Some(v) = d.get_path(path) {
                index.entry(v.display_plain()).or_default().push(i);
            }
        }
        indexes.insert(path.to_string(), index);
    }

    /// Run a query, deep-cloning every matching document.
    pub fn find(&self, query: &DocQuery) -> Vec<SeedValue> {
        let conditions = SeedConditions::new(&query.conditions);
        let docs = self.docs.read();
        let mut hits: Vec<usize> = match self.candidates(&conditions) {
            Some(c) => c
                .into_iter()
                .filter(|&i| conditions.matches(&docs[i]))
                .collect(),
            None => (0..docs.len())
                .filter(|&i| conditions.matches(&docs[i]))
                .collect(),
        };
        if let Some((path, ascending)) = &query.sort {
            hits.sort_by(|&a, &b| {
                let va = docs[a].get_path(path).cloned().unwrap_or(SeedValue::Null);
                let vb = docs[b].get_path(path).cloned().unwrap_or(SeedValue::Null);
                let o = va.compare(&vb);
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            });
        }
        if let Some(n) = query.limit {
            hits.truncate(n);
        }
        hits.into_iter()
            .map(|i| project(&docs[i], &query.projection))
            .collect()
    }

    /// Count matching documents.
    pub fn count(&self, query: &DocQuery) -> usize {
        let conditions = SeedConditions::new(&query.conditions);
        let docs = self.docs.read();
        match self.candidates(&conditions) {
            Some(c) => c
                .into_iter()
                .filter(|&i| conditions.matches(&docs[i]))
                .count(),
            None => docs.iter().filter(|d| conditions.matches(d)).count(),
        }
    }

    /// First-index-hit candidate selection (seed behavior: no smallest-set
    /// choice, no intersection, one `display_plain` String per probe).
    fn candidates(&self, conditions: &SeedConditions) -> Option<Vec<usize>> {
        let indexes = self.indexes.read();
        for (path, op, bound) in &conditions.0 {
            if *op == Op::Eq {
                if let Some(index) = indexes.get(path) {
                    return Some(
                        index
                            .get(&bound.display_plain())
                            .cloned()
                            .unwrap_or_default(),
                    );
                }
            }
        }
        None
    }

    /// Group-and-aggregate via a full clone of the matching documents and a
    /// linear bucket scan per document (seed behavior).
    pub fn aggregate(&self, query: &DocQuery, group: &GroupSpec) -> Vec<SeedValue> {
        let docs = self.find(&DocQuery {
            conditions: query.conditions.clone(),
            projection: Vec::new(),
            sort: None,
            limit: None,
        });
        let mut buckets: Vec<(SeedValue, Vec<&SeedValue>)> = Vec::new();
        for d in &docs {
            let key = d.get_path(&group.key).cloned().unwrap_or(SeedValue::Null);
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, items)) => items.push(d),
                None => buckets.push((key, vec![d])),
            }
        }
        buckets
            .into_iter()
            .map(|(key, items)| {
                let mut out = SeedMap::new();
                out.insert("_id".to_string(), key);
                for agg in &group.aggs {
                    let vals: Vec<SeedValue> = items
                        .iter()
                        .filter_map(|d| d.get_path(&agg.path))
                        .cloned()
                        .collect();
                    out.insert(agg.output_name(), apply_agg(agg.op, &vals));
                }
                SeedValue::Object(out)
            })
            .collect()
    }
}

fn project(doc: &SeedValue, projection: &[String]) -> SeedValue {
    if projection.is_empty() {
        return doc.clone();
    }
    let mut out = SeedMap::new();
    for p in projection {
        if let Some(v) = doc.get_path(p) {
            out.insert(p.clone(), v.clone());
        }
    }
    SeedValue::Object(out)
}

/// Seed-shaped unified database: per-message fan-out to document, KV, and
/// graph backends with one lock round-trip each (no batch path).
#[derive(Default)]
pub struct BaselineDatabase {
    /// Document collection.
    pub documents: BaselineDocumentStore,
    kv: RwLock<std::collections::BTreeMap<String, SeedValue>>,
    graph_nodes: RwLock<HashMap<String, (String, SeedMap)>>,
    graph_edges: RwLock<Vec<(String, String, String)>>,
}

impl BaselineDatabase {
    /// Fresh database with the seed's hot-field indexes.
    pub fn new() -> Self {
        let db = Self::default();
        db.documents.create_index("task_id");
        db.documents.create_index("activity_id");
        db.documents.create_index("workflow_id");
        db
    }

    /// Insert one message: serializes with the seed's `String`-per-key
    /// encoder, deep-clones the document for the KV row and takes one
    /// write lock per backend touched (seed behavior).
    pub fn insert(&self, msg: &TaskMessage) {
        let doc = seed_to_value(msg);
        self.documents.insert(doc.clone());
        self.kv
            .write()
            .insert(format!("task/{}", msg.task_id.as_str()), doc);
        let mut props = SeedMap::new();
        props.insert(
            "activity_id".to_string(),
            SeedValue::Str(msg.activity_id.as_str().to_string()),
        );
        props.insert("hostname".to_string(), SeedValue::Str(msg.hostname.clone()));
        props.insert(
            "status".to_string(),
            SeedValue::Str(msg.status.as_str().to_string()),
        );
        self.graph_nodes.write().insert(
            msg.task_id.as_str().to_string(),
            ("prov:Activity".into(), props),
        );
        for dep in &msg.depends_on {
            self.graph_edges.write().push((
                msg.task_id.as_str().to_string(),
                dep.as_str().to_string(),
                ProvRelation::WasInformedBy.as_str().to_string(),
            ));
        }
    }

    /// Bulk insert = a loop of single inserts (seed behavior).
    pub fn insert_batch<'a>(&self, msgs: impl IntoIterator<Item = &'a TaskMessage>) -> usize {
        let mut n = 0;
        for m in msgs {
            self.insert(m);
            n += 1;
        }
        n
    }
}
