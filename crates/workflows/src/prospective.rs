//! Prospective provenance and plan-conformance checking.
//!
//! Fig 1's taxonomy includes a "Provenance Type" dimension with two
//! leaves: **retrospective** (records of actual execution — everything the
//! evaluation queries) and **prospective** ("defines planned workflow
//! structure", §2.1, citing Davidson & Freire). The paper's experiments
//! stay retrospective; this module supplies the prospective half so the
//! agent can also answer "did the run match the plan?" questions:
//!
//! * [`ProspectivePlan`] — the planned structure derived from a
//!   [`WorkflowDag`] before execution: activities, their multiplicities,
//!   and activity-level dependency edges;
//! * [`ProspectivePlan::check`] — conformance of a stream of retrospective
//!   task messages against the plan, per workflow execution: missing or
//!   unexpected activities, wrong multiplicities, unsatisfied dependency
//!   edges, temporal-order violations, and failed tasks.

use crate::dag::WorkflowDag;
use prov_model::{obj, Map, TaskMessage, TaskStatus, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The planned (prospective) structure of a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProspectivePlan {
    /// Workflow label the plan describes.
    pub name: String,
    /// Activity → planned number of task executions per workflow instance.
    pub multiplicity: BTreeMap<String, usize>,
    /// Activity-level dependency edges `(upstream, downstream)`, deduped.
    pub edges: BTreeSet<(String, String)>,
}

/// One conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A planned activity never executed in this workflow instance.
    MissingActivity {
        /// The workflow instance.
        workflow_id: String,
        /// The absent activity.
        activity: String,
    },
    /// An executed activity that the plan does not contain.
    UnexpectedActivity {
        /// The workflow instance.
        workflow_id: String,
        /// The surplus activity.
        activity: String,
    },
    /// An activity executed a different number of times than planned.
    WrongMultiplicity {
        /// The workflow instance.
        workflow_id: String,
        /// The activity.
        activity: String,
        /// Planned task count.
        planned: usize,
        /// Observed task count.
        observed: usize,
    },
    /// A planned dependency edge with no matching task-level `depends_on`.
    UnsatisfiedEdge {
        /// The workflow instance.
        workflow_id: String,
        /// Planned upstream activity.
        upstream: String,
        /// Planned downstream activity.
        downstream: String,
    },
    /// A task started before one of its declared dependencies ended.
    TemporalOrder {
        /// The downstream task.
        task_id: String,
        /// The dependency it outpaced.
        dep_id: String,
    },
    /// A task finished with error status.
    FailedTask {
        /// The failing task.
        task_id: String,
        /// Its activity.
        activity: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingActivity {
                workflow_id,
                activity,
            } => {
                write!(f, "[{workflow_id}] planned activity '{activity}' never ran")
            }
            Violation::UnexpectedActivity {
                workflow_id,
                activity,
            } => {
                write!(f, "[{workflow_id}] unplanned activity '{activity}' ran")
            }
            Violation::WrongMultiplicity {
                workflow_id,
                activity,
                planned,
                observed,
            } => write!(
                f,
                "[{workflow_id}] activity '{activity}' ran {observed}× (planned {planned}×)"
            ),
            Violation::UnsatisfiedEdge {
                workflow_id,
                upstream,
                downstream,
            } => write!(
                f,
                "[{workflow_id}] no '{downstream}' task records a dependency on '{upstream}'"
            ),
            Violation::TemporalOrder { task_id, dep_id } => {
                write!(
                    f,
                    "task '{task_id}' started before its dependency '{dep_id}' ended"
                )
            }
            Violation::FailedTask { task_id, activity } => {
                write!(
                    f,
                    "task '{task_id}' ({activity}) finished with error status"
                )
            }
        }
    }
}

/// Result of checking retrospective messages against a plan.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// Workflow instances checked.
    pub workflows_checked: usize,
    /// Tasks examined.
    pub tasks_checked: usize,
    /// All violations found, in deterministic order.
    pub violations: Vec<Violation>,
}

impl ConformanceReport {
    /// True when the execution fully matches the plan.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary (used by the agent's conformance tool).
    pub fn render(&self) -> String {
        if self.conforms() {
            return format!(
                "Execution conforms to the plan: {} workflow instance(s), {} task(s), \
                 no violations.",
                self.workflows_checked, self.tasks_checked
            );
        }
        let mut out = format!(
            "Execution deviates from the plan: {} violation(s) across {} workflow \
             instance(s) and {} task(s):\n",
            self.violations.len(),
            self.workflows_checked,
            self.tasks_checked
        );
        for v in &self.violations {
            out.push_str("  - ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

impl ProspectivePlan {
    /// Derive the plan from a DAG *before* executing it.
    pub fn from_dag(name: impl Into<String>, dag: &WorkflowDag) -> Self {
        let mut multiplicity: BTreeMap<String, usize> = BTreeMap::new();
        let mut edges = BTreeSet::new();
        let by_name: HashMap<&str, &str> = dag
            .nodes()
            .iter()
            .map(|n| (n.name.as_str(), n.activity.as_str()))
            .collect();
        for node in dag.nodes() {
            *multiplicity.entry(node.activity.clone()).or_insert(0) += 1;
            for dep in &node.deps {
                if let Some(up) = by_name.get(dep.as_str()) {
                    edges.insert(((*up).to_string(), node.activity.clone()));
                }
            }
        }
        Self {
            name: name.into(),
            multiplicity,
            edges,
        }
    }

    /// Planned activities in deterministic order.
    pub fn activities(&self) -> Vec<&str> {
        self.multiplicity.keys().map(String::as_str).collect()
    }

    /// Serialize the plan as a provenance value (stored in the provenance
    /// database as prospective provenance, queryable alongside the
    /// retrospective records).
    pub fn to_value(&self) -> Value {
        let mut acts = Map::new();
        for (a, n) in &self.multiplicity {
            acts.insert(prov_model::Sym::from(a.as_str()), Value::Int(*n as i64));
        }
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|(u, d)| obj! {"from" => u.as_str(), "to" => d.as_str()})
            .collect();
        obj! {
            "plan" => self.name.as_str(),
            "prov_type" => "prospective",
            "activities" => Value::object(acts),
            "edges" => Value::array(edges),
        }
    }

    /// Check retrospective task messages against the plan.
    ///
    /// Messages are grouped by `workflow_id`; each instance must contain
    /// every planned activity with the planned multiplicity, must not run
    /// unplanned activities, and must realize every planned activity-level
    /// edge with at least one task-level `depends_on` link. Task-level
    /// temporal order (`start ≥ dependency start`) and failure statuses are
    /// checked globally. Non-`Task` messages (agent/tool records) are
    /// ignored.
    pub fn check<'a>(
        &self,
        messages: impl IntoIterator<Item = &'a TaskMessage>,
    ) -> ConformanceReport {
        let mut by_wf: BTreeMap<&str, Vec<&TaskMessage>> = BTreeMap::new();
        let mut tasks_checked = 0usize;
        let mut all: Vec<&TaskMessage> = Vec::new();
        for m in messages {
            if m.msg_type != prov_model::MessageType::Task {
                continue;
            }
            tasks_checked += 1;
            by_wf.entry(m.workflow_id.as_str()).or_default().push(m);
            all.push(m);
        }
        let id_index: HashMap<&str, &TaskMessage> =
            all.iter().map(|m| (m.task_id.as_str(), *m)).collect();

        let mut violations = Vec::new();
        for (wf, msgs) in &by_wf {
            let mut observed: BTreeMap<&str, usize> = BTreeMap::new();
            for m in msgs {
                *observed.entry(m.activity_id.as_str()).or_insert(0) += 1;
            }
            for (activity, &planned) in &self.multiplicity {
                match observed.get(activity.as_str()) {
                    None => violations.push(Violation::MissingActivity {
                        workflow_id: wf.to_string(),
                        activity: activity.clone(),
                    }),
                    Some(&n) if n != planned => violations.push(Violation::WrongMultiplicity {
                        workflow_id: wf.to_string(),
                        activity: activity.clone(),
                        planned,
                        observed: n,
                    }),
                    _ => {}
                }
            }
            for &activity in observed.keys() {
                if !self.multiplicity.contains_key(activity) {
                    violations.push(Violation::UnexpectedActivity {
                        workflow_id: wf.to_string(),
                        activity: activity.to_string(),
                    });
                }
            }
            // Activity-level edges: at least one downstream task must
            // record a dependency on an upstream-activity task.
            for (up, down) in &self.edges {
                let satisfied = msgs.iter().any(|m| {
                    m.activity_id.as_str() == down
                        && m.depends_on.iter().any(|d| {
                            id_index
                                .get(d.as_str())
                                .is_some_and(|dep| dep.activity_id.as_str() == up)
                        })
                });
                let down_ran = observed.contains_key(down.as_str());
                if down_ran && !satisfied {
                    violations.push(Violation::UnsatisfiedEdge {
                        workflow_id: wf.to_string(),
                        upstream: up.clone(),
                        downstream: down.clone(),
                    });
                }
            }
        }
        // Task-level temporal order and failures.
        for m in &all {
            for dep in &m.depends_on {
                if let Some(d) = id_index.get(dep.as_str()) {
                    if m.started_at < d.started_at {
                        violations.push(Violation::TemporalOrder {
                            task_id: m.task_id.as_str().to_string(),
                            dep_id: dep.as_str().to_string(),
                        });
                    }
                }
            }
            if m.status == TaskStatus::Error {
                violations.push(Violation::FailedTask {
                    task_id: m.task_id.as_str().to_string(),
                    activity: m.activity_id.as_str().to_string(),
                });
            }
        }
        ConformanceReport {
            workflows_checked: by_wf.len(),
            tasks_checked,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{build_dag, SyntheticParams};
    use prov_model::{sim_clock, TaskMessageBuilder};
    use prov_stream::StreamingHub;

    fn plan_and_messages() -> (ProspectivePlan, Vec<TaskMessage>) {
        let dag = build_dag(SyntheticParams::config(0));
        let plan = ProspectivePlan::from_dag("synthetic", &dag);
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        crate::synthetic::run_sweep(&hub, sim_clock(), 42, 2).unwrap();
        let msgs: Vec<TaskMessage> = sub.drain().iter().map(|m| (**m).clone()).collect();
        (plan, msgs)
    }

    #[test]
    fn plan_from_dag_captures_structure() {
        let dag = build_dag(SyntheticParams::config(0));
        let plan = ProspectivePlan::from_dag("synthetic", &dag);
        assert_eq!(plan.multiplicity.len(), 8);
        assert_eq!(plan.multiplicity["power"], 1);
        assert!(plan
            .edges
            .contains(&("square_and_divide".to_string(), "power".to_string())));
        // Fan-in: average_results has four upstream activities.
        assert_eq!(
            plan.edges
                .iter()
                .filter(|(_, d)| d == "average_results")
                .count(),
            4
        );
    }

    #[test]
    fn faithful_execution_conforms() {
        let (plan, msgs) = plan_and_messages();
        let report = plan.check(&msgs);
        assert_eq!(report.workflows_checked, 2);
        assert_eq!(report.tasks_checked, 16);
        assert!(report.conforms(), "{}", report.render());
        assert!(report.render().contains("conforms"));
    }

    #[test]
    fn missing_activity_detected() {
        let (plan, msgs) = plan_and_messages();
        let pruned: Vec<TaskMessage> = msgs
            .into_iter()
            .filter(|m| m.activity_id.as_str() != "power")
            .collect();
        let report = plan.check(&pruned);
        assert!(!report.conforms());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::MissingActivity { activity, .. } if activity == "power"
        )));
        // Dropping 'power' also leaves the square_and_divide→power edge
        // unsatisfied only if power ran; it did not, so no edge violation
        // for it, but average_results lost a dependency provider.
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::UnsatisfiedEdge { upstream, .. } if upstream == "power"
        )));
    }

    #[test]
    fn unexpected_activity_detected() {
        let (plan, mut msgs) = plan_and_messages();
        let wf = msgs[0].workflow_id.clone();
        msgs.push(
            TaskMessageBuilder::new("rogue-1", wf.as_str(), "debug_dump")
                .span(1.0, 2.0)
                .build(),
        );
        let report = plan.check(&msgs);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::UnexpectedActivity { activity, .. } if activity == "debug_dump"
        )));
    }

    #[test]
    fn wrong_multiplicity_detected() {
        let (plan, mut msgs) = plan_and_messages();
        // Duplicate one power task under a fresh id in the same workflow.
        let mut dup = msgs
            .iter()
            .find(|m| m.activity_id.as_str() == "power")
            .unwrap()
            .clone();
        dup.task_id = "power-duplicate".into();
        msgs.push(dup);
        let report = plan.check(&msgs);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::WrongMultiplicity { activity, planned: 1, observed: 2, .. }
                if activity == "power"
        )));
    }

    #[test]
    fn temporal_violation_detected() {
        let (plan, mut msgs) = plan_and_messages();
        // Make a dependent task start before its dependency started.
        let dep_id = {
            let power = msgs
                .iter()
                .find(|m| m.activity_id.as_str() == "power" && !m.depends_on.is_empty())
                .unwrap();
            power.depends_on[0].clone()
        };
        let dep_start = msgs
            .iter()
            .find(|m| m.task_id == dep_id)
            .unwrap()
            .started_at;
        for m in msgs.iter_mut() {
            if m.activity_id.as_str() == "power" && m.depends_on.contains(&dep_id) {
                m.started_at = dep_start - 10.0;
            }
        }
        let report = plan.check(&msgs);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TemporalOrder { .. })));
    }

    #[test]
    fn failed_task_reported() {
        let (plan, mut msgs) = plan_and_messages();
        msgs[3].status = TaskStatus::Error;
        let report = plan.check(&msgs);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::FailedTask { .. })));
        assert!(report.render().contains("error status"));
    }

    #[test]
    fn plan_serializes_for_storage() {
        let dag = build_dag(SyntheticParams::config(0));
        let plan = ProspectivePlan::from_dag("synthetic", &dag);
        let v = plan.to_value();
        assert_eq!(
            v.get("prov_type").and_then(Value::as_str),
            Some("prospective")
        );
        assert!(v.get("activities").unwrap().get("power").is_some());
        assert!(!v.get("edges").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn am_workflow_conforms_to_its_plan() {
        let params = crate::am::AmParams::nominal("p0");
        let dag = crate::am::build_am_dag(&params, &crate::am::ProcessModel::new(42));
        let plan = ProspectivePlan::from_dag("am", &dag);
        assert_eq!(plan.multiplicity["laser_scan"], params.n_layers);
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        crate::am::run_am_workflow(&hub, sim_clock(), 42, &params).unwrap();
        let msgs: Vec<TaskMessage> = sub.drain().iter().map(|m| (**m).clone()).collect();
        let report = plan.check(&msgs);
        assert!(report.conforms(), "{}", report.render());
    }
}
