//! Computational chemistry substrate and the BDE workflow (Fig 5B).

pub mod bde;
pub mod dft;
pub mod smiles;

pub use bde::{run_bde_workflow, BdeRecord, BdeRun, ChemError};
pub use dft::{SimulatedDft, Thermochemistry, HARTREE_TO_KCAL};
pub use smiles::{Atom, Bond, Element, Molecule, SmilesError};
