//! Use Case 2 — the computational chemistry BDE workflow (Fig 5B).
//!
//! Takes a SMILES string, searches conformers, minimizes geometry, selects
//! the lowest-energy parent, breaks every single bond to generate fragment
//! radicals, runs (simulated) DFT on parent and fragments, and computes
//! bond dissociation energy/enthalpy/free-energy per bond — emitting
//! Listing-1-shaped provenance for every step.

use super::dft::SimulatedDft;
use super::smiles::Molecule;
use crate::dag::{task_fn, DagError, DagRun, WorkflowDag};
use prov_capture::CaptureContext;
use prov_model::{obj, SharedClock, Value};
use prov_stream::StreamingHub;

/// One bond's dissociation record.
#[derive(Debug, Clone, PartialEq)]
pub struct BdeRecord {
    /// Bond label, e.g. `C-H_3`.
    pub bond_id: String,
    /// ΔE, kcal/mol.
    pub bd_energy: f64,
    /// ΔH, kcal/mol.
    pub bd_enthalpy: f64,
    /// ΔG, kcal/mol.
    pub bd_free_energy: f64,
}

/// Result of one BDE workflow execution.
#[derive(Debug, Clone)]
pub struct BdeRun {
    /// Input SMILES.
    pub smiles: String,
    /// Parent molecule.
    pub parent: Molecule,
    /// Per-bond records, in bond-label order.
    pub records: Vec<BdeRecord>,
    /// Number of provenance tasks emitted.
    pub tasks: usize,
    /// Raw DAG outputs.
    pub run: DagRun,
}

impl BdeRun {
    /// The bond with the highest dissociation free energy (Q1).
    pub fn highest_free_energy(&self) -> Option<&BdeRecord> {
        self.records
            .iter()
            .max_by(|a, b| a.bd_free_energy.total_cmp(&b.bd_free_energy))
    }

    /// The bond with the lowest dissociation enthalpy (Q3).
    pub fn lowest_enthalpy(&self) -> Option<&BdeRecord> {
        self.records
            .iter()
            .min_by(|a, b| a.bd_enthalpy.total_cmp(&b.bd_enthalpy))
    }

    /// Mean BDE (ΔH) over bonds whose label contains `pattern` (Q9).
    pub fn mean_enthalpy_matching(&self, pattern: &str) -> Option<f64> {
        let hits: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.bond_id.contains(pattern))
            .map(|r| r.bd_enthalpy)
            .collect();
        (!hits.is_empty()).then(|| hits.iter().sum::<f64>() / hits.len() as f64)
    }
}

/// Errors from the chemistry workflow.
#[derive(Debug)]
pub enum ChemError {
    /// SMILES failed to parse.
    Smiles(super::smiles::SmilesError),
    /// DAG construction/execution failed.
    Dag(DagError),
}

impl std::fmt::Display for ChemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChemError::Smiles(e) => write!(f, "{e}"),
            ChemError::Dag(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ChemError {}

fn mol_summary(label: &str, mol: &Molecule, dft: &SimulatedDft) -> Value {
    let t = dft.thermochemistry(mol);
    obj! {
        "molecule_label" => label,
        "n_atoms" => mol.atom_count(),
        "formula" => mol.formula(),
        "multiplicity" => mol.multiplicity() as i64,
        "charge" => mol.charge as i64,
        "e0" => t.e0,
        "z0" => t.z0,
        "h0" => t.h0,
        "s0" => t.s0,
        "functional" => dft.functional.as_str(),
        "basis" => dft.basis.as_str(),
    }
}

/// Execute the BDE workflow for `smiles` with `n_conformers` conformers,
/// streaming provenance to `hub`.
pub fn run_bde_workflow(
    hub: &StreamingHub,
    clock: SharedClock,
    seed: u64,
    smiles: &str,
    n_conformers: usize,
) -> Result<BdeRun, ChemError> {
    let parent = Molecule::parse(smiles).map_err(ChemError::Smiles)?;
    let dft = SimulatedDft::b3lyp(seed);
    let n_conformers = n_conformers.max(1);

    // ---- precompute all chemistry (the simulated DFT) -----------------
    let conformer_energies: Vec<f64> = (0..n_conformers)
        .map(|k| dft.conformer_energy(&parent, k as u64))
        .collect();
    let minimized: Vec<f64> = conformer_energies
        .iter()
        .map(|&e| dft.minimize(&parent, e))
        .collect();
    let (best_conf, _) = minimized
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("n_conformers >= 1");
    let parent_thermo = dft.thermochemistry(&parent);
    let bonds = parent.bond_labels();

    // ---- build the Fig 5B DAG ------------------------------------------
    let mut dag = WorkflowDag::new();
    let mut minimization_names: Vec<String> = Vec::new();
    for k in 0..n_conformers {
        let gen_name = format!("generate_conformer_{k}");
        let min_name = format!("geometry_minimization_{k}");
        let conf_e = conformer_energies[k];
        let min_e = minimized[k];
        dag = dag
            .add(
                gen_name.clone(),
                "generate_conformer",
                obj! {"smiles" => smiles, "conformer_id" => k},
                0.35,
                &[],
                task_fn(move |_, _| Ok(obj! {"conformer_id" => k, "energy" => conf_e})),
            )
            .add(
                min_name.clone(),
                "geometry_minimization",
                obj! {"conformer_id" => k},
                0.65,
                &[gen_name.as_str()],
                task_fn(move |_, _| Ok(obj! {"conformer_id" => k, "minimized_energy" => min_e})),
            );
        minimization_names.push(min_name);
    }
    {
        let dep_refs: Vec<&str> = minimization_names.iter().map(String::as_str).collect();
        let best = best_conf;
        let e0 = minimized[best_conf];
        dag = dag.add(
            "get_lowest_energy",
            "get_lowest_energy",
            obj! {"n_conformers" => n_conformers},
            0.1,
            &dep_refs,
            task_fn(move |_, _| Ok(obj! {"conformer_id" => best, "e0" => e0})),
        );
    }
    {
        // Structure-creation steps carry identity only; the full per-species
        // summary (n_atoms, multiplicity, energies, ...) appears exactly
        // once, in the postprocess record — this keeps the Q5 "sum of all
        // n_atoms = 81" trap faithful to the paper.
        let formula = parent.formula();
        dag = dag.add(
            "create_parent_structure",
            "create_parent_structure",
            obj! {"smiles" => smiles},
            0.1,
            &["get_lowest_energy"],
            task_fn(move |_, _| {
                Ok(obj! {"molecule_label" => "parent", "formula" => formula.as_str()})
            }),
        );
    }

    // Parent DFT chain.
    let (extended, _parent_post) = add_dft_chain(
        dag,
        "parent",
        "parent",
        &parent,
        &dft,
        "create_parent_structure",
        0.95,
    );
    dag = extended;

    // Per-bond fragment chains + BDE computation.
    let mut bde_nodes: Vec<(String, String)> = Vec::new(); // (node, bond label)
    for (bond_idx, label) in &bonds {
        let Some((f1, f2)) = parent.break_bond(*bond_idx) else {
            continue;
        };
        let Some((de, dh, dg)) = dft.bde(&parent, *bond_idx) else {
            continue;
        };
        let slug = label.replace('-', "").to_lowercase(); // e.g. ch_3
        let break_name = format!("break_bond_{slug}");
        {
            let (l, b1, b2) = (label.clone(), f1.bracket_form(), f2.bracket_form());
            dag = dag.add(
                break_name.clone(),
                "break_bond_generate_fragment",
                obj! {"bond_id" => label.as_str(), "smiles" => smiles},
                0.15,
                &["create_parent_structure"],
                task_fn(move |_, _| {
                    Ok(obj! {"bond_id" => l.as_str(), "fragment1" => b1.as_str(), "fragment2" => b2.as_str()})
                }),
            );
        }
        let mut frag_posts: Vec<String> = Vec::new();
        for (frag_no, frag) in [(1usize, &f1), (2usize, &f2)] {
            let create_name = format!("create_fragment_{slug}_{frag_no}");
            let display = format!("{label}:fragment{frag_no}");
            {
                let (d, formula) = (display.clone(), frag.formula());
                dag = dag.add(
                    create_name.clone(),
                    "create_fragment_structure",
                    obj! {"bond_id" => label.as_str(), "fragment" => frag_no},
                    0.1,
                    &[break_name.as_str()],
                    task_fn(move |_, _| {
                        Ok(obj! {"molecule_label" => d.as_str(), "formula" => formula.as_str()})
                    }),
                );
            }
            let (extended, post) = add_dft_chain(
                dag,
                &format!("{slug}_{frag_no}"),
                &display,
                frag,
                &dft,
                &create_name,
                if frag_no == 1 { 0.9 } else { 0.85 },
            );
            dag = extended;
            frag_posts.push(post);
        }
        let (f1_post, f2_post) = (frag_posts[0].clone(), frag_posts[1].clone());

        let bde_name = format!("run_individual_bde_{slug}");
        {
            let used = obj! {
                "e0" => parent_thermo.e0,
                "frags" => obj! {
                    "label" => label.as_str(),
                    "fragment1" => f1.bracket_form(),
                    "fragment2" => f2.bracket_form(),
                },
                "h0" => parent_thermo.h0,
                "s0" => parent_thermo.s0,
                "z0" => parent_thermo.z0,
                "outdir" => "bde_calc",
            };
            let l = label.clone();
            dag = dag.add(
                bde_name.clone(),
                "run_individual_bde",
                used,
                0.3,
                &["postprocess_parent", f1_post.as_str(), f2_post.as_str()],
                task_fn(move |_, _| {
                    Ok(obj! {
                        "bond_id" => l.as_str(),
                        "bd_energy" => de,
                        "bd_enthalpy" => dh,
                        "bd_free_energy" => dg,
                    })
                }),
            );
        }
        bde_nodes.push((bde_name, label.clone()));
    }

    let tasks = dag.len();
    let ctx = CaptureContext::new(
        hub,
        "chemistry-campaign",
        format!("bde-{smiles}"),
        clock,
        seed,
    );
    let run = dag.execute(&ctx).map_err(ChemError::Dag)?;

    let records: Vec<BdeRecord> = bde_nodes
        .iter()
        .map(|(node, label)| {
            let out = &run.outputs[node];
            BdeRecord {
                bond_id: label.clone(),
                bd_energy: out.get("bd_energy").and_then(Value::as_f64).unwrap_or(0.0),
                bd_enthalpy: out
                    .get("bd_enthalpy")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                bd_free_energy: out
                    .get("bd_free_energy")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
            }
        })
        .collect();

    Ok(BdeRun {
        smiles: smiles.to_string(),
        parent,
        records,
        tasks,
        run,
    })
}

/// Append `create_input → run_dft → postprocess` for one species.
/// Returns the extended DAG and the postprocess node name.
fn add_dft_chain(
    dag: WorkflowDag,
    slug: &str,
    display_label: &str,
    mol: &Molecule,
    dft: &SimulatedDft,
    structure_node: &str,
    intensity: f64,
) -> (WorkflowDag, String) {
    let input_name = format!("create_input_{slug}");
    let dft_name = format!("run_dft_{slug}");
    let post_name = format!("postprocess_{slug}");
    let thermo = dft.thermochemistry(mol);
    let label = slug.to_string();
    let n_scf = 9 + (mol.atom_count() % 7) as i64;
    let summary = mol_summary(display_label, mol, dft);
    let dag = dag
        .add(
            input_name.clone(),
            "create_input",
            obj! {
                "functional" => dft.functional.as_str(),
                "basis" => dft.basis.as_str(),
                "charge" => mol.charge as i64,
                "multiplicity" => mol.multiplicity() as i64,
            },
            0.1,
            &[structure_node],
            task_fn(move |u, _| {
                Ok(obj! {"input_file" => format!("bde_calc/{label}.inp"), "config" => u.clone()})
            }),
        )
        .add(
            dft_name.clone(),
            "run_dft",
            obj! {"functional" => dft.functional.as_str(), "basis" => dft.basis.as_str()},
            intensity,
            &[input_name.as_str()],
            task_fn(move |_, _| {
                Ok(obj! {
                    "e0" => thermo.e0,
                    "z0" => thermo.z0,
                    "h0" => thermo.h0,
                    "s0" => thermo.s0,
                    "converged" => true,
                    "n_scf_cycles" => n_scf,
                })
            }),
        )
        .add(
            post_name.clone(),
            "postprocess",
            obj! {"outdir" => "bde_calc"},
            0.2,
            &[dft_name.as_str()],
            task_fn(move |_, _| Ok(summary.clone())),
        );
    (dag, post_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::sim_clock;

    fn run_ethanol() -> (BdeRun, Vec<prov_stream::Delivery>) {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        let run = run_bde_workflow(&hub, sim_clock(), 7, "CCO", 2).unwrap();
        let msgs = sub.drain();
        (run, msgs)
    }

    #[test]
    fn ethanol_produces_eight_bde_records() {
        let (run, msgs) = run_ethanol();
        assert_eq!(run.records.len(), 8);
        assert_eq!(msgs.len(), run.tasks);
        assert!(
            run.tasks > 60,
            "expected a realistic task count, got {}",
            run.tasks
        );
    }

    #[test]
    fn q1_q3_ground_truths() {
        let (run, _) = run_ethanol();
        // Q1: highest dissociation free energy is the O-H bond.
        assert!(run
            .highest_free_energy()
            .unwrap()
            .bond_id
            .starts_with("O-H"));
        // Q3: lowest bond enthalpy is the C-C bond.
        assert!(run.lowest_enthalpy().unwrap().bond_id.starts_with("C-C"));
        // Q9: mean C-H enthalpy over the five C-H bonds.
        let mean = run.mean_enthalpy_matching("C-H").unwrap();
        assert!((96.0..103.0).contains(&mean));
    }

    #[test]
    fn listing1_message_shape() {
        let (_, msgs) = run_ethanol();
        let bde_msg = msgs
            .iter()
            .find(|m| m.activity_id.as_str() == "run_individual_bde")
            .expect("bde task present");
        assert!(bde_msg.used.get("e0").is_some());
        assert!(bde_msg.used.get_path("frags.label").is_some());
        assert!(bde_msg.used.get_path("frags.fragment1").is_some());
        assert_eq!(
            bde_msg.used.get("outdir").and_then(Value::as_str),
            Some("bde_calc")
        );
        assert!(bde_msg.generated.get("bond_id").is_some());
        assert!(bde_msg.generated.get("bd_energy").is_some());
        assert!(bde_msg.generated.get("bd_enthalpy").is_some());
        assert!(bde_msg.generated.get("bd_free_energy").is_some());
        assert!(bde_msg.hostname.contains("frontier"));
    }

    #[test]
    fn q5_sum_of_all_molecule_atoms_is_81() {
        // The paper's Q5: the agent summed n_atoms across parent + all
        // fragments and got 81 instead of the parent's 9. Our provenance
        // must reproduce that trap.
        let (_, msgs) = run_ethanol();
        let total: i64 = msgs
            .iter()
            .filter(|m| m.activity_id.as_str() == "postprocess")
            .filter_map(|m| m.generated.get("n_atoms").and_then(Value::as_i64))
            .sum();
        assert_eq!(total, 81);
        let parent_atoms: Vec<i64> = msgs
            .iter()
            .filter(|m| m.generated.get("molecule_label").and_then(Value::as_str) == Some("parent"))
            .filter_map(|m| m.generated.get("n_atoms").and_then(Value::as_i64))
            .collect();
        assert_eq!(parent_atoms, vec![9]);
    }

    #[test]
    fn q2_functional_recorded_everywhere() {
        let (_, msgs) = run_ethanol();
        let dft_msgs: Vec<_> = msgs
            .iter()
            .filter(|m| m.activity_id.as_str() == "run_dft")
            .collect();
        assert_eq!(dft_msgs.len(), 17); // parent + 16 fragments
        assert!(dft_msgs
            .iter()
            .all(|m| { m.used.get("functional").and_then(Value::as_str) == Some("B3LYP") }));
    }

    #[test]
    fn q6_q10_multiplicity_and_charge() {
        let (_, msgs) = run_ethanol();
        let parent = msgs
            .iter()
            .find(|m| {
                m.activity_id.as_str() == "postprocess"
                    && m.generated.get("molecule_label").and_then(Value::as_str) == Some("parent")
            })
            .unwrap();
        assert_eq!(
            parent.generated.get("multiplicity").and_then(Value::as_i64),
            Some(1)
        );
        assert_eq!(
            parent.generated.get("charge").and_then(Value::as_i64),
            Some(0)
        );
        // All fragments are neutral doublets.
        let frag = msgs
            .iter()
            .find(|m| {
                m.activity_id.as_str() == "postprocess"
                    && m.generated
                        .get("molecule_label")
                        .and_then(Value::as_str)
                        .is_some_and(|l| l.contains("fragment"))
            })
            .unwrap();
        assert_eq!(
            frag.generated.get("multiplicity").and_then(Value::as_i64),
            Some(2)
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, _) = run_ethanol();
        let (b, _) = run_ethanol();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn other_molecules_work() {
        let hub = StreamingHub::in_memory();
        // Methanol: CO → CH3OH, 6 atoms, bonds: 3 C-H + 1 C-O + 1 O-H.
        let run = run_bde_workflow(&hub, sim_clock(), 3, "CO", 1).unwrap();
        assert_eq!(run.parent.atom_count(), 6);
        assert_eq!(run.records.len(), 5);
        assert!(run_bde_workflow(&hub, sim_clock(), 3, "not a smiles", 1).is_err());
    }
}
