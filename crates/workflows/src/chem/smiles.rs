//! SMILES-lite parsing and molecular graphs.
//!
//! Supports the linear organic subset needed for BDE studies of small
//! molecules (paper §5.3 uses ethanol, `CCO`): atoms C/N/O plus bracket
//! atoms, branches, and single/double bonds. Implicit hydrogens are added
//! by standard valence. This is deliberately not a full SMILES
//! implementation — it is the substrate the provenance workflow needs.

/// Chemical elements supported by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// Carbon (valence 4).
    C,
    /// Nitrogen (valence 3).
    N,
    /// Oxygen (valence 2).
    O,
    /// Hydrogen (valence 1).
    H,
}

impl Element {
    /// Standard valence used for implicit-hydrogen completion.
    pub fn valence(self) -> u8 {
        match self {
            Element::C => 4,
            Element::N => 3,
            Element::O => 2,
            Element::H => 1,
        }
    }

    /// Atomic symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::H => "H",
        }
    }

    /// Standard atomic weight (g/mol).
    pub fn weight(self) -> f64 {
        match self {
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::H => 1.008,
        }
    }

    /// Valence electrons contributed (for multiplicity estimation).
    pub fn valence_electrons(self) -> u32 {
        match self {
            Element::C => 4,
            Element::N => 5,
            Element::O => 6,
            Element::H => 1,
        }
    }
}

/// One atom of a molecule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atom {
    /// Element.
    pub element: Element,
}

/// One bond between two atom indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bond {
    /// First atom index.
    pub a: usize,
    /// Second atom index.
    pub b: usize,
    /// Bond order (1 or 2).
    pub order: u8,
}

/// A molecular graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Molecule {
    /// Atoms (heavy atoms first, then implicit hydrogens).
    pub atoms: Vec<Atom>,
    /// Bonds.
    pub bonds: Vec<Bond>,
    /// Net charge (0 for the neutral parents used here).
    pub charge: i32,
}

/// SMILES parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmilesError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SmilesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SMILES error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SmilesError {}

impl Molecule {
    /// Parse a SMILES-lite string and complete implicit hydrogens.
    pub fn parse(smiles: &str) -> Result<Molecule, SmilesError> {
        let mut atoms: Vec<Atom> = Vec::new();
        let mut bonds: Vec<Bond> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut prev: Option<usize> = None;
        let mut next_order: u8 = 1;
        let bytes = smiles.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => {
                    let p = prev.ok_or(SmilesError {
                        offset: i,
                        message: "branch before any atom".into(),
                    })?;
                    stack.push(p);
                    i += 1;
                }
                b')' => {
                    prev = Some(stack.pop().ok_or(SmilesError {
                        offset: i,
                        message: "unmatched ')'".into(),
                    })?);
                    i += 1;
                }
                b'=' => {
                    next_order = 2;
                    i += 1;
                }
                b'-' => {
                    next_order = 1;
                    i += 1;
                }
                b'[' => {
                    let close = smiles[i..].find(']').ok_or(SmilesError {
                        offset: i,
                        message: "unterminated bracket atom".into(),
                    })? + i;
                    let inner = &smiles[i + 1..close];
                    let element = parse_element(inner.trim_matches(|c: char| !c.is_alphabetic()))
                        .ok_or(SmilesError {
                        offset: i,
                        message: format!("unknown bracket atom '{inner}'"),
                    })?;
                    let idx = atoms.len();
                    atoms.push(Atom { element });
                    if let Some(p) = prev {
                        bonds.push(Bond {
                            a: p,
                            b: idx,
                            order: next_order,
                        });
                    }
                    next_order = 1;
                    prev = Some(idx);
                    i = close + 1;
                }
                c if c.is_ascii_alphabetic() => {
                    let element = parse_element(&smiles[i..i + 1]).ok_or(SmilesError {
                        offset: i,
                        message: format!("unknown atom '{}'", c as char),
                    })?;
                    let idx = atoms.len();
                    atoms.push(Atom { element });
                    if let Some(p) = prev {
                        bonds.push(Bond {
                            a: p,
                            b: idx,
                            order: next_order,
                        });
                    }
                    next_order = 1;
                    prev = Some(idx);
                    i += 1;
                }
                c if c.is_ascii_whitespace() => i += 1,
                c => {
                    return Err(SmilesError {
                        offset: i,
                        message: format!("unsupported SMILES character '{}'", c as char),
                    })
                }
            }
        }
        if !stack.is_empty() {
            return Err(SmilesError {
                offset: bytes.len(),
                message: "unmatched '('".into(),
            });
        }
        if atoms.is_empty() {
            return Err(SmilesError {
                offset: 0,
                message: "empty SMILES".into(),
            });
        }
        let mut mol = Molecule {
            atoms,
            bonds,
            charge: 0,
        };
        mol.add_implicit_hydrogens();
        Ok(mol)
    }

    fn bond_order_sum(&self, atom: usize) -> u8 {
        self.bonds
            .iter()
            .filter(|b| b.a == atom || b.b == atom)
            .map(|b| b.order)
            .sum()
    }

    fn add_implicit_hydrogens(&mut self) {
        let heavy = self.atoms.len();
        for a in 0..heavy {
            let el = self.atoms[a].element;
            if el == Element::H {
                continue;
            }
            let missing = el.valence().saturating_sub(self.bond_order_sum(a));
            for _ in 0..missing {
                let h = self.atoms.len();
                self.atoms.push(Atom {
                    element: Element::H,
                });
                self.bonds.push(Bond { a, b: h, order: 1 });
            }
        }
    }

    /// Total atom count including hydrogens.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Heavy (non-hydrogen) atom count.
    pub fn heavy_atom_count(&self) -> usize {
        self.atoms
            .iter()
            .filter(|a| a.element != Element::H)
            .count()
    }

    /// Hill-order molecular formula, e.g. `C2H6O`.
    pub fn formula(&self) -> String {
        let count = |el: Element| self.atoms.iter().filter(|a| a.element == el).count();
        let mut out = String::new();
        for el in [Element::C, Element::H, Element::N, Element::O] {
            let n = count(el);
            if n > 0 {
                out.push_str(el.symbol());
                if n > 1 {
                    out.push_str(&n.to_string());
                }
            }
        }
        out
    }

    /// Molecular weight in g/mol.
    pub fn weight(&self) -> f64 {
        self.atoms.iter().map(|a| a.element.weight()).sum()
    }

    /// Spin multiplicity estimated from electron parity: closed-shell
    /// molecules are singlets (1), odd-electron radicals doublets (2).
    pub fn multiplicity(&self) -> u32 {
        let electrons: u32 = self
            .atoms
            .iter()
            .map(|a| a.element.valence_electrons())
            .sum::<u32>()
            .wrapping_add_signed(-self.charge);
        if electrons.is_multiple_of(2) {
            1
        } else {
            2
        }
    }

    /// Labels for every breakable (single-order) bond, grouped by bond type
    /// with one-based indices: `C-C_1`, `C-H_1` … `C-H_5`, `O-H_1`.
    pub fn bond_labels(&self) -> Vec<(usize, String)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        let mut out = Vec::new();
        for (i, bond) in self.bonds.iter().enumerate() {
            if bond.order != 1 {
                continue;
            }
            let (x, y) = (self.atoms[bond.a].element, self.atoms[bond.b].element);
            let (first, second) = if x <= y { (x, y) } else { (y, x) };
            let ty = format!("{}-{}", first.symbol(), second.symbol());
            let n = counts.entry(ty.clone()).or_insert(0);
            *n += 1;
            out.push((i, format!("{ty}_{n}")));
        }
        out
    }

    /// Homolytically break bond `bond_idx`, returning the two fragments
    /// (connected components of the remaining graph). Each fragment is an
    /// open-shell radical (no hydrogen capping).
    pub fn break_bond(&self, bond_idx: usize) -> Option<(Molecule, Molecule)> {
        let bond = *self.bonds.get(bond_idx)?;
        // Union-find over atoms, skipping the broken bond.
        let mut parent: Vec<usize> = (0..self.atoms.len()).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (i, b) in self.bonds.iter().enumerate() {
            if i == bond_idx {
                continue;
            }
            let (ra, rb) = (find(&mut parent, b.a), find(&mut parent, b.b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let root_a = find(&mut parent, bond.a);
        let root_b = find(&mut parent, bond.b);
        if root_a == root_b {
            return None; // ring bond: breaking it does not split the graph
        }
        let extract = |root: usize, parent: &mut Vec<usize>| -> Molecule {
            let members: Vec<usize> = (0..self.atoms.len())
                .filter(|&i| find(parent, i) == root)
                .collect();
            let remap: std::collections::HashMap<usize, usize> = members
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            Molecule {
                atoms: members.iter().map(|&i| self.atoms[i]).collect(),
                bonds: self
                    .bonds
                    .iter()
                    .enumerate()
                    .filter(|&(i, b)| {
                        i != bond_idx && remap.contains_key(&b.a) && remap.contains_key(&b.b)
                    })
                    .map(|(_, b)| Bond {
                        a: remap[&b.a],
                        b: remap[&b.b],
                        order: b.order,
                    })
                    .collect(),
                charge: 0,
            }
        };
        let f1 = extract(root_a, &mut parent);
        let f2 = extract(root_b, &mut parent);
        Some((f1, f2))
    }

    /// Deterministic bracket rendering used as the `fragment1`/`fragment2`
    /// strings in provenance messages (Listing-1 style, e.g. `[H]` or
    /// `[H]OC([H])([H])[C]([H])[H]`-like shapes).
    pub fn bracket_form(&self) -> String {
        if self.atoms.is_empty() {
            return String::new();
        }
        let mut visited = vec![false; self.atoms.len()];
        let mut out = String::new();
        self.render_atom(0, &mut visited, &mut out);
        out
    }

    fn render_atom(&self, atom: usize, visited: &mut Vec<bool>, out: &mut String) {
        visited[atom] = true;
        out.push('[');
        out.push_str(self.atoms[atom].element.symbol());
        out.push(']');
        let neighbors: Vec<usize> = self
            .bonds
            .iter()
            .filter_map(|b| {
                if b.a == atom && !visited[b.b] {
                    Some(b.b)
                } else if b.b == atom && !visited[b.a] {
                    Some(b.a)
                } else {
                    None
                }
            })
            .collect();
        for (i, n) in neighbors.iter().enumerate() {
            if visited[*n] {
                continue;
            }
            if i + 1 < neighbors.len() {
                out.push('(');
                self.render_atom(*n, visited, out);
                out.push(')');
            } else {
                self.render_atom(*n, visited, out);
            }
        }
    }
}

fn parse_element(s: &str) -> Option<Element> {
    match s {
        "C" => Some(Element::C),
        "N" => Some(Element::N),
        "O" => Some(Element::O),
        "H" => Some(Element::H),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethanol_structure() {
        let m = Molecule::parse("CCO").unwrap();
        assert_eq!(m.atom_count(), 9); // C2H6O: the paper's Q5 ground truth
        assert_eq!(m.heavy_atom_count(), 3);
        assert_eq!(m.formula(), "C2H6O");
        assert!((m.weight() - 46.069).abs() < 0.01);
        assert_eq!(m.multiplicity(), 1); // singlet
        assert_eq!(m.charge, 0); // neutral
    }

    #[test]
    fn ethanol_bond_census() {
        let m = Molecule::parse("CCO").unwrap();
        let labels = m.bond_labels();
        assert_eq!(labels.len(), 8);
        let names: Vec<&str> = labels.iter().map(|(_, l)| l.as_str()).collect();
        assert!(names.contains(&"C-C_1"));
        assert!(names.contains(&"C-O_1"));
        assert!(names.contains(&"O-H_1"));
        assert_eq!(names.iter().filter(|l| l.starts_with("C-H")).count(), 5);
    }

    #[test]
    fn breaking_ch_gives_radical_pair() {
        let m = Molecule::parse("CCO").unwrap();
        let (idx, _) = m
            .bond_labels()
            .into_iter()
            .find(|(_, l)| l == "C-H_1")
            .unwrap();
        let (f1, f2) = m.break_bond(idx).unwrap();
        let (big, small) = if f1.atom_count() > f2.atom_count() {
            (f1, f2)
        } else {
            (f2, f1)
        };
        assert_eq!(big.atom_count(), 8); // C2H5O radical
        assert_eq!(small.atom_count(), 1); // H atom
        assert_eq!(big.multiplicity(), 2); // doublets after homolysis
        assert_eq!(small.multiplicity(), 2);
        assert_eq!(small.bracket_form(), "[H]");
    }

    #[test]
    fn breaking_cc_partitions_atoms() {
        let m = Molecule::parse("CCO").unwrap();
        let (idx, _) = m
            .bond_labels()
            .into_iter()
            .find(|(_, l)| l == "C-C_1")
            .unwrap();
        let (f1, f2) = m.break_bond(idx).unwrap();
        assert_eq!(f1.atom_count() + f2.atom_count(), 9);
        let counts: Vec<usize> = {
            let mut v = vec![f1.atom_count(), f2.atom_count()];
            v.sort_unstable();
            v
        };
        assert_eq!(counts, vec![4, 5]); // CH3 (4 atoms) + CH2OH (5 atoms)
    }

    #[test]
    fn branches_and_brackets() {
        // Isopropanol CC(O)C → C3H8O, 12 atoms.
        let m = Molecule::parse("CC(O)C").unwrap();
        assert_eq!(m.formula(), "C3H8O");
        assert_eq!(m.atom_count(), 12);
        // Bracket hydrogen parses directly.
        let h = Molecule::parse("[H]").unwrap();
        assert_eq!(h.atom_count(), 1);
        assert_eq!(h.multiplicity(), 2);
    }

    #[test]
    fn double_bond_consumes_valence() {
        // Formaldehyde C=O → CH2O, 4 atoms.
        let m = Molecule::parse("C=O").unwrap();
        assert_eq!(m.formula(), "CH2O");
        assert_eq!(m.atom_count(), 4);
        // The C=O double bond is not in the breakable single-bond census.
        assert_eq!(m.bond_labels().len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(Molecule::parse("").is_err());
        assert!(Molecule::parse("C(C").is_err());
        assert!(Molecule::parse("C)").is_err());
        assert!(Molecule::parse("X").is_err());
        assert!(Molecule::parse("[Xx]").is_err());
    }

    #[test]
    fn bracket_form_is_deterministic() {
        let m = Molecule::parse("CCO").unwrap();
        assert_eq!(m.bracket_form(), m.bracket_form());
        assert!(m.bracket_form().starts_with("[C]"));
    }
}
