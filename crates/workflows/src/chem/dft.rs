//! Simulated density functional theory.
//!
//! The paper's chemistry workflow runs real DFT on Frontier; the agent,
//! however, only ever sees the *provenance* of those calculations. This
//! module produces thermodynamically plausible, deterministic energetics —
//! calibrated against published bond dissociation enthalpies (St. John et
//! al. 2020: C–H ≈ 98–101, C–C ≈ 87–90, O–H ≈ 105 kcal/mol) — so the
//! emitted messages are chemically sensible without a quantum chemistry
//! package. DESIGN.md documents this substitution.

use super::smiles::{Element, Molecule};

/// Hartree → kcal/mol.
pub const HARTREE_TO_KCAL: f64 = 627.509;

/// A simulated DFT engine with a fixed method/basis.
#[derive(Debug, Clone)]
pub struct SimulatedDft {
    /// Exchange-correlation functional reported in provenance (Q2: B3LYP).
    pub functional: String,
    /// Basis set reported in provenance.
    pub basis: String,
    seed: u64,
}

/// Thermochemical summary for one species.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thermochemistry {
    /// Electronic energy, Hartree.
    pub e0: f64,
    /// Zero-point vibrational energy, Hartree.
    pub z0: f64,
    /// Enthalpy correction (H − E_elec), Hartree.
    pub h0: f64,
    /// Entropy term (T·S at 298.15 K), Hartree.
    pub s0: f64,
}

impl Thermochemistry {
    /// Total enthalpy, Hartree.
    pub fn enthalpy(&self) -> f64 {
        self.e0 + self.h0
    }

    /// Gibbs free energy, Hartree.
    pub fn free_energy(&self) -> f64 {
        self.e0 + self.h0 - self.s0
    }
}

/// Isolated-atom electronic energies (Hartree), roughly B3LYP-like.
fn atom_energy(el: Element) -> f64 {
    match el {
        Element::C => -37.846,
        Element::N => -54.584,
        Element::O => -75.060,
        Element::H => -0.500,
    }
}

/// Mean bond stabilization by bond type, kcal/mol. These are what BDEs
/// reduce to under the additive energy model, so they are set directly to
/// literature-plausible dissociation energies. Pairs are normalized via
/// `Element`'s declaration order (C < N < O < H).
fn bond_stabilization_kcal(a: Element, b: Element, order: u8) -> f64 {
    use Element::*;
    let single = match (a.min(b), a.max(b)) {
        (C, C) => 87.3,
        (C, N) => 82.0,
        (C, O) => 94.1,
        (C, H) => 98.9,
        (N, N) => 38.0,
        (N, O) => 48.0,
        (N, H) => 99.0,
        (O, O) => 34.0,
        (O, H) => 104.7,
        (H, H) => 104.2,
        // Unreachable with the four supported elements; kept total.
        _ => 80.0,
    };
    if order >= 2 {
        single * 1.9
    } else {
        single
    }
}

fn splitmix(mut z: u64) -> f64 {
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl SimulatedDft {
    /// B3LYP/6-31G(2df,p)-labelled engine (the method the paper's workflow
    /// reports; Q2's expected answer).
    pub fn b3lyp(seed: u64) -> Self {
        Self {
            functional: "B3LYP".to_string(),
            basis: "6-31G(2df,p)".to_string(),
            seed,
        }
    }

    /// Per-bond jitter in kcal/mol (±0.6), keyed by bond endpoints so each
    /// C–H bond of a molecule gets a slightly different strength.
    fn bond_jitter(&self, bond_index: usize) -> f64 {
        (splitmix(self.seed ^ (bond_index as u64).wrapping_mul(0x9E37)) - 0.5) * 1.2
    }

    /// Electronic energy of a molecule, Hartree. Additive over atoms and
    /// bonds with deterministic per-bond jitter.
    pub fn electronic_energy(&self, mol: &Molecule) -> f64 {
        let atoms: f64 = mol.atoms.iter().map(|a| atom_energy(a.element)).sum();
        let bonds: f64 = mol
            .bonds
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let kcal = bond_stabilization_kcal(
                    mol.atoms[b.a].element,
                    mol.atoms[b.b].element,
                    b.order,
                ) + self.bond_jitter(i);
                kcal / HARTREE_TO_KCAL
            })
            .sum();
        atoms - bonds
    }

    /// Conformer energy: the optimized energy plus a strictly positive
    /// conformational penalty keyed by `conformer_id` (conformer 0 is not
    /// necessarily the lowest — the workflow has to search).
    pub fn conformer_energy(&self, mol: &Molecule, conformer_id: u64) -> f64 {
        let penalty_kcal = 0.3 + 4.7 * splitmix(self.seed ^ conformer_id.wrapping_mul(0x51_7cc1));
        self.electronic_energy(mol) + penalty_kcal / HARTREE_TO_KCAL
    }

    /// Geometry minimization: relaxes a conformer most of the way toward
    /// the additive optimum, deterministically.
    pub fn minimize(&self, mol: &Molecule, conformer_energy: f64) -> f64 {
        let floor = self.electronic_energy(mol);
        floor + (conformer_energy - floor) * 0.12
    }

    /// Full thermochemistry of one species.
    ///
    /// The corrections are sized so that BDE differences come out with the
    /// Listing-1 offsets: `ΔH ≈ ΔE + 1.6 kcal/mol`, `ΔG ≈ ΔE − 6.3
    /// kcal/mol` for a homolytic split (one species → two).
    pub fn thermochemistry(&self, mol: &Molecule) -> Thermochemistry {
        let e0 = self.electronic_energy(mol);
        let n = mol.atom_count() as f64;
        let nbonds = mol.bonds.len() as f64;
        // ZPE scales with vibrational modes ≈ bonds (reported, not part of
        // the enthalpy correction below — the correction is calibrated as a
        // whole against the Listing-1 offsets).
        let z0 = 0.0095 * nbonds + 0.0004 * n;
        // H − E: atom-proportional thermal term (cancels exactly in a
        // homolytic split, since fragment atoms sum to the parent's) plus a
        // per-molecule +1.6 kcal/mol that appears once more on the product
        // side, giving ΔH ≈ ΔE + 1.6 as in Listing 1.
        let h0 = 0.0012 * n + 1.6 / HARTREE_TO_KCAL;
        // T·S: per-molecule translational entropy of 7.86 kcal/mol; one
        // extra molecule on the product side gives ΔG ≈ ΔH − 7.86
        // ≈ ΔE − 6.26, matching Listing 1 (98.65 / 100.23 / 92.39).
        let s0 = 7.86 / HARTREE_TO_KCAL + 0.0021 * n;
        Thermochemistry { e0, z0, h0, s0 }
    }

    /// Thermochemistry of the two fragments from breaking `bond_idx`,
    /// *consistent with the parent's bond jitter*: each surviving bond
    /// keeps the stabilization it had in the parent, so the energy balance
    /// `E(f1) + E(f2) − E(parent)` reduces exactly to the broken bond's
    /// stabilization (what an unrelaxed homolytic cleavage gives).
    pub fn fragment_thermochemistry(
        &self,
        parent: &Molecule,
        bond_idx: usize,
    ) -> Option<(Thermochemistry, Thermochemistry, Molecule, Molecule)> {
        let (f1, f2) = parent.break_bond(bond_idx)?;
        // Partition the parent's bond stabilization between the fragments:
        // a surviving parent bond belongs to whichever fragment holds its
        // atoms. We recover the assignment by walking parent bonds and
        // asking which fragment's atom multiset the endpoints fell into —
        // equivalently, recompute per-fragment sums from the parent side.
        let broken = parent.bonds[bond_idx];
        // Atom partition: redo the component split to know membership.
        let mut comp = vec![usize::MAX; parent.atoms.len()];
        let mut stack = vec![broken.a];
        comp[broken.a] = 0;
        while let Some(x) = stack.pop() {
            for (i, b) in parent.bonds.iter().enumerate() {
                if i == bond_idx {
                    continue;
                }
                for (p, q) in [(b.a, b.b), (b.b, b.a)] {
                    if p == x && comp[q] == usize::MAX {
                        comp[q] = 0;
                        stack.push(q);
                    }
                }
            }
        }
        for c in comp.iter_mut() {
            if *c == usize::MAX {
                *c = 1;
            }
        }
        let mut e = [0.0f64; 2];
        for (i, a) in parent.atoms.iter().enumerate() {
            e[comp[i]] += atom_energy(a.element);
        }
        for (i, b) in parent.bonds.iter().enumerate() {
            if i == bond_idx {
                continue;
            }
            let kcal = bond_stabilization_kcal(
                parent.atoms[b.a].element,
                parent.atoms[b.b].element,
                b.order,
            ) + self.bond_jitter(i);
            e[comp[b.a]] -= kcal / HARTREE_TO_KCAL;
        }
        let (e1, e2) = if comp[broken.a] == 0 {
            (e[0], e[1])
        } else {
            (e[1], e[0])
        };
        let make = |frag: &Molecule, e0: f64| {
            let base = self.thermochemistry(frag);
            Thermochemistry { e0, ..base }
        };
        let t1 = make(&f1, e1);
        let t2 = make(&f2, e2);
        Some((t1, t2, f1, f2))
    }

    /// Bond dissociation energetics for breaking `bond_idx` homolytically:
    /// `(ΔE, ΔH, ΔG)` in kcal/mol.
    pub fn bde(&self, mol: &Molecule, bond_idx: usize) -> Option<(f64, f64, f64)> {
        let parent = self.thermochemistry(mol);
        let (t1, t2, _, _) = self.fragment_thermochemistry(mol, bond_idx)?;
        let de = (t1.e0 + t2.e0 - parent.e0) * HARTREE_TO_KCAL;
        let dh = (t1.enthalpy() + t2.enthalpy() - parent.enthalpy()) * HARTREE_TO_KCAL;
        let dg = (t1.free_energy() + t2.free_energy() - parent.free_energy()) * HARTREE_TO_KCAL;
        Some((de, dh, dg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ethanol() -> Molecule {
        Molecule::parse("CCO").unwrap()
    }

    #[test]
    fn bde_magnitudes_match_literature_bands() {
        let dft = SimulatedDft::b3lyp(7);
        let m = ethanol();
        for (idx, label) in m.bond_labels() {
            let (de, dh, dg) = dft.bde(&m, idx).unwrap();
            let band = match label.split('_').next().unwrap() {
                "C-C" => 85.0..91.0,
                "C-H" => 96.0..102.5,
                "C-O" => 91.0..97.0,
                "O-H" => 102.0..107.5,
                other => panic!("unexpected bond type {other}"),
            };
            assert!(band.contains(&de), "{label}: ΔE={de} outside {band:?}");
            // Listing-1 offsets: ΔH ≈ ΔE + 1.6, ΔG ≈ ΔE − 6.3.
            assert!((dh - de - 1.6).abs() < 0.3, "{label}: ΔH−ΔE = {}", dh - de);
            assert!((dg - de + 6.3).abs() < 0.5, "{label}: ΔG−ΔE = {}", dg - de);
        }
    }

    #[test]
    fn oh_is_strongest_cc_is_weakest() {
        let dft = SimulatedDft::b3lyp(7);
        let m = ethanol();
        let mut by_label: Vec<(String, f64)> = m
            .bond_labels()
            .into_iter()
            .map(|(idx, l)| (l, dft.bde(&m, idx).unwrap().2))
            .collect();
        by_label.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert!(by_label.first().unwrap().0.starts_with("C-C"));
        assert!(by_label.last().unwrap().0.starts_with("O-H"));
    }

    #[test]
    fn conformer_search_finds_lower_energy() {
        let dft = SimulatedDft::b3lyp(3);
        let m = ethanol();
        let floor = dft.electronic_energy(&m);
        for k in 0..5 {
            let conf = dft.conformer_energy(&m, k);
            assert!(conf > floor, "conformer energy must sit above optimum");
            let minimized = dft.minimize(&m, conf);
            assert!(minimized < conf);
            assert!(minimized >= floor);
        }
    }

    #[test]
    fn energies_are_deterministic() {
        let a = SimulatedDft::b3lyp(11);
        let b = SimulatedDft::b3lyp(11);
        let m = ethanol();
        assert_eq!(a.electronic_energy(&m), b.electronic_energy(&m));
        assert_ne!(
            SimulatedDft::b3lyp(12).electronic_energy(&m),
            a.electronic_energy(&m)
        );
    }

    #[test]
    fn ethanol_energy_scale_is_plausible() {
        let dft = SimulatedDft::b3lyp(7);
        let e = dft.electronic_energy(&ethanol());
        // Real B3LYP ethanol ≈ −155.03 Ha; additive model lands nearby.
        assert!((-156.5..-153.5).contains(&e), "e0={e}");
    }

    #[test]
    fn hydrogen_atom_has_no_correction_terms_blowup() {
        let dft = SimulatedDft::b3lyp(7);
        let h = Molecule::parse("[H]").unwrap();
        let t = dft.thermochemistry(&h);
        assert!((t.e0 - -0.5).abs() < 1e-9);
        assert!(t.z0.abs() < 0.01);
    }

    #[test]
    fn listing1_style_offsets_exact() {
        let dft = SimulatedDft::b3lyp(7);
        let m = ethanol();
        let (idx, _) = m
            .bond_labels()
            .into_iter()
            .find(|(_, l)| l == "C-H_3")
            .unwrap();
        let (de, dh, dg) = dft.bde(&m, idx).unwrap();
        assert!((dh - de - 1.6).abs() < 1e-6);
        assert!((dg - de + 6.26).abs() < 1e-6);
    }
}
