//! Workflow DAG definition and execution.
//!
//! Workflows are DAGs of named tasks; each task consumes the `generated`
//! values of its dependencies and produces a new `generated` value. Two
//! executors are provided: a deterministic sequential one (used by the
//! evaluation harness so task ordinals and telemetry are reproducible) and
//! a parallel one (crossbeam scoped threads over a ready-queue) exercising
//! the HPC path.

use prov_capture::CaptureContext;
use prov_model::{TaskId, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The callable body of one task: dependency outputs (keyed by node name)
/// plus this node's declared inputs → generated value.
pub type TaskFn =
    Arc<dyn Fn(&Value, &HashMap<String, Value>) -> Result<Value, String> + Send + Sync>;

/// One node of the workflow DAG.
#[derive(Clone)]
pub struct TaskNode {
    /// Unique node name within the DAG.
    pub name: String,
    /// Activity id recorded in provenance (several nodes may share one).
    pub activity: String,
    /// Declared inputs, recorded as `used`.
    pub used: Value,
    /// Telemetry intensity hint in `[0,1]`.
    pub intensity: f64,
    /// Names of upstream nodes.
    pub deps: Vec<String>,
    /// Task body.
    pub run: TaskFn,
}

/// A workflow DAG under construction.
#[derive(Default, Clone)]
pub struct WorkflowDag {
    nodes: Vec<TaskNode>,
}

/// Errors raised by DAG validation/execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Two nodes share a name.
    DuplicateName(String),
    /// A dependency references a missing node.
    UnknownDependency {
        /// Node declaring the dependency.
        node: String,
        /// The missing dependency name.
        dep: String,
    },
    /// The graph contains a cycle.
    Cycle,
    /// A task body failed.
    TaskFailed {
        /// Failing node name.
        node: String,
        /// Error message.
        error: String,
    },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::DuplicateName(n) => write!(f, "duplicate node name '{n}'"),
            DagError::UnknownDependency { node, dep } => {
                write!(f, "node '{node}' depends on unknown node '{dep}'")
            }
            DagError::Cycle => write!(f, "workflow graph contains a cycle"),
            DagError::TaskFailed { node, error } => write!(f, "task '{node}' failed: {error}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Result of executing a DAG: per-node generated values and task ids.
#[derive(Debug, Clone, Default)]
pub struct DagRun {
    /// Node name → generated value.
    pub outputs: HashMap<String, Value>,
    /// Node name → provenance task id.
    pub task_ids: HashMap<String, TaskId>,
}

impl WorkflowDag {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node (builder style).
    pub fn add(
        mut self,
        name: impl Into<String>,
        activity: impl Into<String>,
        used: Value,
        intensity: f64,
        deps: &[&str],
        run: TaskFn,
    ) -> Self {
        self.nodes.push(TaskNode {
            name: name.into(),
            activity: activity.into(),
            used,
            intensity,
            deps: deps.iter().map(|s| s.to_string()).collect(),
            run,
        });
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes in insertion order (read-only view; used e.g. to derive a
    /// prospective plan from the planned structure).
    pub fn nodes(&self) -> &[TaskNode] {
        &self.nodes
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validate names/deps and compute a topological order.
    pub fn topo_order(&self) -> Result<Vec<usize>, DagError> {
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if index.insert(n.name.as_str(), i).is_some() {
                return Err(DagError::DuplicateName(n.name.clone()));
            }
        }
        let mut indegree = vec![0usize; self.nodes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for d in &n.deps {
                let &j = index
                    .get(d.as_str())
                    .ok_or_else(|| DagError::UnknownDependency {
                        node: n.name.clone(),
                        dep: d.clone(),
                    })?;
                indegree[i] += 1;
                dependents[j].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        // Stable order: process ready nodes in insertion order.
        ready.sort_unstable();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut queue = std::collections::VecDeque::from(ready);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &k in &dependents[i] {
                indegree[k] -= 1;
                if indegree[k] == 0 {
                    queue.push_back(k);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(DagError::Cycle);
        }
        Ok(order)
    }

    /// Execute sequentially in deterministic topological order.
    pub fn execute(&self, ctx: &CaptureContext) -> Result<DagRun, DagError> {
        let order = self.topo_order()?;
        let mut run = DagRun::default();
        for i in order {
            let node = &self.nodes[i];
            let dep_outputs: HashMap<String, Value> = node
                .deps
                .iter()
                .map(|d| {
                    (
                        d.clone(),
                        run.outputs.get(d).cloned().unwrap_or(Value::Null),
                    )
                })
                .collect();
            let dep_ids: Vec<TaskId> = node
                .deps
                .iter()
                .filter_map(|d| run.task_ids.get(d).cloned())
                .collect();
            let body = node.run.clone();
            let deps = dep_outputs.clone();
            let captured = ctx.instrument(
                node.activity.as_str(),
                node.used.clone(),
                node.intensity,
                &dep_ids,
                move |used| body(used, &deps),
            );
            if captured.message.status == prov_model::TaskStatus::Error {
                let err = captured
                    .message
                    .generated
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                return Err(DagError::TaskFailed {
                    node: node.name.clone(),
                    error: err,
                });
            }
            run.outputs
                .insert(node.name.clone(), captured.message.generated.clone());
            run.task_ids.insert(node.name.clone(), captured.task_id);
        }
        ctx.flush();
        Ok(run)
    }

    /// Execute with `threads` workers: tasks run as soon as their
    /// dependencies complete (wave-front parallelism).
    pub fn execute_parallel(
        &self,
        ctx: &CaptureContext,
        threads: usize,
    ) -> Result<DagRun, DagError> {
        let order = self.topo_order()?; // validation only
        let _ = order;
        let n = self.nodes.len();
        let index: HashMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, nd)| (nd.name.as_str(), i))
            .collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree: Vec<usize> = vec![0; n];
        for (i, nd) in self.nodes.iter().enumerate() {
            for d in &nd.deps {
                let j = index[d.as_str()];
                dependents[j].push(i);
                indegree[i] += 1;
            }
        }

        use parking_lot::Mutex;
        struct Shared {
            outputs: Mutex<HashMap<String, Value>>,
            task_ids: Mutex<HashMap<String, TaskId>>,
            indegree: Mutex<Vec<usize>>,
            error: Mutex<Option<DagError>>,
        }
        let shared = Shared {
            outputs: Mutex::new(HashMap::with_capacity(n)),
            task_ids: Mutex::new(HashMap::with_capacity(n)),
            indegree: Mutex::new(indegree),
            error: Mutex::new(None),
        };
        let (tx, rx) = crossbeam::channel::unbounded::<Option<usize>>();
        let mut initial = 0;
        {
            let indeg = shared.indegree.lock();
            for (i, &d) in indeg.iter().enumerate() {
                if d == 0 {
                    tx.send(Some(i)).expect("queue open");
                    initial += 1;
                }
            }
        }
        if initial == 0 && n > 0 {
            return Err(DagError::Cycle);
        }
        let remaining = std::sync::atomic::AtomicUsize::new(n);

        crossbeam::thread::scope(|s| {
            for _ in 0..threads.max(1) {
                let rx = rx.clone();
                let tx = tx.clone();
                let shared = &shared;
                let nodes = &self.nodes;
                let dependents = &dependents;
                let remaining = &remaining;
                s.spawn(move |_| {
                    while let Ok(Some(i)) = rx.recv() {
                        let node = &nodes[i];
                        let dep_outputs: HashMap<String, Value> = {
                            let outs = shared.outputs.lock();
                            node.deps
                                .iter()
                                .map(|d| (d.clone(), outs.get(d).cloned().unwrap_or(Value::Null)))
                                .collect()
                        };
                        let dep_ids: Vec<TaskId> = {
                            let ids = shared.task_ids.lock();
                            node.deps
                                .iter()
                                .filter_map(|d| ids.get(d).cloned())
                                .collect()
                        };
                        let body = node.run.clone();
                        let deps = dep_outputs.clone();
                        let captured = ctx.instrument(
                            node.activity.as_str(),
                            node.used.clone(),
                            node.intensity,
                            &dep_ids,
                            move |used| body(used, &deps),
                        );
                        if captured.message.status == prov_model::TaskStatus::Error {
                            let err = captured
                                .message
                                .generated
                                .get("error")
                                .and_then(Value::as_str)
                                .unwrap_or("unknown")
                                .to_string();
                            *shared.error.lock() = Some(DagError::TaskFailed {
                                node: node.name.clone(),
                                error: err,
                            });
                            // Drain: wake all workers to exit.
                            for _ in 0..threads {
                                let _ = tx.send(None);
                            }
                            return;
                        }
                        shared
                            .outputs
                            .lock()
                            .insert(node.name.clone(), captured.message.generated.clone());
                        shared
                            .task_ids
                            .lock()
                            .insert(node.name.clone(), captured.task_id);
                        for &k in &dependents[i] {
                            let mut indeg = shared.indegree.lock();
                            indeg[k] -= 1;
                            if indeg[k] == 0 {
                                let _ = tx.send(Some(k));
                            }
                        }
                        if remaining.fetch_sub(1, std::sync::atomic::Ordering::AcqRel) == 1 {
                            for _ in 0..threads {
                                let _ = tx.send(None);
                            }
                        }
                    }
                });
            }
            drop(tx);
        })
        .expect("dag worker panicked");

        if let Some(e) = shared.error.into_inner() {
            return Err(e);
        }
        ctx.flush();
        Ok(DagRun {
            outputs: shared.outputs.into_inner(),
            task_ids: shared.task_ids.into_inner(),
        })
    }
}

/// Convenience: wrap a pure function of the dependency map as a [`TaskFn`].
pub fn task_fn(
    f: impl Fn(&Value, &HashMap<String, Value>) -> Result<Value, String> + Send + Sync + 'static,
) -> TaskFn {
    Arc::new(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{obj, sim_clock};
    use prov_stream::StreamingHub;

    fn ctx(hub: &StreamingHub) -> CaptureContext {
        CaptureContext::new(hub, "camp", "wf", sim_clock(), 7)
    }

    fn diamond() -> WorkflowDag {
        WorkflowDag::new()
            .add(
                "a",
                "start",
                obj! {"x" => 2.0},
                0.1,
                &[],
                task_fn(|used, _| Ok(obj! {"v" => used.get("x").unwrap().as_f64().unwrap()})),
            )
            .add(
                "b",
                "double",
                obj! {},
                0.1,
                &["a"],
                task_fn(|_, deps| {
                    let v = deps["a"].get("v").unwrap().as_f64().unwrap();
                    Ok(obj! {"v" => v * 2.0})
                }),
            )
            .add(
                "c",
                "triple",
                obj! {},
                0.1,
                &["a"],
                task_fn(|_, deps| {
                    let v = deps["a"].get("v").unwrap().as_f64().unwrap();
                    Ok(obj! {"v" => v * 3.0})
                }),
            )
            .add(
                "d",
                "sum",
                obj! {},
                0.1,
                &["b", "c"],
                task_fn(|_, deps| {
                    let b = deps["b"].get("v").unwrap().as_f64().unwrap();
                    let c = deps["c"].get("v").unwrap().as_f64().unwrap();
                    Ok(obj! {"v" => b + c})
                }),
            )
    }

    #[test]
    fn sequential_execution_propagates_values() {
        let hub = StreamingHub::in_memory();
        let run = diamond().execute(&ctx(&hub)).unwrap();
        assert_eq!(run.outputs["d"].get("v").unwrap().as_f64(), Some(10.0));
        assert_eq!(run.task_ids.len(), 4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let hub = StreamingHub::in_memory();
        let seq = diamond().execute(&ctx(&hub)).unwrap();
        let hub2 = StreamingHub::in_memory();
        let par = diamond().execute_parallel(&ctx(&hub2), 4).unwrap();
        assert_eq!(
            seq.outputs["d"].get("v").unwrap().as_f64(),
            par.outputs["d"].get("v").unwrap().as_f64()
        );
    }

    #[test]
    fn provenance_messages_carry_lineage() {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        let run = diamond().execute(&ctx(&hub)).unwrap();
        let msgs = sub.drain();
        assert_eq!(msgs.len(), 4);
        let d_msg = msgs
            .iter()
            .find(|m| m.task_id == run.task_ids["d"])
            .unwrap();
        assert_eq!(d_msg.depends_on.len(), 2);
    }

    #[test]
    fn cycle_detected() {
        let dag = WorkflowDag::new()
            .add("a", "a", obj! {}, 0.0, &["b"], task_fn(|_, _| Ok(obj! {})))
            .add("b", "b", obj! {}, 0.0, &["a"], task_fn(|_, _| Ok(obj! {})));
        assert_eq!(dag.topo_order(), Err(DagError::Cycle));
    }

    #[test]
    fn unknown_dep_detected() {
        let dag = WorkflowDag::new().add(
            "a",
            "a",
            obj! {},
            0.0,
            &["ghost"],
            task_fn(|_, _| Ok(obj! {})),
        );
        assert!(matches!(
            dag.topo_order(),
            Err(DagError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn duplicate_name_detected() {
        let dag = WorkflowDag::new()
            .add("a", "a", obj! {}, 0.0, &[], task_fn(|_, _| Ok(obj! {})))
            .add("a", "a2", obj! {}, 0.0, &[], task_fn(|_, _| Ok(obj! {})));
        assert!(matches!(dag.topo_order(), Err(DagError::DuplicateName(_))));
    }

    #[test]
    fn task_failure_reported() {
        let hub = StreamingHub::in_memory();
        let dag = WorkflowDag::new().add(
            "explode",
            "explode",
            obj! {},
            0.0,
            &[],
            task_fn(|_, _| Err("boom".into())),
        );
        let err = dag.execute(&ctx(&hub)).unwrap_err();
        assert!(matches!(err, DagError::TaskFailed { .. }));
    }

    #[test]
    fn wide_fanout_parallel_completes() {
        let hub = StreamingHub::in_memory();
        let mut dag = WorkflowDag::new().add(
            "src",
            "src",
            obj! {"x" => 1.0},
            0.1,
            &[],
            task_fn(|u, _| Ok(u.clone())),
        );
        for i in 0..64 {
            dag = dag.add(
                format!("w{i}"),
                "worker",
                obj! {},
                0.1,
                &["src"],
                task_fn(move |_, deps| {
                    let x = deps["src"].get("x").unwrap().as_f64().unwrap();
                    Ok(obj! {"y" => x + i as f64})
                }),
            );
        }
        let run = dag.execute_parallel(&ctx(&hub), 8).unwrap();
        assert_eq!(run.outputs.len(), 65);
    }
}
