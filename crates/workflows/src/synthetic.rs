//! Use Case 1 — the synthetic mathematical workflow (Fig 5A).
//!
//! "A small set of chained mathematical transformations forming a
//! fan-out/fan-in structure that exercises both data dependency tracking
//! and semantic reasoning over intermediate states" (§5.1). Deterministic,
//! dependency-free and fast, it is the harness for prompt tuning and for
//! scaling the number of workflow instances (1 → 1000 inputs).

use crate::dag::{task_fn, DagError, DagRun, WorkflowDag};
use prov_capture::CaptureContext;
use prov_model::{obj, SharedClock, Value};
use prov_stream::StreamingHub;

/// Parameters of one synthetic workflow instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticParams {
    /// The input value fanned out to the first layer.
    pub x: f64,
    /// Scale factor used by several activities.
    pub scale: f64,
    /// Shift term used by several activities.
    pub shift: f64,
    /// Exponent for the `power` activity.
    pub exponent: f64,
}

impl SyntheticParams {
    /// The i-th input configuration of a sweep (deterministic).
    pub fn config(i: usize) -> Self {
        Self {
            x: 1.0 + i as f64 * 0.5,
            scale: 2.0 + (i % 5) as f64 * 0.25,
            shift: 1.0 + (i % 3) as f64,
            exponent: 2.0 + (i % 2) as f64,
        }
    }
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn dep_num(deps: &std::collections::HashMap<String, Value>, node: &str, key: &str) -> f64 {
    deps.get(node)
        .and_then(|v| v.get(key))
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
}

/// Build the Fig 5A DAG for one input configuration.
///
/// Layer 1 fans `x` out to four transformations; layer 2 chains three more
/// (`log_and_shift`, `power`, `subtract_and_square`); `average_results`
/// fans everything back in.
pub fn build_dag(p: SyntheticParams) -> WorkflowDag {
    let SyntheticParams {
        x,
        scale,
        shift,
        exponent,
    } = p;
    WorkflowDag::new()
        .add(
            "scale_and_shift",
            "scale_and_shift",
            obj! {"x" => x, "scale" => scale, "shift" => shift},
            0.2,
            &[],
            task_fn(|u, _| Ok(obj! {"y" => num(u, "x") * num(u, "scale") + num(u, "shift")})),
        )
        .add(
            "square_and_divide",
            "square_and_divide",
            obj! {"x" => x, "divisor" => scale},
            0.2,
            &[],
            task_fn(|u, _| {
                let d = num(u, "divisor");
                if d == 0.0 {
                    return Err("division by zero".into());
                }
                Ok(obj! {"y" => num(u, "x") * num(u, "x") / d})
            }),
        )
        .add(
            "scale_and_sqrt",
            "scale_and_sqrt",
            obj! {"x" => x, "scale" => scale},
            0.25,
            &[],
            task_fn(|u, _| {
                let v = num(u, "x") * num(u, "scale");
                if v < 0.0 {
                    return Err("sqrt of negative".into());
                }
                Ok(obj! {"y" => v.sqrt()})
            }),
        )
        .add(
            "subtract_and_shift",
            "subtract_and_shift",
            obj! {"x" => x, "subtrahend" => scale, "shift" => shift},
            0.15,
            &[],
            task_fn(|u, _| {
                Ok(obj! {"y" => num(u, "x") - num(u, "subtrahend") + num(u, "shift")})
            }),
        )
        .add(
            "log_and_shift",
            "log_and_shift",
            obj! {"shift" => shift},
            0.3,
            &["scale_and_shift"],
            task_fn(|u, deps| {
                let y = dep_num(deps, "scale_and_shift", "y");
                if y <= -1.0 {
                    return Err("log of non-positive".into());
                }
                Ok(obj! {"y" => (y + 1.0).ln() + num(u, "shift")})
            }),
        )
        .add(
            "power",
            "power",
            obj! {"exponent" => exponent},
            0.5,
            &["square_and_divide"],
            task_fn(|u, deps| {
                let y = dep_num(deps, "square_and_divide", "y");
                Ok(obj! {"y" => y.powf(num(u, "exponent"))})
            }),
        )
        .add(
            "subtract_and_square",
            "subtract_and_square",
            obj! {"subtrahend" => shift},
            0.35,
            &["scale_and_sqrt"],
            task_fn(|u, deps| {
                let y = dep_num(deps, "scale_and_sqrt", "y") - num(u, "subtrahend");
                Ok(obj! {"y" => y * y})
            }),
        )
        .add(
            "average_results",
            "average_results",
            obj! {},
            0.2,
            &[
                "log_and_shift",
                "power",
                "subtract_and_square",
                "subtract_and_shift",
            ],
            task_fn(|_, deps| {
                let vals: Vec<f64> = [
                    "log_and_shift",
                    "power",
                    "subtract_and_square",
                    "subtract_and_shift",
                ]
                .iter()
                .map(|n| dep_num(deps, n, "y"))
                .collect();
                Ok(obj! {"average" => vals.iter().sum::<f64>() / vals.len() as f64, "n_inputs" => vals.len()})
            }),
        )
}

/// The result of a synthetic sweep.
#[derive(Debug, Clone)]
pub struct SyntheticRun {
    /// One [`DagRun`] per input configuration.
    pub runs: Vec<DagRun>,
    /// Total tasks executed.
    pub tasks: usize,
}

/// Execute `n_inputs` synthetic workflow instances, streaming provenance to
/// `hub`. Each instance is a separate workflow execution under the same
/// campaign, as in the paper's 1→1000 input scaling runs.
pub fn run_sweep(
    hub: &StreamingHub,
    clock: SharedClock,
    seed: u64,
    n_inputs: usize,
) -> Result<SyntheticRun, DagError> {
    let mut runs = Vec::with_capacity(n_inputs);
    let mut tasks = 0;
    for i in 0..n_inputs {
        let ctx = CaptureContext::new(
            hub,
            "synthetic-campaign",
            format!("synthetic-wf-{i}"),
            clock.clone(),
            seed.wrapping_add(i as u64),
        );
        let dag = build_dag(SyntheticParams::config(i));
        tasks += dag.len();
        runs.push(dag.execute(&ctx)?);
    }
    Ok(SyntheticRun { runs, tasks })
}

/// Activities of the synthetic workflow, in layer order.
pub const ACTIVITIES: &[&str] = &[
    "scale_and_shift",
    "square_and_divide",
    "scale_and_sqrt",
    "subtract_and_shift",
    "log_and_shift",
    "power",
    "subtract_and_square",
    "average_results",
];

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::sim_clock;

    #[test]
    fn dag_shape_matches_figure_5a() {
        let dag = build_dag(SyntheticParams::config(0));
        assert_eq!(dag.len(), 8);
        assert!(dag.topo_order().is_ok());
    }

    #[test]
    fn math_is_correct() {
        let hub = StreamingHub::in_memory();
        let clock = sim_clock();
        let p = SyntheticParams {
            x: 2.0,
            scale: 3.0,
            shift: 1.0,
            exponent: 2.0,
        };
        let ctx = CaptureContext::new(&hub, "c", "w", clock, 1);
        let run = build_dag(p).execute(&ctx).unwrap();
        // scale_and_shift: 2*3+1 = 7 → log_and_shift: ln(8)+1
        let lns = run.outputs["log_and_shift"]
            .get("y")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((lns - (8.0f64.ln() + 1.0)).abs() < 1e-12);
        // square_and_divide: 4/3 → power: (4/3)^2
        let pw = run.outputs["power"].get("y").unwrap().as_f64().unwrap();
        assert!((pw - (4.0 / 3.0f64).powi(2)).abs() < 1e-12);
        // average over 4 values
        let avg = run.outputs["average_results"]
            .get("average")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(avg.is_finite());
    }

    #[test]
    fn sweep_emits_all_tasks() {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        let run = run_sweep(&hub, sim_clock(), 42, 5).unwrap();
        assert_eq!(run.tasks, 40);
        assert_eq!(sub.drain().len(), 40);
    }

    #[test]
    fn sweep_is_deterministic() {
        let hub1 = StreamingHub::in_memory();
        let hub2 = StreamingHub::in_memory();
        let s1 = hub1.subscribe_tasks();
        let s2 = hub2.subscribe_tasks();
        run_sweep(&hub1, sim_clock(), 42, 3).unwrap();
        run_sweep(&hub2, sim_clock(), 42, 3).unwrap();
        let m1: Vec<String> = s1.drain().iter().map(|m| m.to_json()).collect();
        let m2: Vec<String> = s2.drain().iter().map(|m| m.to_json()).collect();
        assert_eq!(m1, m2);
    }

    #[test]
    fn distinct_configs_vary() {
        assert_ne!(SyntheticParams::config(0), SyntheticParams::config(1));
    }
}
