//! Use Case 3 — additive manufacturing (metal 3D printing).
//!
//! §5.4: "In addition to these two workflows, we are already using the
//! agent in a third workflow in the additive manufacturing (metal 3D
//! printing) domain." The paper gives no further detail, so this module
//! builds the closest canonical equivalent: a **laser powder bed fusion
//! (LPBF)** build-and-qualify workflow. Like the chemistry use case, the
//! agent never sees the physics — only the Listing-1-shaped provenance
//! messages — so what matters for the reproduction is that the workflow
//! emits a realistic, nested, domain-specific dataflow schema that the
//! dynamic-schema RAG pipeline can generalize to *without any
//! domain-specific prompt tuning*.
//!
//! The process simulation is a deterministic empirical surrogate built
//! around the quantities real LPBF monitoring pipelines track:
//!
//! * **volumetric energy density** `E = P / (v · h · t)` (J/mm³) from
//!   laser power `P`, scan speed `v`, hatch spacing `h`, layer thickness
//!   `t` — the standard first-order process parameter;
//! * **melt-pool peak temperature and width**, monotone in `E` and
//!   `P/v` respectively;
//! * **porosity mechanisms** at both ends of the process window:
//!   lack-of-fusion below it, keyholing above it.

use crate::dag::{task_fn, DagError, DagRun, WorkflowDag};
use prov_capture::CaptureContext;
use prov_model::{obj, SharedClock, Value};
use prov_stream::StreamingHub;

/// Build parameters for one LPBF part.
#[derive(Debug, Clone, PartialEq)]
pub struct AmParams {
    /// Part identifier (ends up in `used.part_id`).
    pub part_id: String,
    /// Alloy powder (e.g. `"Ti-6Al-4V"`, `"316L"`, `"IN718"`).
    pub alloy: &'static str,
    /// Number of build layers.
    pub n_layers: usize,
    /// Layer thickness in micrometres.
    pub layer_thickness_um: f64,
    /// Hatch spacing in millimetres.
    pub hatch_spacing_mm: f64,
    /// Laser power in watts.
    pub laser_power_w: f64,
    /// Scan speed in mm/s.
    pub scan_speed_mm_s: f64,
    /// Build-plate preheat in °C.
    pub preheat_c: f64,
}

impl AmParams {
    /// Nominal 316L parameters: inside the dense process window.
    pub fn nominal(part_id: impl Into<String>) -> Self {
        Self {
            part_id: part_id.into(),
            alloy: "316L",
            n_layers: 12,
            layer_thickness_um: 40.0,
            hatch_spacing_mm: 0.11,
            laser_power_w: 285.0,
            scan_speed_mm_s: 960.0,
            preheat_c: 80.0,
        }
    }

    /// The i-th part of a fleet build. Most parts are nominal with small
    /// parameter drifts; every 5th part is power-starved (lack-of-fusion
    /// risk) and every 7th is overdriven (keyhole risk), so fleet-level
    /// queries ("how many parts failed qualification?") have substance.
    pub fn fleet_config(i: usize) -> Self {
        let mut p = Self::nominal(format!("part-{i:03}"));
        p.n_layers = 10 + (i % 4) * 2;
        p.laser_power_w += (i % 3) as f64 * 5.0;
        p.scan_speed_mm_s += (i % 4) as f64 * 20.0;
        if i > 0 && i.is_multiple_of(5) {
            // Starved: E drops well below the lack-of-fusion threshold.
            p.laser_power_w = 150.0;
            p.scan_speed_mm_s = 1250.0;
        } else if i > 0 && i.is_multiple_of(7) {
            // Overdriven: E rises past the keyhole threshold.
            p.laser_power_w = 370.0;
            p.scan_speed_mm_s = 520.0;
        }
        p
    }

    /// Volumetric energy density in J/mm³: `P / (v · h · t)`.
    pub fn energy_density(&self) -> f64 {
        let t_mm = self.layer_thickness_um / 1000.0;
        self.laser_power_w / (self.scan_speed_mm_s * self.hatch_spacing_mm * t_mm)
    }
}

/// Dense process window for the surrogate alloys (J/mm³): below
/// [`LOF_THRESHOLD`] lack-of-fusion pores form, above [`KEYHOLE_THRESHOLD`]
/// keyhole pores form.
pub const LOF_THRESHOLD: f64 = 48.0;
/// Upper bound of the dense window (see [`LOF_THRESHOLD`]).
pub const KEYHOLE_THRESHOLD: f64 = 115.0;
/// Parts qualify when final density is at or above this percentage.
pub const QUALIFY_DENSITY_PCT: f64 = 99.5;

fn splitmix(mut z: u64) -> f64 {
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-layer process physics (deterministic surrogate).
#[derive(Debug, Clone, Copy)]
struct LayerPhysics {
    energy_density: f64,
    melt_pool_temp_c: f64,
    melt_pool_width_um: f64,
    spatter_events: i64,
    anomaly_score: f64,
    thermal_deviation_c: f64,
    lof_flag: bool,
    keyhole_flag: bool,
    porosity_contribution_pct: f64,
}

/// The process surrogate: maps (params, layer, seed) to monitored values.
#[derive(Debug, Clone)]
pub struct ProcessModel {
    seed: u64,
}

impl ProcessModel {
    /// Surrogate keyed by an experiment seed (all noise derives from it).
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    fn layer(&self, p: &AmParams, layer: usize) -> LayerPhysics {
        let e = p.energy_density();
        let noise =
            |salt: u64| splitmix(self.seed ^ salt ^ (layer as u64).wrapping_mul(0xA5A5)) - 0.5;
        // Peak melt-pool temperature: monotone in energy density, anchored
        // so the nominal window lands near 316L melt-pool observations
        // (~1900–2200 °C), with small per-layer thermal noise.
        let melt_pool_temp_c =
            p.preheat_c + 1950.0 * (e / 60.0).powf(0.65) * (1.0 + 0.02 * noise(0x11));
        // Melt-pool width grows with P/v (Rosenthal-style scaling).
        let melt_pool_width_um = 1000.0
            * 0.36
            * (p.laser_power_w / p.scan_speed_mm_s).sqrt()
            * (1.0 + 0.03 * noise(0x22));
        // Spatter: rare in-window, frequent when keyholing.
        let keyhole_excess = (e - KEYHOLE_THRESHOLD).max(0.0);
        let spatter_events = (keyhole_excess * 0.4 + 1.5 * (noise(0x33) + 0.5)) as i64;
        let lof_deficit = (LOF_THRESHOLD - e).max(0.0);
        let lof_flag = lof_deficit > 0.0;
        let keyhole_flag = keyhole_excess > 0.0;
        // Porosity: lack-of-fusion grows fast below the window, keyholing
        // more slowly above it; in-window floor of ~0.03 %.
        let porosity_contribution_pct =
            0.03 + 0.09 * lof_deficit + 0.05 * keyhole_excess + 0.01 * (noise(0x44) + 0.5);
        let thermal_deviation_c =
            (melt_pool_temp_c - (p.preheat_c + 1950.0)).abs() / 20.0 + 14.0 * (noise(0x55) + 0.5);
        // In-situ anomaly score in [0, 1]: out-of-window layers stand out.
        let anomaly_score =
            (0.05 + 0.04 * lof_deficit + 0.025 * keyhole_excess + 0.05 * (noise(0x66) + 0.5))
                .min(1.0);
        LayerPhysics {
            energy_density: e,
            melt_pool_temp_c,
            melt_pool_width_um,
            spatter_events,
            anomaly_score,
            thermal_deviation_c,
            lof_flag,
            keyhole_flag,
            porosity_contribution_pct,
        }
    }
}

/// Summary of one part build.
#[derive(Debug, Clone)]
pub struct AmRun {
    /// Part identifier.
    pub part_id: String,
    /// Layers built.
    pub n_layers: usize,
    /// Volumetric energy density used (J/mm³).
    pub energy_density: f64,
    /// Final part porosity (%).
    pub porosity_pct: f64,
    /// Final density (%), `100 − porosity`.
    pub density_pct: f64,
    /// Whether the part passed qualification.
    pub qualified: bool,
    /// Layers flagged for lack-of-fusion risk.
    pub lof_layers: usize,
    /// Layers flagged for keyhole risk.
    pub keyhole_layers: usize,
    /// The executed DAG.
    pub run: DagRun,
}

/// Build the LPBF DAG for one part: `load_geometry → slice_geometry →`
/// per-layer fan-out of `generate_hatch → laser_scan → monitor_melt_pool`
/// `→ detect_porosity → qualify_part` fan-in.
pub fn build_am_dag(params: &AmParams, model: &ProcessModel) -> WorkflowDag {
    let p = params.clone();
    let height_mm = p.n_layers as f64 * p.layer_thickness_um / 1000.0;
    let physics: Vec<LayerPhysics> = (0..p.n_layers).map(|l| model.layer(&p, l)).collect();

    let mut dag = WorkflowDag::new()
        .add(
            "load_geometry",
            "load_geometry",
            obj! {
                "part_id" => p.part_id.as_str(),
                "alloy" => p.alloy,
                "height_mm" => height_mm,
                "stl_triangles" => 50_000 + (p.n_layers as i64) * 1_000,
            },
            0.3,
            &[],
            {
                let n_layers = p.n_layers;
                task_fn(move |u, _| {
                    let h = u.get("height_mm").and_then(Value::as_f64).unwrap_or(0.0);
                    Ok(obj! {"volume_cm3" => h * 0.84, "n_layers_estimate" => n_layers as i64})
                })
            },
        )
        .add(
            "slice_geometry",
            "slice_geometry",
            obj! {
                "part_id" => p.part_id.as_str(),
                "layer_thickness_um" => p.layer_thickness_um,
            },
            0.4,
            &["load_geometry"],
            {
                let n_layers = p.n_layers;
                task_fn(move |_, _| {
                    Ok(obj! {"n_layers" => n_layers as i64, "slicer" => "stripes-67deg"})
                })
            },
        );

    let mut monitor_names: Vec<String> = Vec::with_capacity(p.n_layers);
    for (layer, &ph) in physics.iter().enumerate().take(p.n_layers) {
        let hatch_name = format!("generate_hatch_{layer}");
        let scan_name = format!("laser_scan_{layer}");
        let monitor_name = format!("monitor_melt_pool_{layer}");
        let rotation_deg = (layer as f64 * 67.0) % 180.0;
        let scan_length_mm = 1_400.0 / p.hatch_spacing_mm / 10.0;
        let n_vectors = (36.0 / p.hatch_spacing_mm) as i64;
        dag = dag
            .add(
                hatch_name.clone(),
                "generate_hatch",
                obj! {
                    "part_id" => p.part_id.as_str(),
                    "layer" => layer as i64,
                    "hatch_spacing_mm" => p.hatch_spacing_mm,
                    "rotation_deg" => rotation_deg,
                    "strategy" => "stripes",
                },
                0.1,
                &["slice_geometry"],
                task_fn(move |_, _| {
                    Ok(obj! {"n_vectors" => n_vectors, "scan_length_mm" => scan_length_mm})
                }),
            )
            .add(
                scan_name.clone(),
                "laser_scan",
                obj! {
                    "part_id" => p.part_id.as_str(),
                    "layer" => layer as i64,
                    "laser_power_w" => p.laser_power_w,
                    "scan_speed_mm_s" => p.scan_speed_mm_s,
                    "preheat_c" => p.preheat_c,
                },
                0.8,
                &[hatch_name.as_str()],
                task_fn(move |_, _| {
                    Ok(obj! {
                        "energy_density_j_mm3" => ph.energy_density,
                        "melt_pool_temp_c" => ph.melt_pool_temp_c,
                        "melt_pool_width_um" => ph.melt_pool_width_um,
                        "spatter_events" => ph.spatter_events,
                        "layer_time_s" => scan_length_mm / p.scan_speed_mm_s * 60.0,
                    })
                }),
            )
            .add(
                monitor_name.clone(),
                "monitor_melt_pool",
                obj! {
                    "part_id" => p.part_id.as_str(),
                    "layer" => layer as i64,
                    "sampling_khz" => 100,
                },
                0.25,
                &[scan_name.as_str()],
                task_fn(move |_, _| {
                    Ok(obj! {
                        "anomaly_score" => ph.anomaly_score,
                        "thermal_deviation_c" => ph.thermal_deviation_c,
                        "lof_risk" => ph.lof_flag,
                        "keyhole_risk" => ph.keyhole_flag,
                    })
                }),
            );
        monitor_names.push(monitor_name);
    }

    let porosity_pct: f64 = physics
        .iter()
        .map(|ph| ph.porosity_contribution_pct)
        .sum::<f64>()
        / p.n_layers.max(1) as f64;
    let lof_layers = physics.iter().filter(|ph| ph.lof_flag).count() as i64;
    let keyhole_layers = physics.iter().filter(|ph| ph.keyhole_flag).count() as i64;
    let worst_layer = physics
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.anomaly_score.total_cmp(&b.1.anomaly_score))
        .map(|(l, _)| l as i64)
        .unwrap_or(0);
    let density_pct = 100.0 - porosity_pct;
    let qualified = density_pct >= QUALIFY_DENSITY_PCT;
    let monitor_refs: Vec<&str> = monitor_names.iter().map(String::as_str).collect();

    dag = dag
        .add(
            "detect_porosity",
            "detect_porosity",
            obj! {
                "part_id" => p.part_id.as_str(),
                "method" => "layerwise-thermal",
            },
            0.6,
            &monitor_refs,
            task_fn(move |_, _| {
                Ok(obj! {
                    "porosity_pct" => porosity_pct,
                    "lof_layers" => lof_layers,
                    "keyhole_layers" => keyhole_layers,
                    "worst_layer" => worst_layer,
                })
            }),
        )
        .add(
            "qualify_part",
            "qualify_part",
            obj! {
                "part_id" => p.part_id.as_str(),
                "alloy" => p.alloy,
                "density_threshold_pct" => QUALIFY_DENSITY_PCT,
            },
            0.3,
            &["detect_porosity"],
            task_fn(move |_, _| {
                Ok(obj! {
                    "density_pct" => density_pct,
                    "qualified" => qualified,
                    "defect_count" => lof_layers + keyhole_layers,
                })
            }),
        );
    dag
}

/// Execute the LPBF workflow for one part, streaming provenance to `hub`.
pub fn run_am_workflow(
    hub: &StreamingHub,
    clock: SharedClock,
    seed: u64,
    params: &AmParams,
) -> Result<AmRun, DagError> {
    let model = ProcessModel::new(seed);
    let ctx = CaptureContext::new(
        hub,
        "am-campaign",
        format!("am-wf-{}", params.part_id),
        clock,
        seed,
    );
    let dag = build_am_dag(params, &model);
    let run = dag.execute(&ctx)?;
    let porosity_pct = run.outputs["detect_porosity"]
        .get("porosity_pct")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let qual = &run.outputs["qualify_part"];
    Ok(AmRun {
        part_id: params.part_id.clone(),
        n_layers: params.n_layers,
        energy_density: params.energy_density(),
        porosity_pct,
        density_pct: qual
            .get("density_pct")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        qualified: qual
            .get("qualified")
            .and_then(Value::as_bool)
            .unwrap_or(false),
        lof_layers: run.outputs["detect_porosity"]
            .get("lof_layers")
            .and_then(Value::as_i64)
            .unwrap_or(0) as usize,
        keyhole_layers: run.outputs["detect_porosity"]
            .get("keyhole_layers")
            .and_then(Value::as_i64)
            .unwrap_or(0) as usize,
        run,
    })
}

/// Execute a fleet of `n_parts` builds (see [`AmParams::fleet_config`]).
pub fn run_am_fleet(
    hub: &StreamingHub,
    clock: SharedClock,
    seed: u64,
    n_parts: usize,
) -> Result<Vec<AmRun>, DagError> {
    (0..n_parts)
        .map(|i| {
            run_am_workflow(
                hub,
                clock.clone(),
                seed.wrapping_add(i as u64),
                &AmParams::fleet_config(i),
            )
        })
        .collect()
}

/// Activities of the AM workflow, in pipeline order.
pub const AM_ACTIVITIES: &[&str] = &[
    "load_geometry",
    "slice_geometry",
    "generate_hatch",
    "laser_scan",
    "monitor_melt_pool",
    "detect_porosity",
    "qualify_part",
];

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::sim_clock;

    #[test]
    fn dag_shape() {
        let p = AmParams::nominal("p");
        let dag = build_am_dag(&p, &ProcessModel::new(7));
        // 2 head + 3 per layer + 2 tail.
        assert_eq!(dag.len(), 2 + 3 * p.n_layers + 2);
        assert!(dag.topo_order().is_ok());
    }

    #[test]
    fn energy_density_formula() {
        let p = AmParams::nominal("p");
        // 285 / (960 · 0.11 · 0.04) ≈ 67.47 J/mm³ — inside the window.
        let e = p.energy_density();
        assert!((e - 285.0 / (960.0 * 0.11 * 0.04)).abs() < 1e-9);
        assert!(e > LOF_THRESHOLD && e < KEYHOLE_THRESHOLD);
    }

    #[test]
    fn nominal_part_qualifies() {
        let hub = StreamingHub::in_memory();
        let run = run_am_workflow(&hub, sim_clock(), 42, &AmParams::nominal("good")).unwrap();
        assert!(run.qualified, "porosity {}", run.porosity_pct);
        assert_eq!(run.lof_layers, 0);
        assert_eq!(run.keyhole_layers, 0);
        assert!(run.porosity_pct < 0.5);
    }

    #[test]
    fn starved_part_fails_with_lack_of_fusion() {
        let hub = StreamingHub::in_memory();
        let mut p = AmParams::nominal("starved");
        p.laser_power_w = 150.0;
        p.scan_speed_mm_s = 1250.0;
        assert!(p.energy_density() < LOF_THRESHOLD);
        let run = run_am_workflow(&hub, sim_clock(), 42, &p).unwrap();
        assert!(!run.qualified);
        assert_eq!(run.lof_layers, p.n_layers);
        assert_eq!(run.keyhole_layers, 0);
    }

    #[test]
    fn overdriven_part_keyholes() {
        let hub = StreamingHub::in_memory();
        let mut p = AmParams::nominal("hot");
        p.laser_power_w = 370.0;
        p.scan_speed_mm_s = 520.0;
        assert!(p.energy_density() > KEYHOLE_THRESHOLD);
        let run = run_am_workflow(&hub, sim_clock(), 42, &p).unwrap();
        assert_eq!(run.keyhole_layers, p.n_layers);
        assert!(!run.qualified);
    }

    #[test]
    fn melt_pool_temperature_monotone_in_power() {
        let m = ProcessModel::new(9);
        let mut low = AmParams::nominal("a");
        let mut high = AmParams::nominal("b");
        low.laser_power_w = 200.0;
        high.laser_power_w = 330.0;
        let t_low = m.layer(&low, 3).melt_pool_temp_c;
        let t_high = m.layer(&high, 3).melt_pool_temp_c;
        assert!(t_high > t_low, "{t_high} vs {t_low}");
    }

    #[test]
    fn messages_carry_am_dataflow() {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        run_am_workflow(&hub, sim_clock(), 42, &AmParams::nominal("p0")).unwrap();
        let msgs = sub.drain();
        let scan = msgs
            .iter()
            .find(|m| m.activity_id.as_str() == "laser_scan")
            .expect("laser_scan task");
        assert!(scan.used.get("laser_power_w").is_some());
        assert!(scan.generated.get("melt_pool_temp_c").is_some());
        assert!(scan.generated.get("energy_density_j_mm3").is_some());
        let qualify = msgs
            .iter()
            .find(|m| m.activity_id.as_str() == "qualify_part")
            .expect("qualify task");
        assert_eq!(
            qualify.generated.get("qualified").and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn fleet_mixes_good_and_bad_parts() {
        let hub = StreamingHub::in_memory();
        let runs = run_am_fleet(&hub, sim_clock(), 42, 12).unwrap();
        assert_eq!(runs.len(), 12);
        let failed: Vec<&AmRun> = runs.iter().filter(|r| !r.qualified).collect();
        assert!(!failed.is_empty(), "fleet should include failing parts");
        assert!(failed.len() < runs.len(), "but not only failing parts");
        // part-005 and part-010 are the starved ones.
        assert!(runs[5].lof_layers > 0);
        assert!(runs[10].lof_layers > 0);
        // part-007 is overdriven.
        assert!(runs[7].keyhole_layers > 0);
    }

    #[test]
    fn deterministic_messages() {
        let collect = || {
            let hub = StreamingHub::in_memory();
            let sub = hub.subscribe_tasks();
            run_am_workflow(&hub, sim_clock(), 42, &AmParams::nominal("p")).unwrap();
            sub.drain()
                .iter()
                .map(|m| m.to_json())
                .collect::<Vec<String>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn fleet_config_variation() {
        assert_ne!(AmParams::fleet_config(0), AmParams::fleet_config(1));
        let starved = AmParams::fleet_config(5);
        assert!(starved.energy_density() < LOF_THRESHOLD);
        let hot = AmParams::fleet_config(7);
        assert!(hot.energy_density() > KEYHOLE_THRESHOLD);
        let nominal = AmParams::fleet_config(1);
        assert!(nominal.energy_density() > LOF_THRESHOLD);
        assert!(nominal.energy_density() < KEYHOLE_THRESHOLD);
    }
}
