//! # workflows
//!
//! The paper's two evaluation use cases (§5.1) plus the DAG substrate they
//! run on:
//!
//! * [`dag`] — workflow DAGs with deterministic sequential execution and a
//!   wave-front parallel executor (crossbeam scoped threads);
//! * [`synthetic`] — Use Case 1, the fan-out/fan-in mathematical workflow
//!   of Fig 5A, scalable from 1 to 1000 input configurations;
//! * [`chem`] — Use Case 2, the Bond Dissociation Energy workflow of
//!   Fig 5B over a SMILES-lite molecular substrate with simulated DFT;
//! * [`am`] — Use Case 3 (§5.4), an additive-manufacturing (LPBF metal 3D
//!   printing) build-and-qualify workflow with melt-pool monitoring;
//! * [`prospective`] — prospective provenance (planned structure) and
//!   retrospective-vs-plan conformance checking (Fig 1 "Provenance Type").
//!
//! Every task execution is captured through `prov-capture` and streamed to
//! the hub as Listing-1-shaped provenance messages.

#![warn(missing_docs)]

pub mod am;
pub mod chem;
pub mod dag;
pub mod prospective;
pub mod synthetic;

pub use am::{build_am_dag, run_am_fleet, run_am_workflow, AmParams, AmRun};
pub use chem::{run_bde_workflow, BdeRecord, BdeRun};
pub use dag::{task_fn, DagError, DagRun, TaskFn, TaskNode, WorkflowDag};
pub use prospective::{ConformanceReport, ProspectivePlan, Violation};
pub use synthetic::{build_dag as build_synthetic_dag, run_sweep, SyntheticParams, SyntheticRun};
