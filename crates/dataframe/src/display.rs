//! Plain-text table rendering (what the agent GUI shows as tabular results).

use crate::frame::DataFrame;
use prov_model::Value;

/// Render options.
#[derive(Debug, Clone, Copy)]
pub struct DisplayOptions {
    /// Maximum rows to print before eliding the middle.
    pub max_rows: usize,
    /// Maximum cell width before truncation with `…`.
    pub max_cell_width: usize,
    /// Decimal places for floats.
    pub float_precision: usize,
}

impl Default for DisplayOptions {
    fn default() -> Self {
        Self {
            max_rows: 20,
            max_cell_width: 28,
            float_precision: 4,
        }
    }
}

/// Render a frame as an aligned text table.
pub fn render(frame: &DataFrame, opts: DisplayOptions) -> String {
    if frame.width() == 0 {
        return "(empty DataFrame)".to_string();
    }
    let names = frame.column_names();
    let truncated = frame.len() > opts.max_rows;
    let shown: Vec<usize> = if truncated {
        let half = opts.max_rows / 2;
        (0..half)
            .chain(frame.len() - (opts.max_rows - half)..frame.len())
            .collect()
    } else {
        (0..frame.len()).collect()
    };

    let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown.len() + 1);
    cells.push(names.iter().map(|n| clip(n, opts.max_cell_width)).collect());
    for &row in &shown {
        cells.push(
            names
                .iter()
                .map(|n| {
                    let v = frame
                        .column(n)
                        .and_then(|c| c.get(row))
                        .cloned()
                        .unwrap_or(Value::Null);
                    clip(&fmt_value(&v, opts.float_precision), opts.max_cell_width)
                })
                .collect(),
        );
    }

    let widths: Vec<usize> = (0..names.len())
        .map(|c| {
            cells
                .iter()
                .map(|r| r[c].chars().count())
                .max()
                .unwrap_or(1)
        })
        .collect();

    let mut out = String::new();
    for (i, row) in cells.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.chars().count()..widths[c] {
                out.push(' ');
            }
        }
        out.push('\n');
        if i == 0 {
            for (c, w) in widths.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
        if truncated && i == opts.max_rows / 2 {
            out.push_str("…\n");
        }
    }
    out.push_str(&format!(
        "[{} rows x {} columns]\n",
        frame.len(),
        frame.width()
    ));
    out
}

fn fmt_value(v: &Value, precision: usize) -> String {
    match v {
        Value::Null => "NaN".to_string(),
        Value::Float(f) => format!("{f:.precision$}"),
        other => other.display_plain(),
    }
}

fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let mut out: String = s.chars().take(max.saturating_sub(1)).collect();
        out.push('…');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::Value;

    #[test]
    fn renders_header_and_rows() {
        let df = DataFrame::from_columns(vec![
            ("bond", vec![Value::from("C-H"), Value::from("C-C")]),
            ("bde", vec![Value::Float(98.64866), Value::Float(87.1)]),
        ])
        .unwrap();
        let text = render(&df, DisplayOptions::default());
        assert!(text.contains("bond"));
        assert!(text.contains("98.6487"));
        assert!(text.contains("[2 rows x 2 columns]"));
    }

    #[test]
    fn elides_long_frames() {
        let vals: Vec<Value> = (0..100).map(Value::from).collect();
        let df = DataFrame::from_columns(vec![("x", vals)]).unwrap();
        let text = render(&df, DisplayOptions::default());
        assert!(text.contains("…"));
        assert!(text.contains("[100 rows x 1 columns]"));
    }

    #[test]
    fn clips_wide_cells() {
        let df = DataFrame::from_columns(vec![("s", vec![Value::from("a".repeat(100).as_str())])])
            .unwrap();
        let text = render(&df, DisplayOptions::default());
        assert!(text.lines().all(|l| l.chars().count() < 120));
    }

    #[test]
    fn empty_frame() {
        let df = DataFrame::new();
        assert_eq!(render(&df, DisplayOptions::default()), "(empty DataFrame)");
    }
}
