//! Aggregation functions applied to columns and group-by buckets.

use prov_model::Value;

/// Supported aggregations (the set the paper's query set exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count (non-null).
    Count,
    /// Row count including nulls.
    Size,
    /// Sum of numeric values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum (numeric-coercing total order).
    Min,
    /// Maximum.
    Max,
    /// Median (lower-interpolation for even counts averaged).
    Median,
    /// Sample standard deviation (ddof = 1, pandas default).
    Std,
    /// Variance (ddof = 1).
    Var,
    /// First non-null value.
    First,
    /// Last non-null value.
    Last,
    /// Number of distinct non-null values.
    Nunique,
}

impl AggFunc {
    /// Pandas method name, e.g. `mean`.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Size => "size",
            AggFunc::Sum => "sum",
            AggFunc::Mean => "mean",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Median => "median",
            AggFunc::Std => "std",
            AggFunc::Var => "var",
            AggFunc::First => "first",
            AggFunc::Last => "last",
            AggFunc::Nunique => "nunique",
        }
    }

    /// Parse a pandas method name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "count" => AggFunc::Count,
            "size" => AggFunc::Size,
            "sum" => AggFunc::Sum,
            "mean" | "avg" | "average" => AggFunc::Mean,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "median" => AggFunc::Median,
            "std" => AggFunc::Std,
            "var" => AggFunc::Var,
            "first" => AggFunc::First,
            "last" => AggFunc::Last,
            "nunique" => AggFunc::Nunique,
            _ => return None,
        })
    }

    /// Whether two aggregations are interchangeable for scoring purposes
    /// (LLM judges treat e.g. `mean` and `median` as *related but different*,
    /// while `count` vs `size` are equivalent on non-null data).
    pub fn equivalent(self, other: AggFunc) -> bool {
        self == other
            || matches!(
                (self, other),
                (AggFunc::Count, AggFunc::Size) | (AggFunc::Size, AggFunc::Count)
            )
    }

    /// Apply to a slice of values; nulls are skipped.
    pub fn apply(self, values: &[Value]) -> Value {
        match self {
            AggFunc::Count => Value::Int(values.iter().filter(|v| !v.is_null()).count() as i64),
            AggFunc::Size => Value::Int(values.len() as i64),
            AggFunc::Nunique => {
                let mut seen: Vec<&Value> = Vec::new();
                for v in values.iter().filter(|v| !v.is_null()) {
                    if !seen.contains(&v) {
                        seen.push(v);
                    }
                }
                Value::Int(seen.len() as i64)
            }
            AggFunc::First => values
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null),
            AggFunc::Last => values
                .iter()
                .rev()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null),
            AggFunc::Min | AggFunc::Max => {
                let mut best: Option<&Value> = None;
                for v in values.iter().filter(|v| !v.is_null()) {
                    best = match best {
                        None => Some(v),
                        Some(b) => {
                            let ord = v.compare(b);
                            let take = if self == AggFunc::Min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            };
                            if take {
                                Some(v)
                            } else {
                                Some(b)
                            }
                        }
                    };
                }
                best.cloned().unwrap_or(Value::Null)
            }
            AggFunc::Sum => {
                let nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
                if nums.is_empty() {
                    Value::Int(0)
                } else if values
                    .iter()
                    .all(|v| matches!(v, Value::Int(_) | Value::Null))
                {
                    Value::Int(nums.iter().sum::<f64>() as i64)
                } else {
                    Value::Float(nums.iter().sum())
                }
            }
            AggFunc::Mean => numeric_stat(values, |n| n.iter().sum::<f64>() / n.len() as f64),
            AggFunc::Median => numeric_stat(values, |n| {
                let mut s = n.to_vec();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mid = s.len() / 2;
                if s.len() % 2 == 1 {
                    s[mid]
                } else {
                    (s[mid - 1] + s[mid]) / 2.0
                }
            }),
            AggFunc::Std => numeric_stat(values, |n| sample_var(n).sqrt()),
            AggFunc::Var => numeric_stat(values, sample_var),
        }
    }
}

fn numeric_stat(values: &[Value], f: impl Fn(&[f64]) -> f64) -> Value {
    let nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
    if nums.is_empty() {
        Value::Null
    } else {
        Value::Float(f(&nums))
    }
}

fn sample_var(n: &[f64]) -> f64 {
    if n.len() < 2 {
        return 0.0;
    }
    let mean = n.iter().sum::<f64>() / n.len() as f64;
    n.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n.len() - 1) as f64
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals() -> Vec<Value> {
        vec![
            Value::Int(4),
            Value::Null,
            Value::Int(1),
            Value::Int(1),
            Value::Int(2),
        ]
    }

    #[test]
    fn counting() {
        assert_eq!(AggFunc::Count.apply(&vals()), Value::Int(4));
        assert_eq!(AggFunc::Size.apply(&vals()), Value::Int(5));
        assert_eq!(AggFunc::Nunique.apply(&vals()), Value::Int(3));
    }

    #[test]
    fn numeric_aggs() {
        assert_eq!(AggFunc::Sum.apply(&vals()), Value::Int(8));
        assert_eq!(AggFunc::Mean.apply(&vals()), Value::Float(2.0));
        assert_eq!(AggFunc::Min.apply(&vals()), Value::Int(1));
        assert_eq!(AggFunc::Max.apply(&vals()), Value::Int(4));
        assert_eq!(AggFunc::Median.apply(&vals()), Value::Float(1.5));
    }

    #[test]
    fn std_matches_pandas_ddof1() {
        let v: Vec<Value> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&f| Value::Float(f))
            .collect();
        let std = AggFunc::Std.apply(&v).as_f64().unwrap();
        assert!((std - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn first_last_skip_nulls() {
        let v = vec![Value::Null, Value::Int(7), Value::Int(9), Value::Null];
        assert_eq!(AggFunc::First.apply(&v), Value::Int(7));
        assert_eq!(AggFunc::Last.apply(&v), Value::Int(9));
    }

    #[test]
    fn empty_behaviour() {
        assert_eq!(AggFunc::Mean.apply(&[]), Value::Null);
        assert_eq!(AggFunc::Count.apply(&[]), Value::Int(0));
        assert_eq!(AggFunc::Sum.apply(&[]), Value::Int(0));
    }

    #[test]
    fn parse_roundtrip() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Mean,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Median,
            AggFunc::Std,
            AggFunc::Var,
            AggFunc::First,
            AggFunc::Last,
            AggFunc::Nunique,
            AggFunc::Size,
        ] {
            assert_eq!(AggFunc::parse(f.name()), Some(f));
        }
        assert_eq!(AggFunc::parse("avg"), Some(AggFunc::Mean));
        assert_eq!(AggFunc::parse("wat"), None);
    }

    #[test]
    fn equivalence() {
        assert!(AggFunc::Count.equivalent(AggFunc::Size));
        assert!(!AggFunc::Mean.equivalent(AggFunc::Median));
    }

    #[test]
    fn string_min_max() {
        let v = vec![Value::Str("beta".into()), Value::Str("alpha".into())];
        assert_eq!(AggFunc::Min.apply(&v), Value::Str("alpha".into()));
        assert_eq!(AggFunc::Max.apply(&v), Value::Str("beta".into()));
    }
}
