//! # dataframe
//!
//! A small, self-contained columnar DataFrame engine — the Rust stand-in for
//! the Pandas buffer the paper uses as the agent's in-memory context (§5.1).
//!
//! Features: dynamically typed columns over [`prov_model::Value`], dtype
//! inference, row expressions (boolean masks), stable multi-key sort,
//! group-by with the pandas aggregation set, `describe()`, text rendering,
//! and parallel kernels (crossbeam scoped threads) for large buffers.
//!
//! ```
//! use dataframe::{DataFrame, col, lit, AggFunc};
//! use prov_model::Value;
//!
//! let df = DataFrame::from_columns(vec![
//!     ("bond", vec![Value::from("C-H"), Value::from("C-C"), Value::from("C-H")]),
//!     ("bde", vec![Value::Float(98.6), Value::Float(87.1), Value::Float(99.2)]),
//! ]).unwrap();
//! let ch = df.filter(&col("bond").eq(lit("C-H")));
//! assert_eq!(ch.len(), 2);
//! let mean = ch.agg("bde", AggFunc::Mean).unwrap().as_f64().unwrap();
//! assert!((mean - 98.9).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod column;
pub mod display;
pub mod dtype;
pub mod expr;
pub mod frame;
pub mod groupby;
pub mod parallel;

pub use agg::AggFunc;
pub use column::Column;
pub use display::{render, DisplayOptions};
pub use dtype::DType;
pub use expr::{cmp_matches, col, lit, values_equal, ArithOp, CmpOp, Expr};
pub use frame::{sort_cell_cmp, DataFrame, FrameError, FrameResult};
pub use groupby::GroupBy;
