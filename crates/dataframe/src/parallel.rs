//! Parallel kernels for large frames.
//!
//! The in-memory context can hold 10⁵–10⁶ rows for long-running HPC jobs;
//! filtering and numeric reductions are embarrassingly parallel, so we chunk
//! the row space across scoped threads (crossbeam) and merge. Sequential
//! fallbacks kick in below a threshold where thread startup dominates.

use crate::expr::Expr;
use crate::frame::DataFrame;
use prov_model::Value;

/// Below this row count the sequential path is used
/// (thread spawn ≈ 10 µs each easily exceeds the work).
pub const PARALLEL_THRESHOLD: usize = 4096;

/// Compute a boolean mask for `expr` over `frame`, splitting rows across
/// `threads` workers. Produces exactly the same mask as [`Expr::mask`].
pub fn par_mask(frame: &DataFrame, expr: &Expr, threads: usize) -> Vec<bool> {
    let n = frame.len();
    if n < PARALLEL_THRESHOLD || threads <= 1 {
        return expr.mask(frame);
    }
    let chunk = n.div_ceil(threads);
    let mut mask = vec![false; n];
    // Split the output buffer into disjoint chunks; each worker fills its
    // own slice, so no synchronization is needed (data-race freedom by
    // construction, rayon-style).
    let slices: Vec<&mut [bool]> = mask.chunks_mut(chunk).collect();
    crossbeam::thread::scope(|s| {
        for (ci, out) in slices.into_iter().enumerate() {
            let start = ci * chunk;
            s.spawn(move |_| {
                for (off, slot) in out.iter_mut().enumerate() {
                    *slot = expr.truthy(frame, start + off);
                }
            });
        }
    })
    .expect("worker panicked in par_mask");
    mask
}

/// Parallel filter: `frame[expr]` with the mask computed across threads.
pub fn par_filter(frame: &DataFrame, expr: &Expr, threads: usize) -> DataFrame {
    let mask = par_mask(frame, expr, threads);
    frame.filter_mask(&mask)
}

/// Parallel sum + count of a numeric column; returns `(sum, non-null count)`.
pub fn par_sum_count(frame: &DataFrame, column: &str, threads: usize) -> (f64, usize) {
    let Some(col) = frame.column(column) else {
        return (0.0, 0);
    };
    let values = col.values();
    let n = values.len();
    if n < PARALLEL_THRESHOLD || threads <= 1 {
        let mut sum = 0.0;
        let mut count = 0;
        for v in values {
            if let Some(x) = v.as_f64() {
                sum += x;
                count += 1;
            }
        }
        return (sum, count);
    }
    let chunk = n.div_ceil(threads);
    let partials = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = values
            .chunks(chunk)
            .map(|part| {
                s.spawn(move |_| {
                    let mut sum = 0.0;
                    let mut count = 0usize;
                    for v in part {
                        if let Some(x) = v.as_f64() {
                            sum += x;
                            count += 1;
                        }
                    }
                    (sum, count)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("scope failed in par_sum_count");
    partials
        .into_iter()
        .fold((0.0, 0), |(s, c), (ps, pc)| (s + ps, c + pc))
}

/// Parallel mean of a numeric column (`None` when no numeric values).
pub fn par_mean(frame: &DataFrame, column: &str, threads: usize) -> Option<f64> {
    let (sum, count) = par_sum_count(frame, column, threads);
    (count > 0).then(|| sum / count as f64)
}

/// Parallel min/max of a numeric column.
pub fn par_min_max(frame: &DataFrame, column: &str, threads: usize) -> Option<(f64, f64)> {
    let col = frame.column(column)?;
    let values = col.values();
    let n = values.len();
    let reduce = |part: &[Value]| -> Option<(f64, f64)> {
        let mut mm: Option<(f64, f64)> = None;
        for v in part {
            if let Some(x) = v.as_f64() {
                mm = Some(match mm {
                    None => (x, x),
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                });
            }
        }
        mm
    };
    if n < PARALLEL_THRESHOLD || threads <= 1 {
        return reduce(values);
    }
    let chunk = n.div_ceil(threads);
    let partials = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = values
            .chunks(chunk)
            .map(|part| s.spawn(move |_| reduce(part)))
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("scope failed in par_min_max");
    partials
        .into_iter()
        .reduce(|(alo, ahi), (blo, bhi)| (alo.min(blo), ahi.max(bhi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn big_frame(n: usize) -> DataFrame {
        let xs: Vec<Value> = (0..n).map(|i| Value::Int(i as i64)).collect();
        let ys: Vec<Value> = (0..n).map(|i| Value::Float((i % 100) as f64)).collect();
        DataFrame::from_columns(vec![("x", xs), ("y", ys)]).unwrap()
    }

    #[test]
    fn par_mask_matches_sequential() {
        let f = big_frame(10_000);
        let e = col("y").gt(lit(49.0));
        assert_eq!(par_mask(&f, &e, 4), e.mask(&f));
    }

    #[test]
    fn par_filter_counts() {
        let f = big_frame(10_000);
        let out = par_filter(&f, &col("y").lt(lit(10.0)), 4);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn par_mean_matches() {
        let f = big_frame(20_000);
        let m = par_mean(&f, "y", 8).unwrap();
        assert!((m - 49.5).abs() < 1e-9);
        // Small frames use the sequential path but give the same answer.
        let small = big_frame(10);
        assert_eq!(par_mean(&small, "y", 8), Some(4.5));
    }

    #[test]
    fn par_min_max_matches() {
        let f = big_frame(10_000);
        assert_eq!(par_min_max(&f, "y", 4), Some((0.0, 99.0)));
        assert_eq!(par_min_max(&f, "missing", 4), None);
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let f = big_frame(5000);
        let e = col("x").ge(lit(2500));
        assert_eq!(par_mask(&f, &e, 1), e.mask(&f));
    }
}
