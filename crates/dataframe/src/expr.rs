//! Row-level expressions for filtering and derived columns.
//!
//! Mirrors the boolean-mask style of pandas: `df[df["cpu"] > 50.0]` becomes
//! `frame.filter(&col("cpu").gt(lit(50.0)))`.

use crate::frame::DataFrame;
use prov_model::Value;
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Python-syntax operator text.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Flip operand order (`a < b` ⇒ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// Evaluate against an ordering.
    pub fn test(self, ord: Ordering, equal_values: bool) -> bool {
        match self {
            CmpOp::Eq => equal_values,
            CmpOp::Ne => !equal_values,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Arithmetic operators for derived values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// Python-syntax operator text.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// An expression evaluated per row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison between two sub-expressions.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Arithmetic between two sub-expressions.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `col.str.contains(pattern)` (substring, case-insensitive option).
    StrContains(Box<Expr>, String, bool),
    /// `col.str.startswith(prefix)`.
    StrStartsWith(Box<Expr>, String),
    /// Membership: `col.isin([...])`.
    IsIn(Box<Expr>, Vec<Value>),
    /// `col.isna()`.
    IsNull(Box<Expr>),
    /// `col.notna()`.
    NotNull(Box<Expr>),
}

/// Column reference helper.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// Literal helper.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

impl Expr {
    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(other))
    }
    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ne, Box::new(other))
    }
    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Lt, Box::new(other))
    }
    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Le, Box::new(other))
    }
    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Gt, Box::new(other))
    }
    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ge, Box::new(other))
    }
    /// `self & other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }
    /// `self | other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }
    /// `~self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// Substring containment.
    pub fn contains(self, pat: impl Into<String>) -> Expr {
        Expr::StrContains(Box::new(self), pat.into(), false)
    }
    /// Case-insensitive substring containment.
    pub fn icontains(self, pat: impl Into<String>) -> Expr {
        Expr::StrContains(Box::new(self), pat.into(), true)
    }
    /// Prefix match.
    pub fn starts_with(self, prefix: impl Into<String>) -> Expr {
        Expr::StrStartsWith(Box::new(self), prefix.into())
    }
    /// Membership test.
    pub fn isin(self, values: Vec<Value>) -> Expr {
        Expr::IsIn(Box::new(self), values)
    }
    /// Null test.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// Non-null test.
    pub fn not_null(self) -> Expr {
        Expr::NotNull(Box::new(self))
    }
    /// Arithmetic sum. (Named like the pandas expression builder this API
    /// mirrors, intentionally shadowing the `std::ops` method names.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Add, Box::new(other))
    }
    /// Arithmetic difference.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Sub, Box::new(other))
    }
    /// Arithmetic product.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Mul, Box::new(other))
    }
    /// Arithmetic quotient.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Div, Box::new(other))
    }

    /// Evaluate to a value for one row.
    pub fn eval(&self, frame: &DataFrame, row: usize) -> Value {
        match self {
            Expr::Col(name) => frame
                .column(name)
                .and_then(|c| c.get(row))
                .cloned()
                .unwrap_or(Value::Null),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(a, op, b) => {
                Value::Bool(cmp_matches(&a.eval(frame, row), *op, &b.eval(frame, row)))
            }
            Expr::Arith(a, op, b) => {
                let (Some(x), Some(y)) = (a.eval(frame, row).as_f64(), b.eval(frame, row).as_f64())
                else {
                    return Value::Null;
                };
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Value::Null;
                        }
                        x / y
                    }
                };
                Value::Float(r)
            }
            Expr::And(a, b) => Value::Bool(a.truthy(frame, row) && b.truthy(frame, row)),
            Expr::Or(a, b) => Value::Bool(a.truthy(frame, row) || b.truthy(frame, row)),
            Expr::Not(a) => Value::Bool(!a.truthy(frame, row)),
            Expr::StrContains(a, pat, ci) => match a.eval(frame, row) {
                Value::Str(s) => {
                    if *ci {
                        Value::Bool(s.to_lowercase().contains(&pat.to_lowercase()))
                    } else {
                        Value::Bool(s.contains(pat.as_str()))
                    }
                }
                _ => Value::Bool(false),
            },
            Expr::StrStartsWith(a, prefix) => match a.eval(frame, row) {
                Value::Str(s) => Value::Bool(s.starts_with(prefix.as_str())),
                _ => Value::Bool(false),
            },
            Expr::IsIn(a, values) => {
                let v = a.eval(frame, row);
                Value::Bool(values.iter().any(|x| values_equal(x, &v)))
            }
            Expr::IsNull(a) => Value::Bool(a.eval(frame, row).is_null()),
            Expr::NotNull(a) => Value::Bool(!a.eval(frame, row).is_null()),
        }
    }

    /// Evaluate as a boolean (non-bool truthiness follows Python rules).
    pub fn truthy(&self, frame: &DataFrame, row: usize) -> bool {
        match self.eval(frame, row) {
            Value::Bool(b) => b,
            Value::Null => false,
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Array(a) => !a.is_empty(),
            Value::Object(m) => !m.is_empty(),
        }
    }

    /// Evaluate over every row producing a boolean mask.
    pub fn mask(&self, frame: &DataFrame) -> Vec<bool> {
        (0..frame.len()).map(|i| self.truthy(frame, i)).collect()
    }

    /// All column names referenced by this expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Lit(_) => {}
            Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a)
            | Expr::StrContains(a, _, _)
            | Expr::StrStartsWith(a, _)
            | Expr::IsIn(a, _)
            | Expr::IsNull(a)
            | Expr::NotNull(a) => a.collect_columns(out),
        }
    }
}

/// The `Expr::Cmp` comparison rule on two already-evaluated values:
/// null operands are false (pandas-style; `!=` is true unless both sides
/// are null), equality coerces Int/Float, and ordering follows
/// [`Value::compare`]. Public so storage engines evaluating `col op lit`
/// filters outside a frame (e.g. over columnar vectors) apply byte-for-byte
/// the same semantics as a frame filter.
pub fn cmp_matches(lhs: &Value, op: CmpOp, rhs: &Value) -> bool {
    if lhs.is_null() || rhs.is_null() {
        return matches!(op, CmpOp::Ne) && !(lhs.is_null() && rhs.is_null());
    }
    op.test(lhs.compare(rhs), values_equal(lhs, rhs))
}

/// Value equality with Int/Float coercion (`2 == 2.0`).
pub fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::DataFrame;
    use prov_model::Value;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "activity_id",
                vec![
                    Value::from("run_dft"),
                    Value::from("postprocess"),
                    Value::from("run_dft"),
                ],
            ),
            (
                "cpu",
                vec![Value::Float(80.0), Value::Float(20.0), Value::Null],
            ),
            ("n", vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
        ])
        .unwrap()
    }

    #[test]
    fn comparison_mask() {
        let f = frame();
        let m = col("cpu").gt(lit(50.0)).mask(&f);
        assert_eq!(m, vec![true, false, false]);
    }

    #[test]
    fn null_comparisons_are_false() {
        let f = frame();
        let m = col("cpu").le(lit(1000.0)).mask(&f);
        assert_eq!(m, vec![true, true, false]);
    }

    #[test]
    fn logical_ops() {
        let f = frame();
        let e = col("activity_id")
            .eq(lit("run_dft"))
            .and(col("n").ge(lit(2)));
        assert_eq!(e.mask(&f), vec![false, false, true]);
        let e = col("n").eq(lit(1)).or(col("n").eq(lit(3)));
        assert_eq!(e.mask(&f), vec![true, false, true]);
        let e = col("activity_id").eq(lit("run_dft")).negate();
        assert_eq!(e.mask(&f), vec![false, true, false]);
    }

    #[test]
    fn string_ops() {
        let f = frame();
        assert_eq!(
            col("activity_id").contains("dft").mask(&f),
            vec![true, false, true]
        );
        assert_eq!(
            col("activity_id").icontains("DFT").mask(&f),
            vec![true, false, true]
        );
        assert_eq!(
            col("activity_id").starts_with("post").mask(&f),
            vec![false, true, false]
        );
    }

    #[test]
    fn membership_and_null_tests() {
        let f = frame();
        assert_eq!(
            col("n").isin(vec![Value::Int(1), Value::Int(3)]).mask(&f),
            vec![true, false, true]
        );
        assert_eq!(col("cpu").is_null().mask(&f), vec![false, false, true]);
        assert_eq!(col("cpu").not_null().mask(&f), vec![true, true, false]);
    }

    #[test]
    fn arithmetic() {
        let f = frame();
        let v = col("n").mul(lit(10)).add(lit(5)).eval(&f, 1);
        assert_eq!(v, Value::Float(25.0));
        // Division by zero yields null, not a panic.
        assert_eq!(col("n").div(lit(0)).eval(&f, 0), Value::Null);
    }

    #[test]
    fn int_float_equality() {
        let f = frame();
        assert_eq!(col("n").eq(lit(2.0)).mask(&f), vec![false, true, false]);
    }

    #[test]
    fn column_collection() {
        let e = col("a").gt(lit(1)).and(col("b").eq(col("a")));
        assert_eq!(e.columns(), vec!["a", "b"]);
    }

    #[test]
    fn missing_column_is_null() {
        let f = frame();
        assert_eq!(col("nope").eval(&f, 0), Value::Null);
        assert_eq!(col("nope").is_null().mask(&f), vec![true, true, true]);
    }
}
