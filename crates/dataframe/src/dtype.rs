//! Column dtypes and inference.

use prov_model::{Value, ValueKind};

/// Logical type of a DataFrame column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// All nulls (no information yet).
    Null,
    /// Booleans.
    Bool,
    /// 64-bit integers.
    Int,
    /// 64-bit floats (also the unification of Int + Float).
    Float,
    /// UTF-8 strings.
    Str,
    /// Arrays of values.
    List,
    /// Nested objects or mixed scalar kinds.
    Mixed,
}

impl DType {
    /// Human-readable name (shown in dynamic dataflow schemas).
    pub fn name(self) -> &'static str {
        match self {
            DType::Null => "null",
            DType::Bool => "bool",
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::List => "list",
            DType::Mixed => "mixed",
        }
    }

    /// True for `Int`/`Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float)
    }

    /// dtype of one value.
    pub fn of(value: &Value) -> DType {
        match value.kind() {
            ValueKind::Null => DType::Null,
            ValueKind::Bool => DType::Bool,
            ValueKind::Int => DType::Int,
            ValueKind::Float => DType::Float,
            ValueKind::Str => DType::Str,
            ValueKind::Array => DType::List,
            ValueKind::Object => DType::Mixed,
        }
    }

    /// Unify two dtypes: nulls are absorbed, Int+Float widen to Float,
    /// anything else mismatched becomes Mixed.
    pub fn unify(self, other: DType) -> DType {
        use DType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Null, x) | (x, Null) => x,
            (Int, Float) | (Float, Int) => Float,
            _ => Mixed,
        }
    }

    /// Infer the dtype of a sequence of values.
    pub fn infer<'a>(values: impl IntoIterator<Item = &'a Value>) -> DType {
        values
            .into_iter()
            .map(DType::of)
            .fold(DType::Null, DType::unify)
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_rules() {
        assert_eq!(DType::Int.unify(DType::Float), DType::Float);
        assert_eq!(DType::Null.unify(DType::Str), DType::Str);
        assert_eq!(DType::Str.unify(DType::Int), DType::Mixed);
        assert_eq!(DType::Bool.unify(DType::Bool), DType::Bool);
    }

    #[test]
    fn infer_sequences() {
        let vals = [Value::Int(1), Value::Float(2.5), Value::Null];
        assert_eq!(DType::infer(vals.iter()), DType::Float);
        let vals = [Value::Str("a".into()), Value::Null];
        assert_eq!(DType::infer(vals.iter()), DType::Str);
        assert_eq!(DType::infer(std::iter::empty()), DType::Null);
    }

    #[test]
    fn numeric_flags() {
        assert!(DType::Int.is_numeric());
        assert!(DType::Float.is_numeric());
        assert!(!DType::Str.is_numeric());
    }
}
