//! The DataFrame: an ordered collection of equal-length named columns.
//!
//! This is the substrate behind the agent's in-memory context (§5.1): recent
//! task provenance messages are buffered as rows, and LLM-generated queries
//! execute against it.

use crate::agg::AggFunc;
use crate::column::Column;
use crate::dtype::DType;
use crate::expr::Expr;
use crate::groupby::GroupBy;
use prov_model::{Map, Sym, TaskMessage, Value};
use std::collections::HashMap;

/// Errors raised by DataFrame operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Referenced column does not exist; carries the available columns.
    UnknownColumn {
        /// The missing column name.
        name: String,
        /// Columns that do exist (for error messages and LLM feedback).
        available: Vec<String>,
    },
    /// Columns passed to a constructor had inconsistent lengths.
    LengthMismatch {
        /// Expected row count.
        expected: usize,
        /// Offending column name.
        column: String,
        /// Its actual length.
        actual: usize,
    },
    /// Operation requires a numeric column.
    NotNumeric(String),
    /// Operation is invalid on an empty frame.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::UnknownColumn { name, available } => {
                write!(f, "unknown column '{name}'; available: {available:?}")
            }
            FrameError::LengthMismatch {
                expected,
                column,
                actual,
            } => write!(
                f,
                "column '{column}' has {actual} rows, expected {expected}"
            ),
            FrameError::NotNumeric(c) => write!(f, "column '{c}' is not numeric"),
            FrameError::Empty => write!(f, "operation invalid on an empty DataFrame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Result alias for frame operations.
pub type FrameResult<T> = Result<T, FrameError>;

/// An ordered, named, equal-length collection of columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    columns: Vec<Column>,
    index: HashMap<String, usize>,
    rows: usize,
}

impl DataFrame {
    /// An empty frame (no rows, no columns).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(name, values)` pairs; all lengths must agree.
    pub fn from_columns(cols: Vec<(impl Into<String>, Vec<Value>)>) -> FrameResult<Self> {
        Self::build_from_columns(cols, None)
    }

    /// Build from `(name, values)` pairs with an explicit row count.
    ///
    /// Unlike [`from_columns`], a zero-width frame keeps `rows` rows — the
    /// shape a projected scan needs when a pipeline observes only the row
    /// count (`len(df[...])`) and no column has to be materialized at all.
    ///
    /// [`from_columns`]: DataFrame::from_columns
    pub fn from_columns_with_rows(
        cols: Vec<(impl Into<String>, Vec<Value>)>,
        rows: usize,
    ) -> FrameResult<Self> {
        Self::build_from_columns(cols, Some(rows))
    }

    fn build_from_columns(
        cols: Vec<(impl Into<String>, Vec<Value>)>,
        rows: Option<usize>,
    ) -> FrameResult<Self> {
        let mut df = DataFrame::new();
        let mut expected = rows;
        for (name, values) in cols {
            let name = name.into();
            let n = values.len();
            match expected {
                None => expected = Some(n),
                Some(e) if e != n => {
                    return Err(FrameError::LengthMismatch {
                        expected: e,
                        column: name,
                        actual: n,
                    })
                }
                _ => {}
            }
            df.insert_column(Column::new(name, values));
        }
        df.rows = expected.unwrap_or(0);
        Ok(df)
    }

    /// Build from row maps; the column set is the union of keys, with nulls
    /// filling gaps.
    pub fn from_rows(rows: &[Map]) -> Self {
        let mut df = DataFrame::new();
        for row in rows {
            df.push_row(row);
        }
        df
    }

    /// Build from task provenance messages (one row per message).
    ///
    /// Flattening policy (documented for schema stability):
    /// * common fields keep their names (`task_id`, `activity_id`, ...);
    /// * `duration` is computed as `ended_at - started_at`;
    /// * children of `used`/`generated` are flattened with their bare dotted
    ///   names (`bd_energy`, `frags.label`); on a cross-section name clash
    ///   the later column gets a `used.`/`generated.` prefix;
    /// * telemetry keeps fully qualified dotted names plus derived scalar
    ///   means `cpu_percent_start`, `cpu_percent_end`, `gpu_percent_end`,
    ///   `mem_used_mb_end`.
    pub fn from_messages<'a>(messages: impl IntoIterator<Item = &'a TaskMessage>) -> Self {
        let mut df = DataFrame::new();
        for m in messages {
            df.push_message(m);
        }
        df
    }

    /// Append one message as a row (incremental form of [`from_messages`]).
    ///
    /// [`from_messages`]: DataFrame::from_messages
    pub fn push_message(&mut self, m: &TaskMessage) {
        self.push_row(&message_row(m));
    }

    /// Build a frame containing only the named columns of each message —
    /// the projected-scan constructor behind index pushdown: the store
    /// hands over the surviving documents and the referenced column
    /// subset, and only that subset is materialized. Flattening and
    /// naming policy are exactly [`from_messages`]' (the rows are built by
    /// the same code and then pruned), so a projected frame agrees
    /// value-for-value with the corresponding columns of a full frame.
    ///
    /// A requested column that no message provides is absent from the
    /// result (as in [`from_messages`]); callers needing corpus-wide
    /// column-existence semantics must check `has_column` and fall back.
    ///
    /// [`from_messages`]: DataFrame::from_messages
    pub fn from_messages_projected<'a>(
        messages: impl IntoIterator<Item = &'a TaskMessage>,
        columns: &[String],
    ) -> Self {
        let mut df = DataFrame::new();
        for m in messages {
            let mut row = message_row(m);
            row.retain(|k, _| columns.iter().any(|c| c == k.as_str()));
            df.push_row(&row);
        }
        df
    }

    /// Append one row map; unseen keys create new null-backfilled columns.
    pub fn push_row(&mut self, row: &Map) {
        for key in row.keys() {
            if !self.index.contains_key(key.as_str()) {
                self.insert_column(Column::new(key.as_str(), vec![Value::Null; self.rows]));
            }
        }
        for c in &mut self.columns {
            let v = row.get(c.name()).cloned().unwrap_or(Value::Null);
            c.push(v);
        }
        self.rows += 1;
    }

    fn insert_column(&mut self, col: Column) {
        self.index
            .insert(col.name().to_string(), self.columns.len());
        self.columns.push(col);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index.get(name).map(|&i| &self.columns[i])
    }

    /// Column lookup returning a descriptive error on miss.
    pub fn column_checked(&self, name: &str) -> FrameResult<&Column> {
        self.column(name).ok_or_else(|| FrameError::UnknownColumn {
            name: name.to_string(),
            available: self.column_names().iter().map(|s| s.to_string()).collect(),
        })
    }

    /// True when the column exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Project onto a subset of columns (order follows `names`).
    pub fn select(&self, names: &[&str]) -> FrameResult<DataFrame> {
        let mut df = DataFrame::new();
        for &n in names {
            let c = self.column_checked(n)?;
            df.insert_column(c.clone());
        }
        df.rows = self.rows;
        Ok(df)
    }

    /// Keep rows where the expression is truthy.
    pub fn filter(&self, predicate: &Expr) -> DataFrame {
        self.filter_mask(&predicate.mask(self))
    }

    /// Keep rows where `mask` is true.
    pub fn filter_mask(&self, mask: &[bool]) -> DataFrame {
        let mut df = DataFrame::new();
        for c in &self.columns {
            df.insert_column(c.filter(mask));
        }
        df.rows = mask.iter().filter(|&&m| m).count();
        df
    }

    /// Take rows by index.
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        let mut df = DataFrame::new();
        for c in &self.columns {
            df.insert_column(c.take(indices));
        }
        df.rows = indices.len();
        df
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let idx: Vec<usize> = (0..self.rows.min(n)).collect();
        self.take(&idx)
    }

    /// Last `n` rows.
    pub fn tail(&self, n: usize) -> DataFrame {
        let start = self.rows.saturating_sub(n);
        let idx: Vec<usize> = (start..self.rows).collect();
        self.take(&idx)
    }

    /// Stable multi-key sort. Each key is `(column, ascending)`.
    pub fn sort_values(&self, keys: &[(&str, bool)]) -> FrameResult<DataFrame> {
        for (k, _) in keys {
            self.column_checked(k)?;
        }
        let mut idx: Vec<usize> = (0..self.rows).collect();
        idx.sort_by(|&a, &b| {
            for (kname, asc) in keys {
                let c = self.column(kname).expect("validated above");
                let va = c.get(a).expect("row in range");
                let vb = c.get(b).expect("row in range");
                let ord = sort_cell_cmp(va, vb, *asc);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&idx))
    }

    /// Drop duplicate rows considering `subset` columns (all when empty).
    pub fn drop_duplicates(&self, subset: &[&str]) -> FrameResult<DataFrame> {
        let cols: Vec<&Column> = if subset.is_empty() {
            self.columns.iter().collect()
        } else {
            subset
                .iter()
                .map(|n| self.column_checked(n))
                .collect::<FrameResult<_>>()?
        };
        let mut seen: Vec<Vec<&Value>> = Vec::new();
        let mut keep = Vec::with_capacity(self.rows);
        for row in 0..self.rows {
            let key: Vec<&Value> = cols.iter().map(|c| c.get(row).expect("in range")).collect();
            if seen.contains(&key) {
                keep.push(false);
            } else {
                seen.push(key);
                keep.push(true);
            }
        }
        Ok(self.filter_mask(&keep))
    }

    /// Add (or replace) a column computed from an expression.
    pub fn with_column(&self, name: impl Into<String>, expr: &Expr) -> DataFrame {
        let name = name.into();
        let values: Vec<Value> = (0..self.rows).map(|i| expr.eval(self, i)).collect();
        let mut df = self.clone();
        if let Some(&i) = df.index.get(&name) {
            df.columns[i] = Column::new(name, values);
        } else {
            df.insert_column(Column::new(name, values));
        }
        df
    }

    /// Aggregate one column.
    pub fn agg(&self, column: &str, func: AggFunc) -> FrameResult<Value> {
        Ok(self.column_checked(column)?.agg(func))
    }

    /// Group rows by key columns.
    pub fn groupby(&self, keys: &[&str]) -> FrameResult<GroupBy<'_>> {
        GroupBy::new(self, keys)
    }

    /// Distinct values of one column.
    pub fn unique(&self, column: &str) -> FrameResult<Vec<Value>> {
        Ok(self.column_checked(column)?.unique())
    }

    /// Value counts of a column, descending, as a `(value, count)` frame.
    pub fn value_counts(&self, column: &str) -> FrameResult<DataFrame> {
        let c = self.column_checked(column)?;
        // Hash-bucketed counting (equality-confirmed, like group-by): the
        // stable hash unifies Int/Float of equal value where `Value`
        // equality does not, so buckets may hold several distinct values.
        let mut counts: Vec<(Value, i64)> = Vec::new();
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for v in c.values() {
            if v.is_null() {
                continue;
            }
            let bucket = buckets.entry(v.stable_hash()).or_default();
            match bucket.iter().find(|&&i| &counts[i].0 == v) {
                Some(&i) => counts[i].1 += 1,
                None => {
                    bucket.push(counts.len());
                    counts.push((v.clone(), 1));
                }
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.compare(&b.0)));
        DataFrame::from_columns(vec![
            (
                column.to_string(),
                counts.iter().map(|(v, _)| v.clone()).collect(),
            ),
            (
                "count".to_string(),
                counts.iter().map(|(_, n)| Value::Int(*n)).collect(),
            ),
        ])
    }

    /// One row as a key→value map.
    pub fn row(&self, idx: usize) -> Option<Map> {
        if idx >= self.rows {
            return None;
        }
        let mut m = Map::new();
        for c in &self.columns {
            m.insert(
                Sym::from(c.name()),
                c.get(idx).cloned().unwrap_or(Value::Null),
            );
        }
        Some(m)
    }

    /// Iterate rows as maps.
    pub fn iter_rows(&self) -> impl Iterator<Item = Map> + '_ {
        (0..self.rows).filter_map(|i| self.row(i))
    }

    /// Vertical concatenation; the column set becomes the union.
    pub fn concat(&self, other: &DataFrame) -> DataFrame {
        let mut df = self.clone();
        for row in other.iter_rows() {
            df.push_row(&row);
        }
        df
    }

    /// `(column, dtype)` pairs, the raw material of the dataflow schema.
    pub fn dtypes(&self) -> Vec<(String, DType)> {
        self.columns
            .iter()
            .map(|c| (c.name().to_string(), c.dtype()))
            .collect()
    }

    /// Summary statistics for numeric columns
    /// (count/mean/std/min/median/max), pandas `describe()`-style.
    pub fn describe(&self) -> DataFrame {
        let numeric: Vec<&Column> = self
            .columns
            .iter()
            .filter(|c| c.dtype().is_numeric())
            .collect();
        let stats = [
            ("count", AggFunc::Count),
            ("mean", AggFunc::Mean),
            ("std", AggFunc::Std),
            ("min", AggFunc::Min),
            ("median", AggFunc::Median),
            ("max", AggFunc::Max),
        ];
        let mut cols: Vec<(String, Vec<Value>)> = vec![(
            "stat".to_string(),
            stats.iter().map(|(n, _)| Value::from(*n)).collect(),
        )];
        for c in numeric {
            cols.push((
                c.name().to_string(),
                stats.iter().map(|(_, f)| c.agg(*f)).collect(),
            ));
        }
        DataFrame::from_columns(cols).expect("equal lengths by construction")
    }
}

/// The sort-key ordering of one cell pair under [`DataFrame::sort_values`]:
/// nulls sort last regardless of direction (pandas default), non-null cells
/// by [`Value::compare`] with the requested direction.
///
/// Exposed so storage engines pushing `sort_values(...).head(k)` into their
/// scans (prov-db's top-k executor) order candidates by *exactly* the frame
/// rule instead of re-deriving it. Note this is a strict weak order only
/// when no `NaN` is among the compared cells — `Value::compare` calls mixed
/// NaN comparisons `Equal`, so engines must not build ordered structures
/// over NaN keys (the frame's own stable sort is the only definition of
/// that order).
pub fn sort_cell_cmp(a: &Value, b: &Value, ascending: bool) -> std::cmp::Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => {
            let o = a.compare(b);
            if ascending {
                o
            } else {
                o.reverse()
            }
        }
    }
}

/// Flatten one task message into its row map — the single source of the
/// column layout documented on [`DataFrame::from_messages`], shared by the
/// full and projected constructors.
///
/// Accumulates `(key, value)` pairs in one flat vector and bulk-builds the
/// map at the end (later pairs overwrite earlier ones, exactly like
/// repeated inserts) — this is the per-document cost of decode and
/// materialize, so it avoids per-field map restructuring.
fn message_row(m: &TaskMessage) -> Map {
    use prov_model::keys;
    let mut pairs: Vec<(Sym, Value)> = Vec::with_capacity(24);
    pairs.push((keys::task_id(), Value::from(m.task_id.as_str())));
    pairs.push((keys::campaign_id(), Value::from(m.campaign_id.as_str())));
    pairs.push((keys::workflow_id(), Value::from(m.workflow_id.as_str())));
    pairs.push((keys::activity_id(), Value::from(m.activity_id.as_str())));
    pairs.push((keys::started_at(), Value::Float(m.started_at)));
    pairs.push((keys::ended_at(), Value::Float(m.ended_at)));
    pairs.push((keys::duration(), Value::Float(m.duration())));
    pairs.push((keys::hostname(), Value::from(m.hostname.as_str())));
    pairs.push((keys::status(), Value::Str(m.status.sym())));
    pairs.push((keys::msg_type(), Value::Str(m.msg_type.sym())));
    if !m.depends_on.is_empty() {
        pairs.push((
            keys::depends_on(),
            Value::array(
                m.depends_on
                    .iter()
                    .map(|t| Value::from(t.as_str()))
                    .collect(),
            ),
        ));
    }
    for (key, value) in m.used.flatten() {
        let name = dataflow_column_name(&key, "used", &pairs);
        pairs.push((Sym::from(name), value));
    }
    for (key, value) in m.generated.flatten() {
        let name = dataflow_column_name(&key, "generated", &pairs);
        pairs.push((Sym::from(name), value));
    }
    if let Some(t) = &m.telemetry_at_start {
        for (key, value) in t.to_value().flatten() {
            pairs.push((Sym::from(format!("telemetry_at_start.{key}")), value));
        }
        pairs.push(("cpu_percent_start".into(), Value::Float(t.cpu_mean())));
    }
    if let Some(t) = &m.telemetry_at_end {
        for (key, value) in t.to_value().flatten() {
            pairs.push((Sym::from(format!("telemetry_at_end.{key}")), value));
        }
        pairs.push(("cpu_percent_end".into(), Value::Float(t.cpu_mean())));
        pairs.push(("gpu_percent_end".into(), Value::Float(t.gpu_mean())));
        pairs.push(("mem_used_mb_end".into(), Value::Float(t.mem_used_mb)));
    }
    for (k, v) in &m.tags {
        pairs.push((Sym::from(format!("tags.{k}")), v.clone()));
    }
    Map::from_iter(pairs)
}

/// Bare name unless it clashes with a common field or a column this same
/// row already set (e.g. `used.x` and `generated.x`).
fn dataflow_column_name(key: &str, section: &str, row: &[(Sym, Value)]) -> String {
    let clashes = prov_model::schema::common_field(key).is_some()
        || row.iter().any(|(k, _)| k.as_str() == key)
        || matches!(key, "duration" | "cpu_percent_start" | "cpu_percent_end");
    if clashes {
        format!("{section}.{key}")
    } else {
        key.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use prov_model::{obj, TaskMessageBuilder, TelemetrySynth};

    fn messages() -> Vec<TaskMessage> {
        let synth = TelemetrySynth::frontier(9);
        (0..6)
            .map(|i| {
                TaskMessageBuilder::new(
                    format!("t{i}"),
                    "wf-1",
                    if i % 2 == 0 { "run_dft" } else { "postprocess" },
                )
                .uses("molecule", "CCO")
                .uses("conf_id", i as i64)
                .generates("energy", -155.0 - i as f64)
                .span(100.0 + i as f64, 101.5 + i as f64)
                .host(format!("frontier0008{}", i % 3))
                .telemetry(
                    synth.snapshot(i as u64, 0, 0.6),
                    synth.snapshot(i as u64, 1, 0.6),
                )
                .build()
            })
            .collect()
    }

    #[test]
    fn from_messages_layout() {
        let df = DataFrame::from_messages(&messages());
        assert_eq!(df.len(), 6);
        for name in [
            "task_id",
            "activity_id",
            "duration",
            "molecule",
            "conf_id",
            "energy",
            "cpu_percent_end",
        ] {
            assert!(df.has_column(name), "missing {name}");
        }
        assert_eq!(
            df.column("duration").unwrap().get(0),
            Some(&Value::Float(1.5))
        );
    }

    #[test]
    fn select_filter_sort() {
        let df = DataFrame::from_messages(&messages());
        let out = df
            .filter(&col("activity_id").eq(lit("run_dft")))
            .sort_values(&[("energy", true)])
            .unwrap()
            .select(&["task_id", "energy"])
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.width(), 2);
        let e = out.column("energy").unwrap().numeric();
        assert!(e.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn select_unknown_column_errors() {
        let df = DataFrame::from_messages(&messages());
        let err = df.select(&["nope"]).unwrap_err();
        match err {
            FrameError::UnknownColumn { name, available } => {
                assert_eq!(name, "nope");
                assert!(available.contains(&"task_id".to_string()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sort_desc_and_nulls_last() {
        let df = DataFrame::from_columns(vec![(
            "x",
            vec![Value::Int(1), Value::Null, Value::Int(5), Value::Int(3)],
        )])
        .unwrap();
        let sorted = df.sort_values(&[("x", false)]).unwrap();
        let vals = sorted.column("x").unwrap().values().to_vec();
        assert_eq!(
            vals,
            vec![Value::Int(5), Value::Int(3), Value::Int(1), Value::Null]
        );
    }

    #[test]
    fn head_tail_take() {
        let df = DataFrame::from_messages(&messages());
        assert_eq!(df.head(2).len(), 2);
        assert_eq!(df.tail(2).len(), 2);
        assert_eq!(df.head(100).len(), 6);
        let t = df.take(&[5, 0]);
        assert_eq!(
            t.column("task_id").unwrap().get(0),
            Some(&Value::Str("t5".into()))
        );
    }

    #[test]
    fn push_row_backfills_nulls() {
        let mut df = DataFrame::new();
        let mut r1 = Map::new();
        r1.insert("a".into(), Value::Int(1));
        df.push_row(&r1);
        let mut r2 = Map::new();
        r2.insert("b".into(), Value::Int(2));
        df.push_row(&r2);
        assert_eq!(df.len(), 2);
        assert_eq!(df.column("b").unwrap().get(0), Some(&Value::Null));
        assert_eq!(df.column("a").unwrap().get(1), Some(&Value::Null));
    }

    #[test]
    fn value_counts_descending() {
        let df = DataFrame::from_messages(&messages());
        let vc = df.value_counts("activity_id").unwrap();
        assert_eq!(vc.len(), 2);
        assert_eq!(vc.column("count").unwrap().get(0), Some(&Value::Int(3)));
    }

    #[test]
    fn drop_duplicates_subset() {
        let df = DataFrame::from_messages(&messages());
        let dd = df.drop_duplicates(&["activity_id"]).unwrap();
        assert_eq!(dd.len(), 2);
    }

    #[test]
    fn with_column_derives() {
        let df = DataFrame::from_messages(&messages());
        let df2 = df.with_column("e2", &col("energy").mul(lit(2.0)));
        assert_eq!(
            df2.column("e2").unwrap().get(0).and_then(Value::as_f64),
            Some(-310.0)
        );
        // Replacement keeps width.
        let df3 = df2.with_column("e2", &lit(0));
        assert_eq!(df3.width(), df2.width());
    }

    #[test]
    fn describe_contains_stats() {
        let df = DataFrame::from_messages(&messages());
        let d = df.describe();
        assert_eq!(d.len(), 6);
        assert!(d.has_column("energy"));
        assert!(d.has_column("duration"));
    }

    #[test]
    fn collision_gets_section_prefix() {
        let m = TaskMessageBuilder::new("t", "wf", "a")
            .uses("x", 1)
            .generates("x", 2)
            .uses("status", "custom") // clashes with common field
            .build();
        let df = DataFrame::from_messages(std::iter::once(&m));
        assert!(df.has_column("x"));
        assert!(df.has_column("generated.x"));
        assert!(df.has_column("used.status"));
        assert_eq!(
            df.column("status").unwrap().get(0),
            Some(&Value::Str("FINISHED".into()))
        );
    }

    #[test]
    fn concat_unions_columns() {
        let a = DataFrame::from_columns(vec![("x", vec![Value::Int(1)])]).unwrap();
        let b = DataFrame::from_columns(vec![("y", vec![Value::Int(2)])]).unwrap();
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert!(c.has_column("x") && c.has_column("y"));
    }

    #[test]
    fn length_mismatch_rejected() {
        let r = DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1)]),
            ("b", vec![Value::Int(1), Value::Int(2)]),
        ]);
        assert!(matches!(r, Err(FrameError::LengthMismatch { .. })));
    }

    #[test]
    fn rows_roundtrip() {
        let df = DataFrame::from_messages(&messages());
        let rows: Vec<Map> = df.iter_rows().collect();
        let df2 = DataFrame::from_rows(&rows);
        assert_eq!(df2.len(), df.len());
        assert_eq!(
            df2.column("energy").unwrap().values(),
            df.column("energy").unwrap().values()
        );
    }

    #[test]
    fn projected_construction_agrees_with_full() {
        let msgs = messages();
        let full = DataFrame::from_messages(&msgs);
        let cols = vec![
            "task_id".to_string(),
            "duration".into(),
            "energy".into(),
            "cpu_percent_end".into(),
        ];
        let projected = DataFrame::from_messages_projected(&msgs, &cols);
        assert_eq!(projected.len(), full.len());
        assert_eq!(projected.width(), cols.len());
        for c in &cols {
            assert_eq!(
                projected.column(c).unwrap().values(),
                full.column(c).unwrap().values(),
                "column {c}"
            );
        }
        // A column nobody provides stays absent; rows are still counted.
        let none = DataFrame::from_messages_projected(&msgs, &["nope".to_string()]);
        assert_eq!(none.len(), msgs.len());
        assert!(!none.has_column("nope"));
        // Empty projection: right row count, zero width (len(df) pushdown).
        let empty = DataFrame::from_messages_projected(&msgs, &[]);
        assert_eq!(empty.len(), msgs.len());
        assert_eq!(empty.width(), 0);
    }

    #[test]
    fn tags_flattened() {
        let m = TaskMessageBuilder::new("t", "wf", "a")
            .build()
            .with_tag("anomaly", obj! {"metric" => "cpu"});
        let df = DataFrame::from_messages(std::iter::once(&m));
        assert!(df.has_column("tags.anomaly"));
    }
}
