//! A single named, dynamically typed column.

use crate::agg::AggFunc;
use crate::dtype::DType;
use prov_model::Value;

/// One column: a name plus a dense vector of values (nulls allowed).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    values: Vec<Value>,
}

impl Column {
    /// Create a column from raw values.
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }

    /// Empty column with a name.
    pub fn empty(name: impl Into<String>) -> Self {
        Self::new(name, Vec::new())
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename, consuming self.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow all values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a row (None out of bounds).
    pub fn get(&self, row: usize) -> Option<&Value> {
        self.values.get(row)
    }

    /// Append a value.
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Inferred dtype over current values.
    pub fn dtype(&self) -> DType {
        DType::infer(self.values.iter())
    }

    /// Count of non-null values.
    pub fn count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }

    /// Non-null numeric view of the column.
    pub fn numeric(&self) -> Vec<f64> {
        self.values.iter().filter_map(Value::as_f64).collect()
    }

    /// Take rows by index, building a new column (indices must be in range).
    pub fn take(&self, indices: &[usize]) -> Column {
        Column {
            name: self.name.clone(),
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.values.len());
        Column {
            name: self.name.clone(),
            values: self
                .values
                .iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(v, _)| v.clone())
                .collect(),
        }
    }

    /// Apply an aggregation to this column.
    pub fn agg(&self, func: AggFunc) -> Value {
        func.apply(&self.values)
    }

    /// Distinct values in first-seen order.
    pub fn unique(&self) -> Vec<Value> {
        let mut seen: Vec<Value> = Vec::new();
        for v in &self.values {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        }
        seen
    }

    /// Index of the row holding the minimum value (numeric-coercing order).
    pub fn idxmin(&self) -> Option<usize> {
        self.arg_extreme(true)
    }

    /// Index of the row holding the maximum value.
    pub fn idxmax(&self) -> Option<usize> {
        self.arg_extreme(false)
    }

    fn arg_extreme(&self, min: bool) -> Option<usize> {
        let mut best: Option<(usize, &Value)> = None;
        for (i, v) in self.values.iter().enumerate() {
            if v.is_null() {
                continue;
            }
            best = match best {
                None => Some((i, v)),
                Some((bi, bv)) => {
                    let ord = v.compare(bv);
                    let better = if min {
                        ord == std::cmp::Ordering::Less
                    } else {
                        ord == std::cmp::Ordering::Greater
                    };
                    if better {
                        Some((i, v))
                    } else {
                        Some((bi, bv))
                    }
                }
            };
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> Column {
        Column::new(
            "x",
            vec![Value::Int(3), Value::Null, Value::Float(1.5), Value::Int(7)],
        )
    }

    #[test]
    fn basics() {
        let c = col();
        assert_eq!(c.len(), 4);
        assert_eq!(c.count(), 3);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.numeric(), vec![3.0, 1.5, 7.0]);
    }

    #[test]
    fn take_and_filter() {
        let c = col();
        let t = c.take(&[3, 0]);
        assert_eq!(t.values(), &[Value::Int(7), Value::Int(3)]);
        let f = c.filter(&[true, false, false, true]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn idx_extremes_skip_nulls() {
        let c = col();
        assert_eq!(c.idxmin(), Some(2));
        assert_eq!(c.idxmax(), Some(3));
        let empty = Column::empty("e");
        assert_eq!(empty.idxmin(), None);
    }

    #[test]
    fn unique_preserves_order() {
        let c = Column::new(
            "s",
            vec![
                Value::Str("b".into()),
                Value::Str("a".into()),
                Value::Str("b".into()),
            ],
        );
        assert_eq!(
            c.unique(),
            vec![Value::Str("b".into()), Value::Str("a".into())]
        );
    }
}
