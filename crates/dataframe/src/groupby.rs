//! Group-by and aggregation over grouped buckets.

use crate::agg::AggFunc;
use crate::frame::{DataFrame, FrameError, FrameResult};
use prov_model::Value;

/// A grouping of frame rows by one or more key columns.
///
/// Group order is first-appearance order (deterministic), matching what
/// `sort=False` group-bys do in pandas; callers sort explicitly when needed.
#[derive(Debug)]
pub struct GroupBy<'f> {
    frame: &'f DataFrame,
    keys: Vec<String>,
    /// Parallel vectors: each group's key values and member row indices.
    groups: Vec<(Vec<Value>, Vec<usize>)>,
}

impl<'f> GroupBy<'f> {
    pub(crate) fn new(frame: &'f DataFrame, keys: &[&str]) -> FrameResult<Self> {
        if keys.is_empty() {
            return Err(FrameError::UnknownColumn {
                name: "<empty group key>".to_string(),
                available: frame.column_names().iter().map(|s| s.to_string()).collect(),
            });
        }
        let key_cols: Vec<_> = keys
            .iter()
            .map(|k| frame.column_checked(k))
            .collect::<FrameResult<_>>()?;
        // Hash-bucketed grouping: bucket rows by the combined stable hash
        // of their key values and confirm with real equality inside the
        // bucket, so building the groups is O(rows) instead of
        // O(rows × groups). `stable_hash` unifies Int/Float holding the
        // same number while `Value` equality does not; such keys share a
        // bucket but stay distinct groups, exactly as before.
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut buckets: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for row in 0..frame.len() {
            let key: Vec<Value> = key_cols
                .iter()
                .map(|c| c.get(row).cloned().unwrap_or(Value::Null))
                .collect();
            let h = key.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, v| {
                acc.wrapping_mul(0x1000_0000_01b3) ^ v.stable_hash()
            });
            let bucket = buckets.entry(h).or_default();
            match bucket.iter().find(|&&g| groups[g].0 == key) {
                Some(&g) => groups[g].1.push(row),
                None => {
                    bucket.push(groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        Ok(Self {
            frame,
            keys: keys.iter().map(|s| s.to_string()).collect(),
            groups,
        })
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Iterate `(key values, member frame)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], DataFrame)> + '_ {
        self.groups
            .iter()
            .map(|(k, rows)| (k.as_slice(), self.frame.take(rows)))
    }

    /// Aggregate: for each group apply `(column, func)` specs, producing one
    /// output row per group with key columns plus `column_func` columns
    /// (a single spec keeps the bare column name, pandas-style).
    pub fn agg(&self, specs: &[(&str, AggFunc)]) -> FrameResult<DataFrame> {
        for (c, _) in specs {
            self.frame.column_checked(c)?;
        }
        let single = specs.len() == 1;
        let mut cols: Vec<(String, Vec<Value>)> = self
            .keys
            .iter()
            .map(|k| (k.clone(), Vec::with_capacity(self.groups.len())))
            .collect();
        for (i, k) in self.keys.iter().enumerate() {
            let _ = k;
            for (key, _) in &self.groups {
                cols[i].1.push(key[i].clone());
            }
        }
        for (cname, func) in specs {
            let out_name = if single {
                cname.to_string()
            } else {
                format!("{cname}_{}", func.name())
            };
            let col = self.frame.column(cname).expect("validated");
            let mut out = Vec::with_capacity(self.groups.len());
            for (_, rows) in &self.groups {
                let vals: Vec<Value> = rows
                    .iter()
                    .map(|&r| col.get(r).cloned().unwrap_or(Value::Null))
                    .collect();
                out.push(func.apply(&vals));
            }
            cols.push((out_name, out));
        }
        DataFrame::from_columns(cols)
    }

    /// Group sizes as a `(keys..., size)` frame.
    pub fn size(&self) -> DataFrame {
        let mut cols: Vec<(String, Vec<Value>)> = self
            .keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                (
                    k.clone(),
                    self.groups.iter().map(|(key, _)| key[i].clone()).collect(),
                )
            })
            .collect();
        cols.push((
            "size".to_string(),
            self.groups
                .iter()
                .map(|(_, rows)| Value::Int(rows.len() as i64))
                .collect(),
        ));
        DataFrame::from_columns(cols).expect("equal lengths by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::Value;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "bond",
                vec![
                    Value::from("C-H"),
                    Value::from("C-C"),
                    Value::from("C-H"),
                    Value::from("O-H"),
                    Value::from("C-H"),
                ],
            ),
            (
                "bde",
                vec![
                    Value::Float(98.6),
                    Value::Float(87.1),
                    Value::Float(99.2),
                    Value::Float(104.8),
                    Value::Float(98.9),
                ],
            ),
            (
                "host",
                vec![
                    Value::from("n0"),
                    Value::from("n0"),
                    Value::from("n1"),
                    Value::from("n1"),
                    Value::from("n0"),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn single_agg_keeps_bare_name() {
        let f = frame();
        let g = f.groupby(&["bond"]).unwrap();
        let out = g.agg(&[("bde", AggFunc::Mean)]).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.has_column("bde"));
        let ch = out
            .filter(&crate::expr::col("bond").eq(crate::expr::lit("C-H")))
            .column("bde")
            .unwrap()
            .numeric()[0];
        assert!((ch - (98.6 + 99.2 + 98.9) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_agg_suffixes_names() {
        let f = frame();
        let out = f
            .groupby(&["bond"])
            .unwrap()
            .agg(&[("bde", AggFunc::Mean), ("bde", AggFunc::Max)])
            .unwrap();
        assert!(out.has_column("bde_mean"));
        assert!(out.has_column("bde_max"));
    }

    #[test]
    fn multi_key_grouping() {
        let f = frame();
        let g = f.groupby(&["bond", "host"]).unwrap();
        assert_eq!(g.group_count(), 4);
        let sizes = g.size();
        assert_eq!(sizes.len(), 4);
        let total: i64 = sizes
            .column("size")
            .unwrap()
            .values()
            .iter()
            .filter_map(Value::as_i64)
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn unknown_key_errors() {
        let f = frame();
        assert!(f.groupby(&["nope"]).is_err());
        assert!(f.groupby(&[]).is_err());
        let g = f.groupby(&["bond"]).unwrap();
        assert!(g.agg(&[("nope", AggFunc::Mean)]).is_err());
    }

    #[test]
    fn iter_groups() {
        let f = frame();
        let g = f.groupby(&["host"]).unwrap();
        let sizes: Vec<usize> = g.iter().map(|(_, sub)| sub.len()).collect();
        assert_eq!(sizes, vec![3, 2]); // first-appearance order: n0 then n1
    }
}
