//! Client-side buffered emission with configurable flush strategies.
//!
//! §4.1: "Workflow tasks perform lightweight provenance capture by buffering
//! messages that are asynchronously streamed in bulk to the hub, reducing
//! interference with active jobs." The emitter buffers in memory and
//! flushes by count, bytes, interval, or any combination; an optional
//! background thread enforces the interval when the workflow goes quiet.

use crate::broker::{Broker, BrokerError};
use parking_lot::Mutex;
use prov_model::TaskMessage;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When to flush the in-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushStrategy {
    /// Flush when this many messages are buffered.
    pub max_count: Option<usize>,
    /// Flush when the buffered payload reaches this many bytes.
    pub max_bytes: Option<usize>,
    /// Flush at least this often (enforced by the background flusher).
    pub interval: Option<Duration>,
}

impl FlushStrategy {
    /// Flush on every message (no buffering) — the ablation baseline.
    pub fn immediate() -> Self {
        Self {
            max_count: Some(1),
            max_bytes: None,
            interval: None,
        }
    }

    /// Flush every `n` messages.
    pub fn by_count(n: usize) -> Self {
        Self {
            max_count: Some(n.max(1)),
            max_bytes: None,
            interval: None,
        }
    }

    /// Flush when `bytes` of payload are buffered.
    pub fn by_bytes(bytes: usize) -> Self {
        Self {
            max_count: None,
            max_bytes: Some(bytes.max(1)),
            interval: None,
        }
    }

    /// The paper's default: bulk flush with a liveness interval.
    pub fn bulk() -> Self {
        Self {
            max_count: Some(128),
            max_bytes: Some(256 * 1024),
            interval: Some(Duration::from_millis(200)),
        }
    }
}

/// A buffered, thread-safe emitter bound to one broker topic.
pub struct BufferedEmitter {
    broker: Arc<dyn Broker>,
    topic: String,
    strategy: FlushStrategy,
    buffer: Mutex<Buffered>,
    flushes: AtomicU64,
    emitted: AtomicU64,
    stop: Arc<AtomicBool>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

struct Buffered {
    msgs: Vec<TaskMessage>,
    bytes: usize,
    last_flush: Instant,
}

impl BufferedEmitter {
    /// Create an emitter; if the strategy has an interval, a background
    /// flusher thread is started (stopped on drop).
    pub fn new(
        broker: Arc<dyn Broker>,
        topic: impl Into<String>,
        strategy: FlushStrategy,
    ) -> Arc<Self> {
        let emitter = Arc::new(Self {
            broker,
            topic: topic.into(),
            strategy,
            buffer: Mutex::new(Buffered {
                msgs: Vec::new(),
                bytes: 0,
                last_flush: Instant::now(),
            }),
            flushes: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            stop: Arc::new(AtomicBool::new(false)),
            flusher: Mutex::new(None),
        });
        if let Some(interval) = strategy.interval {
            let weak = Arc::downgrade(&emitter);
            let stop = emitter.stop.clone();
            let handle = std::thread::Builder::new()
                .name("prov-flusher".into())
                .spawn(move || {
                    // Tick at a fraction of the interval so a quiet buffer is
                    // flushed within ~interval of its oldest message.
                    let tick = interval
                        .min(Duration::from_millis(50))
                        .max(Duration::from_millis(1));
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        let Some(e) = weak.upgrade() else { break };
                        let due = {
                            let b = e.buffer.lock();
                            !b.msgs.is_empty() && b.last_flush.elapsed() >= interval
                        };
                        if due {
                            let _ = e.flush();
                        }
                    }
                })
                .expect("spawn flusher");
            *emitter.flusher.lock() = Some(handle);
        }
        emitter
    }

    /// Queue a message, flushing when a threshold trips.
    pub fn emit(&self, msg: TaskMessage) -> Result<(), BrokerError> {
        let should_flush = {
            let mut b = self.buffer.lock();
            b.bytes += msg.to_value().approx_size();
            b.msgs.push(msg);
            self.emitted.fetch_add(1, Ordering::Relaxed);
            let count_hit = self.strategy.max_count.is_some_and(|n| b.msgs.len() >= n);
            let bytes_hit = self.strategy.max_bytes.is_some_and(|n| b.bytes >= n);
            count_hit || bytes_hit
        };
        if should_flush {
            self.flush()?;
        }
        Ok(())
    }

    /// Flush whatever is buffered as one bulk publish.
    pub fn flush(&self) -> Result<usize, BrokerError> {
        let batch = {
            let mut b = self.buffer.lock();
            if b.msgs.is_empty() {
                b.last_flush = Instant::now();
                return Ok(0);
            }
            b.bytes = 0;
            b.last_flush = Instant::now();
            std::mem::take(&mut b.msgs)
        };
        let n = self.broker.publish_batch(&self.topic, batch)?;
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// Messages accepted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Bulk flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Messages currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.lock().msgs.len()
    }
}

impl Drop for BufferedEmitter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::topics;
    use crate::memory::MemoryBroker;
    use prov_model::TaskMessageBuilder;

    fn msg(i: usize) -> TaskMessage {
        TaskMessageBuilder::new(format!("t{i}"), "wf", "act").build()
    }

    #[test]
    fn count_strategy_batches() {
        let broker = MemoryBroker::shared();
        let sub = broker.subscribe(topics::TASKS);
        let e = BufferedEmitter::new(broker.clone(), topics::TASKS, FlushStrategy::by_count(10));
        for i in 0..25 {
            e.emit(msg(i)).unwrap();
        }
        // Two full batches flushed; 5 messages still buffered.
        assert_eq!(e.flushes(), 2);
        assert_eq!(e.buffered(), 5);
        assert_eq!(sub.drain().len(), 20);
        e.flush().unwrap();
        assert_eq!(sub.drain().len(), 5);
    }

    #[test]
    fn immediate_strategy_flushes_every_message() {
        let broker = MemoryBroker::shared();
        let sub = broker.subscribe(topics::TASKS);
        let e = BufferedEmitter::new(broker.clone(), topics::TASKS, FlushStrategy::immediate());
        for i in 0..5 {
            e.emit(msg(i)).unwrap();
        }
        assert_eq!(e.flushes(), 5);
        assert_eq!(sub.drain().len(), 5);
    }

    #[test]
    fn bytes_strategy_flushes_on_size() {
        let broker = MemoryBroker::shared();
        let sub = broker.subscribe(topics::TASKS);
        let e = BufferedEmitter::new(broker.clone(), topics::TASKS, FlushStrategy::by_bytes(400));
        for i in 0..10 {
            e.emit(msg(i)).unwrap();
        }
        assert!(e.flushes() >= 1, "expected at least one size-based flush");
        assert!(!sub.drain().is_empty());
    }

    #[test]
    fn interval_flusher_drains_quiet_buffer() {
        let broker = MemoryBroker::shared();
        let sub = broker.subscribe(topics::TASKS);
        let strategy = FlushStrategy {
            max_count: Some(1000),
            max_bytes: None,
            interval: Some(Duration::from_millis(30)),
        };
        let e = BufferedEmitter::new(broker.clone(), topics::TASKS, strategy);
        e.emit(msg(0)).unwrap();
        assert_eq!(e.flushes(), 0);
        // Wait for the background flusher to trip the interval.
        let deadline = Instant::now() + Duration::from_secs(2);
        while sub.queued() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(sub.drain().len(), 1);
    }

    #[test]
    fn drop_flushes_remaining() {
        let broker = MemoryBroker::shared();
        let sub = broker.subscribe(topics::TASKS);
        {
            let e =
                BufferedEmitter::new(broker.clone(), topics::TASKS, FlushStrategy::by_count(100));
            e.emit(msg(0)).unwrap();
            e.emit(msg(1)).unwrap();
        } // dropped here
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn concurrent_emitters_share_buffer_safely() {
        let broker = MemoryBroker::shared();
        let sub = broker.subscribe(topics::TASKS);
        let e = BufferedEmitter::new(broker.clone(), topics::TASKS, FlushStrategy::by_count(16));
        std::thread::scope(|s| {
            for t in 0..4 {
                let e = e.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        e.emit(msg(t * 1000 + i)).unwrap();
                    }
                });
            }
        });
        e.flush().unwrap();
        assert_eq!(sub.drain().len(), 400);
    }
}
