//! In-memory fan-out broker — the Redis Pub/Sub-shaped backend.
//!
//! "Redis offers low-latency messaging with minimal setup, making it
//! suitable for most use cases" (§2.3). Semantics mirror Redis Pub/Sub:
//! fire-and-forget, at-most-once, delivery only to currently connected
//! subscribers, no retention.

use crate::broker::{validate_topic, Broker, BrokerError, Delivery, Subscription};
use crate::metrics::{BrokerStats, Counters};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::RwLock;
use prov_model::TaskMessage;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-topic subscriber list: `(subscription id, delivery channel)` pairs.
type Subscribers = Vec<(u64, Sender<Delivery>)>;

/// Redis-like in-process pub/sub broker.
#[derive(Default)]
pub struct MemoryBroker {
    topics: RwLock<HashMap<String, Subscribers>>,
    next_sub_id: AtomicU64,
    counters: Counters,
}

impl MemoryBroker {
    /// New broker with no topics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Number of registered subscribers on a topic (pruned lazily after a
    /// delivery notices a disconnect).
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.topics.read().get(topic).map(Vec::len).unwrap_or(0)
    }

    fn deliver(&self, topic: &str, msg: Delivery) {
        let mut delivered = 0u64;
        let mut dead: Vec<u64> = Vec::new();
        {
            let topics = self.topics.read();
            if let Some(subs) = topics.get(topic) {
                for (id, tx) in subs {
                    if tx.send(msg.clone()).is_ok() {
                        delivered += 1;
                    } else {
                        dead.push(*id);
                    }
                }
            }
        }
        if delivered == 0 {
            self.counters.record_drop(1);
        }
        self.counters.record_delivery(delivered);
        if !dead.is_empty() {
            // Prune disconnected subscribers outside the hot read path.
            let mut topics = self.topics.write();
            if let Some(subs) = topics.get_mut(topic) {
                subs.retain(|(id, _)| !dead.contains(id));
            }
        }
    }
}

impl Broker for MemoryBroker {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn publish(&self, topic: &str, msg: TaskMessage) -> Result<(), BrokerError> {
        validate_topic(topic)?;
        let bytes = msg.to_value().approx_size() as u64;
        self.counters.record_publish(1, bytes);
        self.deliver(topic, Arc::new(msg));
        Ok(())
    }

    fn publish_batch(&self, topic: &str, msgs: Vec<TaskMessage>) -> Result<usize, BrokerError> {
        validate_topic(topic)?;
        let n = msgs.len();
        self.counters.record_batch();
        for m in msgs {
            let bytes = m.to_value().approx_size() as u64;
            self.counters.record_publish(1, bytes);
            self.deliver(topic, Arc::new(m));
        }
        Ok(n)
    }

    fn subscribe(&self, topic: &str) -> Subscription {
        let (tx, rx) = unbounded();
        let id = self.next_sub_id.fetch_add(1, Ordering::Relaxed);
        self.topics
            .write()
            .entry(topic.to_string())
            .or_default()
            .push((id, tx));
        Subscription::new(topic, rx)
    }

    fn stats(&self) -> BrokerStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::topics;
    use prov_model::TaskMessageBuilder;
    use std::time::Duration;

    fn msg(id: &str) -> TaskMessage {
        TaskMessageBuilder::new(id, "wf", "act").build()
    }

    #[test]
    fn fanout_to_all_subscribers() {
        let b = MemoryBroker::new();
        let s1 = b.subscribe(topics::TASKS);
        let s2 = b.subscribe(topics::TASKS);
        b.publish(topics::TASKS, msg("a")).unwrap();
        assert_eq!(s1.recv().unwrap().task_id.as_str(), "a");
        assert_eq!(s2.recv().unwrap().task_id.as_str(), "a");
        assert_eq!(b.stats().delivered, 2);
    }

    #[test]
    fn topic_isolation() {
        let b = MemoryBroker::new();
        let tasks = b.subscribe(topics::TASKS);
        let anomalies = b.subscribe(topics::ANOMALIES);
        b.publish(topics::TASKS, msg("t")).unwrap();
        assert_eq!(tasks.recv().unwrap().task_id.as_str(), "t");
        assert!(anomalies.try_recv().is_err());
    }

    #[test]
    fn unsubscribed_messages_dropped() {
        let b = MemoryBroker::new();
        b.publish(topics::TASKS, msg("lost")).unwrap();
        assert_eq!(b.stats().dropped, 1);
        // Subscription created after publish misses it (Redis semantics).
        let s = b.subscribe(topics::TASKS);
        assert!(s.try_recv().is_err());
    }

    #[test]
    fn dropped_subscription_is_pruned() {
        let b = MemoryBroker::new();
        let s1 = b.subscribe(topics::TASKS);
        {
            let _s2 = b.subscribe(topics::TASKS);
        } // s2 dropped here
        assert_eq!(b.subscriber_count(topics::TASKS), 2);
        b.publish(topics::TASKS, msg("x")).unwrap();
        assert_eq!(b.subscriber_count(topics::TASKS), 1);
        assert_eq!(s1.recv().unwrap().task_id.as_str(), "x");
    }

    #[test]
    fn batch_publish_counts() {
        let b = MemoryBroker::new();
        let s = b.subscribe(topics::TASKS);
        let batch: Vec<TaskMessage> = (0..10).map(|i| msg(&format!("m{i}"))).collect();
        assert_eq!(b.publish_batch(topics::TASKS, batch).unwrap(), 10);
        assert_eq!(s.drain().len(), 10);
        let st = b.stats();
        assert_eq!(st.published, 10);
        assert_eq!(st.batches, 1);
        assert!(st.bytes > 0);
    }

    #[test]
    fn publish_order_preserved_per_publisher() {
        let b = MemoryBroker::new();
        let s = b.subscribe(topics::TASKS);
        for i in 0..100 {
            b.publish(topics::TASKS, msg(&format!("m{i}"))).unwrap();
        }
        let got: Vec<String> = s
            .drain()
            .iter()
            .map(|m| m.task_id.as_str().to_string())
            .collect();
        let expect: Vec<String> = (0..100).map(|i| format!("m{i}")).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn concurrent_publishers_lose_nothing() {
        let b = Arc::new(MemoryBroker::new());
        let s = b.subscribe(topics::TASKS);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let b = b.clone();
                scope.spawn(move || {
                    for i in 0..250 {
                        b.publish(topics::TASKS, msg(&format!("p{t}-{i}"))).unwrap();
                    }
                });
            }
        });
        let mut got = 0;
        while let Ok(_m) = s.recv_timeout(Duration::from_millis(100)) {
            got += 1;
            if got == 1000 {
                break;
            }
        }
        assert_eq!(got, 1000);
    }

    #[test]
    fn invalid_topic_rejected() {
        let b = MemoryBroker::new();
        assert_eq!(b.publish("", msg("x")), Err(BrokerError::InvalidTopic));
    }
}
