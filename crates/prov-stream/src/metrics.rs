//! Lock-free broker counters (Atomics & Locks ch. 2: statistics pattern).

use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable counters owned by a broker.
#[derive(Debug, Default)]
pub struct Counters {
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    batches: AtomicU64,
    bytes: AtomicU64,
}

impl Counters {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` published messages of `bytes` total payload size.
    pub fn record_publish(&self, n: u64, bytes: u64) {
        self.published.fetch_add(n, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `n` deliveries to subscribers.
    pub fn record_delivery(&self, n: u64) {
        self.delivered.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` messages dropped (no subscriber / full queue).
    pub fn record_drop(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one batch publish.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot current values.
    pub fn snapshot(&self) -> BrokerStats {
        BrokerStats {
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of broker counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Messages accepted by `publish`/`publish_batch`.
    pub published: u64,
    /// Messages handed to subscriber queues (fan-out counts each copy).
    pub delivered: u64,
    /// Messages published with no live subscriber (fire-and-forget loss).
    pub dropped: u64,
    /// Batch publishes.
    pub batches: u64,
    /// Approximate payload bytes accepted.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        c.record_publish(3, 300);
        c.record_delivery(6);
        c.record_drop(1);
        c.record_batch();
        let s = c.snapshot();
        assert_eq!(s.published, 3);
        assert_eq!(s.delivered, 6);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.bytes, 300);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let c = std::sync::Arc::new(Counters::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record_publish(1, 10);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().published, 8000);
        assert_eq!(c.snapshot().bytes, 80_000);
    }
}
