//! Failure injection for the streaming substrate.
//!
//! §2.3 motivates broker choice partly by "specific performance and
//! reliability needs"; a distributed capture pipeline must tolerate lossy
//! or at-least-once transports. [`ChaosBroker`] wraps any [`Broker`] and
//! injects deterministic, seed-keyed faults on the publish path — drops,
//! duplicates and per-publisher reordering — so downstream components
//! (Provenance Keeper idempotency, context ingestion, conformance
//! checking) can be tested against realistic misbehaviour without a real
//! flaky network.
//!
//! Determinism: every fault decision is a pure function of
//! `(seed, fault-kind, message ordinal)`, so a given configuration always
//! injects the same faults on the same stream.

use crate::broker::{Broker, BrokerError, Subscription};
use crate::metrics::BrokerStats;
use parking_lot::Mutex;
use prov_model::TaskMessage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault probabilities (each in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability a published message is silently dropped.
    pub drop_p: f64,
    /// Probability a published message is delivered twice.
    pub duplicate_p: f64,
    /// Probability a message is held back and published *after* the next
    /// message (pairwise reordering).
    pub reorder_p: f64,
    /// Seed for the deterministic fault stream.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            drop_p: 0.0,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            seed: 0xC4A05,
        }
    }
}

impl ChaosConfig {
    /// A lossy transport: 10% drops.
    pub fn lossy(seed: u64) -> Self {
        Self {
            drop_p: 0.10,
            seed,
            ..Self::default()
        }
    }

    /// An at-least-once transport: 15% duplicates, some reordering.
    pub fn at_least_once(seed: u64) -> Self {
        Self {
            duplicate_p: 0.15,
            reorder_p: 0.10,
            seed,
            ..Self::default()
        }
    }
}

/// Counters of injected faults.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Messages silently dropped.
    pub dropped: AtomicU64,
    /// Extra deliveries injected.
    pub duplicated: AtomicU64,
    /// Pairwise reorders performed.
    pub reordered: AtomicU64,
}

fn unit(seed: u64, salt: u64, n: u64) -> f64 {
    let mut z =
        seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Broker`] wrapper injecting deterministic faults on publish.
pub struct ChaosBroker {
    inner: Arc<dyn Broker>,
    config: ChaosConfig,
    ordinal: AtomicU64,
    held: Mutex<Option<(String, TaskMessage)>>,
    /// Injected-fault counters.
    pub chaos_stats: ChaosStats,
}

impl ChaosBroker {
    /// Wrap a broker with a fault configuration.
    pub fn new(inner: Arc<dyn Broker>, config: ChaosConfig) -> Self {
        Self {
            inner,
            config,
            ordinal: AtomicU64::new(0),
            held: Mutex::new(None),
            chaos_stats: ChaosStats::default(),
        }
    }

    /// Flush a held (reordered) message, if any. Call at end-of-stream so
    /// reordering never loses the final message.
    pub fn flush_held(&self) -> Result<(), BrokerError> {
        if let Some((topic, msg)) = self.held.lock().take() {
            self.inner.publish(&topic, msg)?;
        }
        Ok(())
    }

    /// Snapshot of injected fault counts `(dropped, duplicated, reordered)`.
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        (
            self.chaos_stats.dropped.load(Ordering::Relaxed),
            self.chaos_stats.duplicated.load(Ordering::Relaxed),
            self.chaos_stats.reordered.load(Ordering::Relaxed),
        )
    }
}

impl Broker for ChaosBroker {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn publish(&self, topic: &str, msg: TaskMessage) -> Result<(), BrokerError> {
        let n = self.ordinal.fetch_add(1, Ordering::Relaxed);
        let cfg = &self.config;
        if unit(cfg.seed, 0xD20B, n) < cfg.drop_p {
            self.chaos_stats.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // silently lost, as a lossy transport would
        }
        // Release a previously held message first (it now arrives late —
        // after the message that overtook it).
        let release = {
            let mut held = self.held.lock();
            if held.is_some() {
                held.take()
            } else if unit(cfg.seed, 0x2E02, n) < cfg.reorder_p {
                // Hold this one back; the *next* publish overtakes it.
                *held = Some((topic.to_string(), msg));
                self.chaos_stats.reordered.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            } else {
                None
            }
        };
        let duplicate = unit(cfg.seed, 0xD0B1E, n) < cfg.duplicate_p;
        if duplicate {
            self.chaos_stats.duplicated.fetch_add(1, Ordering::Relaxed);
            self.inner.publish(topic, msg.clone())?;
        }
        self.inner.publish(topic, msg)?;
        if let Some((held_topic, held_msg)) = release {
            self.inner.publish(&held_topic, held_msg)?;
        }
        Ok(())
    }

    fn subscribe(&self, topic: &str) -> Subscription {
        self.inner.subscribe(topic)
    }

    fn stats(&self) -> BrokerStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBroker;
    use prov_model::TaskMessageBuilder;

    fn msg(i: usize) -> TaskMessage {
        TaskMessageBuilder::new(format!("t{i}"), "wf", "a")
            .span(i as f64, i as f64 + 1.0)
            .build()
    }

    fn publish_n(broker: &ChaosBroker, n: usize) -> Vec<String> {
        let sub = broker.subscribe("x");
        for i in 0..n {
            broker.publish("x", msg(i)).unwrap();
        }
        broker.flush_held().unwrap();
        sub.drain()
            .iter()
            .map(|m| m.task_id.as_str().to_string())
            .collect()
    }

    #[test]
    fn no_faults_means_transparent() {
        let broker = ChaosBroker::new(Arc::new(MemoryBroker::new()), ChaosConfig::default());
        let got = publish_n(&broker, 50);
        assert_eq!(got.len(), 50);
        assert_eq!(broker.fault_counts(), (0, 0, 0));
        // Order preserved.
        let expected: Vec<String> = (0..50).map(|i| format!("t{i}")).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn drops_lose_messages_deterministically() {
        let run = || {
            let broker = ChaosBroker::new(Arc::new(MemoryBroker::new()), ChaosConfig::lossy(7));
            publish_n(&broker, 200)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fault stream must be deterministic");
        assert!(a.len() < 200, "some messages must drop");
        assert!(
            a.len() > 150,
            "roughly 10% drop rate, got {}",
            200 - a.len()
        );
    }

    #[test]
    fn duplicates_deliver_twice() {
        let broker = ChaosBroker::new(
            Arc::new(MemoryBroker::new()),
            ChaosConfig {
                duplicate_p: 0.5,
                ..ChaosConfig::default()
            },
        );
        let got = publish_n(&broker, 100);
        assert!(got.len() > 100, "duplicates should inflate delivery count");
        let (dropped, duplicated, _) = broker.fault_counts();
        assert_eq!(dropped, 0);
        assert_eq!(got.len(), 100 + duplicated as usize);
    }

    #[test]
    fn reordering_swaps_neighbors_without_loss() {
        let broker = ChaosBroker::new(
            Arc::new(MemoryBroker::new()),
            ChaosConfig {
                reorder_p: 0.3,
                ..ChaosConfig::default()
            },
        );
        let got = publish_n(&broker, 100);
        assert_eq!(got.len(), 100, "reordering must not lose messages");
        let expected: Vec<String> = (0..100).map(|i| format!("t{i}")).collect();
        assert_ne!(got, expected, "order should be perturbed");
        let mut sorted = got.clone();
        sorted.sort_by_key(|s| s[1..].parse::<u32>().unwrap());
        assert_eq!(sorted, expected, "same multiset of messages");
    }

    #[test]
    fn at_least_once_profile_duplicates_but_never_drops() {
        let broker = ChaosBroker::new(
            Arc::new(MemoryBroker::new()),
            ChaosConfig::at_least_once(99),
        );
        let got = publish_n(&broker, 300);
        assert!(got.len() >= 300);
        let (dropped, duplicated, reordered) = broker.fault_counts();
        assert_eq!(dropped, 0);
        assert!(duplicated > 20);
        assert!(reordered > 10);
    }
}
