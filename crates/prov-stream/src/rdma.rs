//! RDMA-optimized broker simulation — the Mofka-shaped backend.
//!
//! "Mofka provides RDMA-optimized transport ideal for tightly coupled HPC
//! networks" (§2.3). A real Mofka deployment moves message payloads with
//! one-sided RDMA writes, so per-message CPU cost is tiny and batches
//! amortize a fixed registration cost. We model that cost function
//! explicitly (without sleeping) so benches can compare transport profiles:
//! `cost(batch) = setup_ns + n * per_msg_ns + bytes * per_byte_ns`.

use crate::broker::{validate_topic, Broker, BrokerError, Delivery, Subscription};
use crate::metrics::{BrokerStats, Counters};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::RwLock;
use prov_model::TaskMessage;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Transport cost model in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportProfile {
    /// Fixed cost per publish call (memory registration, doorbell).
    pub setup_ns: f64,
    /// Cost per message descriptor.
    pub per_msg_ns: f64,
    /// Cost per payload byte.
    pub per_byte_ns: f64,
}

impl TransportProfile {
    /// Mofka-like RDMA profile: expensive setup, near-zero per-byte cost.
    pub fn rdma() -> Self {
        Self {
            setup_ns: 1800.0,
            per_msg_ns: 120.0,
            per_byte_ns: 0.05,
        }
    }

    /// TCP-like profile for comparison: cheap setup, costly bytes.
    pub fn tcp() -> Self {
        Self {
            setup_ns: 400.0,
            per_msg_ns: 900.0,
            per_byte_ns: 0.9,
        }
    }

    /// Simulated cost of shipping `n` messages totalling `bytes` payload.
    pub fn cost_ns(&self, n: usize, bytes: usize) -> f64 {
        self.setup_ns + n as f64 * self.per_msg_ns + bytes as f64 * self.per_byte_ns
    }
}

/// Per-topic subscriber list: `(subscription id, delivery channel)` pairs.
type Subscribers = Vec<(u64, Sender<Delivery>)>;

/// Mofka-like broker: in-memory fan-out plus a transport cost accumulator.
pub struct RdmaBroker {
    profile: TransportProfile,
    topics: RwLock<HashMap<String, Subscribers>>,
    next_sub_id: AtomicU64,
    counters: Counters,
    /// Total simulated transport nanoseconds.
    sim_ns: AtomicU64,
}

impl RdmaBroker {
    /// Broker with the given transport profile.
    pub fn new(profile: TransportProfile) -> Self {
        Self {
            profile,
            topics: RwLock::new(HashMap::new()),
            next_sub_id: AtomicU64::new(0),
            counters: Counters::new(),
            sim_ns: AtomicU64::new(0),
        }
    }

    /// Shared RDMA-profile broker.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new(TransportProfile::rdma()))
    }

    /// Total simulated transport time in nanoseconds.
    pub fn simulated_ns(&self) -> u64 {
        self.sim_ns.load(Ordering::Relaxed)
    }

    /// The profile in use.
    pub fn profile(&self) -> TransportProfile {
        self.profile
    }

    fn deliver_all(&self, topic: &str, msgs: &[Delivery]) {
        let mut delivered = 0u64;
        let mut dead = Vec::new();
        {
            let topics = self.topics.read();
            if let Some(subs) = topics.get(topic) {
                for (id, tx) in subs {
                    let mut ok = true;
                    for m in msgs {
                        if tx.send(m.clone()).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        delivered += msgs.len() as u64;
                    } else {
                        dead.push(*id);
                    }
                }
            }
        }
        if delivered == 0 {
            self.counters.record_drop(msgs.len() as u64);
        }
        self.counters.record_delivery(delivered);
        if !dead.is_empty() {
            let mut topics = self.topics.write();
            if let Some(subs) = topics.get_mut(topic) {
                subs.retain(|(id, _)| !dead.contains(id));
            }
        }
    }
}

impl Broker for RdmaBroker {
    fn name(&self) -> &'static str {
        "rdma"
    }

    fn publish(&self, topic: &str, msg: TaskMessage) -> Result<(), BrokerError> {
        validate_topic(topic)?;
        let bytes = msg.to_value().approx_size();
        self.counters.record_publish(1, bytes as u64);
        self.sim_ns
            .fetch_add(self.profile.cost_ns(1, bytes) as u64, Ordering::Relaxed);
        self.deliver_all(topic, &[Arc::new(msg)]);
        Ok(())
    }

    fn publish_batch(&self, topic: &str, msgs: Vec<TaskMessage>) -> Result<usize, BrokerError> {
        validate_topic(topic)?;
        self.counters.record_batch();
        let n = msgs.len();
        let mut bytes = 0usize;
        let deliveries: Vec<Delivery> = msgs
            .into_iter()
            .map(|m| {
                bytes += m.to_value().approx_size();
                Arc::new(m)
            })
            .collect();
        self.counters.record_publish(n as u64, bytes as u64);
        // One setup cost for the whole batch — the RDMA advantage.
        self.sim_ns
            .fetch_add(self.profile.cost_ns(n, bytes) as u64, Ordering::Relaxed);
        self.deliver_all(topic, &deliveries);
        Ok(n)
    }

    fn subscribe(&self, topic: &str) -> Subscription {
        let (tx, rx) = unbounded();
        let id = self.next_sub_id.fetch_add(1, Ordering::Relaxed);
        self.topics
            .write()
            .entry(topic.to_string())
            .or_default()
            .push((id, tx));
        Subscription::new(topic, rx)
    }

    fn stats(&self) -> BrokerStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::topics;
    use prov_model::TaskMessageBuilder;

    fn msg(id: &str) -> TaskMessage {
        TaskMessageBuilder::new(id, "wf", "act")
            .uses("payload", "x".repeat(100).as_str())
            .build()
    }

    #[test]
    fn delivers_like_a_broker() {
        let b = RdmaBroker::shared();
        let s = b.subscribe(topics::TASKS);
        b.publish(topics::TASKS, msg("a")).unwrap();
        assert_eq!(s.recv().unwrap().task_id.as_str(), "a");
    }

    #[test]
    fn batching_amortizes_setup_cost() {
        let per_message = RdmaBroker::new(TransportProfile::rdma());
        let batched = RdmaBroker::new(TransportProfile::rdma());
        let _s1 = per_message.subscribe(topics::TASKS);
        let _s2 = batched.subscribe(topics::TASKS);
        for i in 0..100 {
            per_message
                .publish(topics::TASKS, msg(&format!("m{i}")))
                .unwrap();
        }
        let batch: Vec<TaskMessage> = (0..100).map(|i| msg(&format!("m{i}"))).collect();
        batched.publish_batch(topics::TASKS, batch).unwrap();
        assert!(
            batched.simulated_ns() < per_message.simulated_ns(),
            "batched {} !< per-message {}",
            batched.simulated_ns(),
            per_message.simulated_ns()
        );
    }

    #[test]
    fn rdma_beats_tcp_on_large_payloads() {
        let rdma = TransportProfile::rdma();
        let tcp = TransportProfile::tcp();
        // 1000 messages of 1 KiB: RDMA's per-byte advantage dominates.
        assert!(rdma.cost_ns(1000, 1_024_000) < tcp.cost_ns(1000, 1_024_000));
        // A single tiny message: TCP's cheap setup wins.
        assert!(tcp.cost_ns(1, 16) < rdma.cost_ns(1, 16));
    }

    #[test]
    fn stats_track_bytes() {
        let b = RdmaBroker::shared();
        let _s = b.subscribe(topics::TASKS);
        b.publish(topics::TASKS, msg("a")).unwrap();
        assert!(b.stats().bytes >= 100);
    }
}
