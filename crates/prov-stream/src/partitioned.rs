//! Partitioned-log broker — the Kafka-shaped backend.
//!
//! "Kafka enables high throughput streaming for data-intensive workflows"
//! (§2.3). Messages are appended to per-topic partitions selected by a key
//! hash (task id), retained, and consumed by offset-tracking consumer
//! groups; live pub/sub subscriptions are layered on top so the backend
//! still satisfies [`Broker`].

use crate::broker::{validate_topic, Broker, BrokerError, Delivery, Subscription};
use crate::metrics::{BrokerStats, Counters};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use prov_model::TaskMessage;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One retained partition: an append-only log.
#[derive(Debug, Default)]
struct Partition {
    log: Mutex<Vec<Delivery>>,
}

struct Topic {
    partitions: Vec<Partition>,
    live: RwLock<Vec<(u64, Sender<Delivery>)>>,
}

impl Topic {
    fn new(partitions: usize) -> Self {
        Self {
            partitions: (0..partitions.max(1))
                .map(|_| Partition::default())
                .collect(),
            live: RwLock::new(Vec::new()),
        }
    }
}

/// One consumer group's committed offsets: `(topic, partition)` → next
/// offset to read.
type GroupOffsets = HashMap<(String, usize), usize>;

/// Kafka-like partitioned broker with retained logs and consumer groups.
pub struct PartitionedBroker {
    partitions_per_topic: usize,
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    groups: Mutex<HashMap<String, GroupOffsets>>,
    next_sub_id: AtomicU64,
    counters: Counters,
}

impl PartitionedBroker {
    /// Broker with `partitions_per_topic` partitions per topic.
    pub fn new(partitions_per_topic: usize) -> Self {
        Self {
            partitions_per_topic: partitions_per_topic.max(1),
            topics: RwLock::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            next_sub_id: AtomicU64::new(0),
            counters: Counters::new(),
        }
    }

    /// Shared handle with a default of 4 partitions.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new(4))
    }

    fn topic(&self, name: &str) -> Arc<Topic> {
        if let Some(t) = self.topics.read().get(name) {
            return t.clone();
        }
        self.topics
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Topic::new(self.partitions_per_topic)))
            .clone()
    }

    fn partition_for(&self, topic: &Topic, key: &str) -> usize {
        // FNV-1a over the key; stable across runs for deterministic tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % topic.partitions.len() as u64) as usize
    }

    fn append(&self, topic: &Topic, msg: Delivery) {
        let p = self.partition_for(topic, msg.task_id.as_str());
        topic.partitions[p].log.lock().push(msg.clone());
        let mut delivered = 0u64;
        let mut dead = Vec::new();
        {
            let live = topic.live.read();
            for (id, tx) in live.iter() {
                if tx.send(msg.clone()).is_ok() {
                    delivered += 1;
                } else {
                    dead.push(*id);
                }
            }
        }
        self.counters.record_delivery(delivered);
        if !dead.is_empty() {
            topic.live.write().retain(|(id, _)| !dead.contains(id));
        }
    }

    /// Total retained messages on a topic.
    pub fn retained(&self, topic: &str) -> usize {
        let t = self.topic(topic);
        t.partitions.iter().map(|p| p.log.lock().len()).sum()
    }

    /// Poll up to `max` messages for a consumer group, advancing its
    /// offsets. Groups consume independently; a new group starts at the
    /// beginning of the retained log (earliest).
    pub fn poll(&self, group: &str, topic: &str, max: usize) -> Vec<Delivery> {
        let t = self.topic(topic);
        let mut groups = self.groups.lock();
        let offsets = groups.entry(group.to_string()).or_default();
        let mut out = Vec::with_capacity(max);
        for (pi, part) in t.partitions.iter().enumerate() {
            if out.len() >= max {
                break;
            }
            let key = (topic.to_string(), pi);
            let off = offsets.entry(key.clone()).or_insert(0);
            let log = part.log.lock();
            while *off < log.len() && out.len() < max {
                out.push(log[*off].clone());
                *off += 1;
            }
        }
        out
    }

    /// Committed offset sum for a group on a topic (for lag monitoring).
    pub fn committed(&self, group: &str, topic: &str) -> usize {
        let groups = self.groups.lock();
        groups
            .get(group)
            .map(|offs| {
                offs.iter()
                    .filter(|((t, _), _)| t == topic)
                    .map(|(_, &o)| o)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Consumer lag: retained minus committed.
    pub fn lag(&self, group: &str, topic: &str) -> usize {
        self.retained(topic)
            .saturating_sub(self.committed(group, topic))
    }
}

impl Broker for PartitionedBroker {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn publish(&self, topic: &str, msg: TaskMessage) -> Result<(), BrokerError> {
        validate_topic(topic)?;
        let bytes = msg.to_value().approx_size() as u64;
        self.counters.record_publish(1, bytes);
        let t = self.topic(topic);
        self.append(&t, Arc::new(msg));
        Ok(())
    }

    fn publish_batch(&self, topic: &str, msgs: Vec<TaskMessage>) -> Result<usize, BrokerError> {
        validate_topic(topic)?;
        self.counters.record_batch();
        let t = self.topic(topic);
        let n = msgs.len();
        for m in msgs {
            let bytes = m.to_value().approx_size() as u64;
            self.counters.record_publish(1, bytes);
            self.append(&t, Arc::new(m));
        }
        Ok(n)
    }

    fn subscribe(&self, topic: &str) -> Subscription {
        let t = self.topic(topic);
        let (tx, rx) = unbounded();
        let id = self.next_sub_id.fetch_add(1, Ordering::Relaxed);
        t.live.write().push((id, tx));
        Subscription::new(topic, rx)
    }

    fn stats(&self) -> BrokerStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::topics;
    use prov_model::TaskMessageBuilder;

    fn msg(id: &str) -> TaskMessage {
        TaskMessageBuilder::new(id, "wf", "act").build()
    }

    #[test]
    fn retains_messages_for_later_consumers() {
        let b = PartitionedBroker::new(4);
        for i in 0..20 {
            b.publish(topics::TASKS, msg(&format!("m{i}"))).unwrap();
        }
        assert_eq!(b.retained(topics::TASKS), 20);
        // A consumer group created after publishing still sees everything.
        let got = b.poll("keeper", topics::TASKS, 100);
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn consumer_groups_are_independent() {
        let b = PartitionedBroker::new(2);
        for i in 0..10 {
            b.publish(topics::TASKS, msg(&format!("m{i}"))).unwrap();
        }
        assert_eq!(b.poll("g1", topics::TASKS, 100).len(), 10);
        assert_eq!(b.poll("g1", topics::TASKS, 100).len(), 0); // offsets advanced
        assert_eq!(b.poll("g2", topics::TASKS, 100).len(), 10); // fresh group
    }

    #[test]
    fn poll_respects_max_and_resumes() {
        let b = PartitionedBroker::new(2);
        for i in 0..10 {
            b.publish(topics::TASKS, msg(&format!("m{i}"))).unwrap();
        }
        let first = b.poll("g", topics::TASKS, 4);
        assert_eq!(first.len(), 4);
        let rest = b.poll("g", topics::TASKS, 100);
        assert_eq!(rest.len(), 6);
        assert_eq!(b.lag("g", topics::TASKS), 0);
    }

    #[test]
    fn lag_tracks_unconsumed() {
        let b = PartitionedBroker::new(2);
        for i in 0..8 {
            b.publish(topics::TASKS, msg(&format!("m{i}"))).unwrap();
        }
        assert_eq!(b.lag("g", topics::TASKS), 8);
        b.poll("g", topics::TASKS, 3);
        assert_eq!(b.lag("g", topics::TASKS), 5);
    }

    #[test]
    fn same_key_lands_in_same_partition() {
        let b = PartitionedBroker::new(4);
        let t = b.topic(topics::TASKS);
        let p1 = b.partition_for(&t, "task-42");
        let p2 = b.partition_for(&t, "task-42");
        assert_eq!(p1, p2);
    }

    #[test]
    fn live_subscription_also_works() {
        let b = PartitionedBroker::new(2);
        let s = b.subscribe(topics::TASKS);
        b.publish(topics::TASKS, msg("live")).unwrap();
        assert_eq!(s.recv().unwrap().task_id.as_str(), "live");
    }

    #[test]
    fn batch_appends_all() {
        let b = PartitionedBroker::new(3);
        let batch: Vec<TaskMessage> = (0..50).map(|i| msg(&format!("m{i}"))).collect();
        b.publish_batch(topics::TASKS, batch).unwrap();
        assert_eq!(b.retained(topics::TASKS), 50);
        assert_eq!(b.stats().published, 50);
    }
}
