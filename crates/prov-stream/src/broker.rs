//! Broker abstraction: publish/subscribe over topics.
//!
//! The reference architecture (§2.3) is broker-agnostic: "Regardless of the
//! underlying broker, all provenance messages adhere to a common schema."
//! Components only see this trait; Redis-, Kafka- and Mofka-shaped backends
//! implement it.

use crate::metrics::BrokerStats;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use prov_model::TaskMessage;
use std::sync::Arc;
use std::time::Duration;

/// Errors raised by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The broker rejected the message (e.g. shut down).
    Closed,
    /// Topic name invalid (empty).
    InvalidTopic,
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::Closed => write!(f, "broker closed"),
            BrokerError::InvalidTopic => write!(f, "invalid topic name"),
        }
    }
}

impl std::error::Error for BrokerError {}

/// A published message as delivered to subscribers.
pub type Delivery = Arc<TaskMessage>;

/// A live subscription to one topic.
///
/// Messages published after the subscription was created are delivered in
/// publish order (per publisher). Dropping the subscription unsubscribes.
#[derive(Debug)]
pub struct Subscription {
    topic: String,
    rx: Receiver<Delivery>,
}

impl Subscription {
    /// Construct from a raw channel receiver (used by broker impls).
    pub fn new(topic: impl Into<String>, rx: Receiver<Delivery>) -> Self {
        Self {
            topic: topic.into(),
            rx,
        }
    }

    /// Topic this subscription listens on.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Blocking receive; `None` when the broker is gone.
    pub fn recv(&self) -> Option<Delivery> {
        self.rx.recv().ok()
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Delivery, TryRecvError> {
        self.rx.try_recv()
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Ok(m) = self.rx.try_recv() {
            out.push(m);
        }
        out
    }

    /// Number of queued messages.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }
}

/// The broker interface every backend implements.
pub trait Broker: Send + Sync {
    /// Backend name (for logs/benches), e.g. `"memory"`, `"partitioned"`.
    fn name(&self) -> &'static str;

    /// Publish one message to a topic.
    fn publish(&self, topic: &str, msg: TaskMessage) -> Result<(), BrokerError>;

    /// Publish a batch; returns how many were accepted. The default loops
    /// over [`publish`](Broker::publish); backends override for bulk paths.
    fn publish_batch(&self, topic: &str, msgs: Vec<TaskMessage>) -> Result<usize, BrokerError> {
        let n = msgs.len();
        for m in msgs {
            self.publish(topic, m)?;
        }
        Ok(n)
    }

    /// Subscribe to a topic.
    fn subscribe(&self, topic: &str) -> Subscription;

    /// Counters snapshot.
    fn stats(&self) -> BrokerStats;
}

/// Well-known topic names used across the stack.
pub mod topics {
    /// Raw workflow task provenance messages.
    pub const TASKS: &str = "provenance.tasks";
    /// Anomaly tags republished by the anomaly detector (§4.2).
    pub const ANOMALIES: &str = "provenance.anomalies";
    /// Agent tool executions and LLM interactions.
    pub const AGENT: &str = "provenance.agent";
}

/// Validate a topic name.
pub fn validate_topic(topic: &str) -> Result<(), BrokerError> {
    if topic.is_empty() {
        Err(BrokerError::InvalidTopic)
    } else {
        Ok(())
    }
}
