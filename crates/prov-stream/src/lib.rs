//! # prov-stream
//!
//! The streaming hub of the reference architecture (§2.3): a pub/sub
//! substrate with three broker backends mirroring the paper's deployment
//! options —
//!
//! * [`MemoryBroker`] — Redis-Pub/Sub-like: fire-and-forget fan-out,
//!   at-most-once, no retention;
//! * [`PartitionedBroker`] — Kafka-like: keyed partitions, retained logs,
//!   offset-tracking consumer groups, lag accounting;
//! * [`RdmaBroker`] — Mofka-like: fan-out plus an explicit RDMA transport
//!   cost model for the batching ablation benches.
//!
//! [`BufferedEmitter`] implements the client-side "buffer in memory, stream
//! asynchronously in bulk" capture path (§4.1), and [`FederatedHub`] routes
//! topic prefixes across multiple hubs for ECH-continuum deployments.
//! [`ChaosBroker`] wraps any backend with deterministic drop/duplicate/
//! reorder fault injection for reliability testing.

#![warn(missing_docs)]

pub mod broker;
pub mod buffer;
pub mod chaos;
pub mod hub;
pub mod memory;
pub mod metrics;
pub mod partitioned;
pub mod rdma;

pub use broker::{topics, Broker, BrokerError, Delivery, Subscription};
pub use buffer::{BufferedEmitter, FlushStrategy};
pub use chaos::{ChaosBroker, ChaosConfig, ChaosStats};
pub use hub::{FederatedHub, StreamingHub};
pub use memory::MemoryBroker;
pub use metrics::{BrokerStats, Counters};
pub use partitioned::PartitionedBroker;
pub use rdma::{RdmaBroker, TransportProfile};
