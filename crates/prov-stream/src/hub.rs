//! Streaming hub facades: a single hub over one broker, or a federated hub
//! routing topic prefixes to multiple brokers.
//!
//! §2.3: "For lightweight deployments, a single broker may suffice, while
//! large-scale ECH workflows can benefit from federated hubs composed of
//! multiple brokers tailored to specific performance and reliability needs."

use crate::broker::{topics, Broker, BrokerError, Subscription};
use crate::buffer::{BufferedEmitter, FlushStrategy};
use crate::memory::MemoryBroker;
use crate::metrics::BrokerStats;
use prov_model::TaskMessage;
use std::sync::Arc;

/// The central streaming hub every component connects to.
#[derive(Clone)]
pub struct StreamingHub {
    broker: Arc<dyn Broker>,
}

impl StreamingHub {
    /// Hub over an arbitrary broker backend.
    pub fn new(broker: Arc<dyn Broker>) -> Self {
        Self { broker }
    }

    /// Hub over a fresh in-memory (Redis-like) broker.
    pub fn in_memory() -> Self {
        Self::new(MemoryBroker::shared())
    }

    /// The underlying broker.
    pub fn broker(&self) -> &Arc<dyn Broker> {
        &self.broker
    }

    /// Publish one task provenance message to the tasks topic.
    pub fn publish_task(&self, msg: TaskMessage) -> Result<(), BrokerError> {
        self.broker.publish(topics::TASKS, msg)
    }

    /// Publish to an arbitrary topic.
    pub fn publish(&self, topic: &str, msg: TaskMessage) -> Result<(), BrokerError> {
        self.broker.publish(topic, msg)
    }

    /// Bulk publish to an arbitrary topic.
    pub fn publish_batch(&self, topic: &str, msgs: Vec<TaskMessage>) -> Result<usize, BrokerError> {
        self.broker.publish_batch(topic, msgs)
    }

    /// Subscribe to the tasks topic.
    pub fn subscribe_tasks(&self) -> Subscription {
        self.broker.subscribe(topics::TASKS)
    }

    /// Subscribe to any topic.
    pub fn subscribe(&self, topic: &str) -> Subscription {
        self.broker.subscribe(topic)
    }

    /// A buffered emitter bound to the tasks topic.
    pub fn task_emitter(&self, strategy: FlushStrategy) -> Arc<BufferedEmitter> {
        BufferedEmitter::new(self.broker.clone(), topics::TASKS, strategy)
    }

    /// Broker counters.
    pub fn stats(&self) -> BrokerStats {
        self.broker.stats()
    }
}

/// Routes topics to member hubs by longest matching prefix, with a default.
///
/// Example: anomalies to a low-latency memory broker near the agent, raw
/// task streams to a partitioned broker sized for throughput.
pub struct FederatedHub {
    routes: Vec<(String, StreamingHub)>,
    default: StreamingHub,
}

impl FederatedHub {
    /// Create with a default hub for unrouted topics.
    pub fn new(default: StreamingHub) -> Self {
        Self {
            routes: Vec::new(),
            default,
        }
    }

    /// Route all topics starting with `prefix` to `hub`.
    pub fn route(mut self, prefix: impl Into<String>, hub: StreamingHub) -> Self {
        self.routes.push((prefix.into(), hub));
        // Longest prefix first so overlapping prefixes resolve specifically.
        self.routes.sort_by_key(|r| std::cmp::Reverse(r.0.len()));
        self
    }

    /// The hub responsible for `topic`.
    pub fn hub_for(&self, topic: &str) -> &StreamingHub {
        self.routes
            .iter()
            .find(|(p, _)| topic.starts_with(p.as_str()))
            .map(|(_, h)| h)
            .unwrap_or(&self.default)
    }

    /// Publish via the routed hub.
    pub fn publish(&self, topic: &str, msg: TaskMessage) -> Result<(), BrokerError> {
        self.hub_for(topic).publish(topic, msg)
    }

    /// Subscribe via the routed hub.
    pub fn subscribe(&self, topic: &str) -> Subscription {
        self.hub_for(topic).subscribe(topic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::PartitionedBroker;
    use prov_model::TaskMessageBuilder;

    fn msg(id: &str) -> TaskMessage {
        TaskMessageBuilder::new(id, "wf", "act").build()
    }

    #[test]
    fn hub_roundtrip() {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        hub.publish_task(msg("a")).unwrap();
        assert_eq!(sub.recv().unwrap().task_id.as_str(), "a");
        assert_eq!(hub.stats().published, 1);
    }

    #[test]
    fn emitter_through_hub() {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        let e = hub.task_emitter(FlushStrategy::by_count(2));
        e.emit(msg("1")).unwrap();
        e.emit(msg("2")).unwrap();
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn federated_routing_by_prefix() {
        let tasks_hub = StreamingHub::new(PartitionedBroker::shared());
        let agent_hub = StreamingHub::in_memory();
        let fed = FederatedHub::new(tasks_hub.clone())
            .route("provenance.agent", agent_hub.clone())
            .route("provenance.anomalies", agent_hub.clone());

        let agent_sub = fed.subscribe(topics::AGENT);
        fed.publish(topics::AGENT, msg("tool-1")).unwrap();
        assert_eq!(agent_sub.recv().unwrap().task_id.as_str(), "tool-1");
        // Agent topics never touch the partitioned broker.
        assert_eq!(tasks_hub.stats().published, 0);
        assert_eq!(agent_hub.stats().published, 1);

        let task_sub = fed.subscribe(topics::TASKS);
        fed.publish(topics::TASKS, msg("t-1")).unwrap();
        assert_eq!(task_sub.recv().unwrap().task_id.as_str(), "t-1");
        assert_eq!(tasks_hub.stats().published, 1);
    }

    #[test]
    fn longest_prefix_wins() {
        let a = StreamingHub::in_memory();
        let b = StreamingHub::in_memory();
        let fed = FederatedHub::new(StreamingHub::in_memory())
            .route("provenance", a.clone())
            .route("provenance.agent", b.clone());
        fed.publish("provenance.agent.x", msg("m")).unwrap();
        assert_eq!(b.stats().published, 1);
        assert_eq!(a.stats().published, 0);
    }
}
