//! # prov-capture
//!
//! Provenance capture for the two complementary mechanisms of §2.3:
//!
//! * **direct code instrumentation** — [`CaptureContext::instrument`] wraps
//!   task closures (the Rust analogue of Flowcept's Python decorators),
//!   recording `used`/`generated`, timestamps, telemetry and lineage, and
//!   emitting asynchronously through a buffered bulk emitter (§4.1);
//! * **non-intrusive observability adapters** — [`FileSystemAdapter`],
//!   [`MlflowLikeAdapter`] and [`QueueBridgeAdapter`] normalize foreign
//!   dataflow into the common message schema without touching user code.

#![warn(missing_docs)]

pub mod adapters;
pub mod instrument;

pub use adapters::{
    parse_jsonl, pump, AdapterHost, DaskLikeAdapter, FileSystemAdapter, MlflowLikeAdapter,
    ObservabilityAdapter, QueueBridgeAdapter, TensorboardLikeAdapter,
};
pub use instrument::{CaptureContext, CapturedTask};
