//! Non-intrusive observability adapters (§2.3): passively monitor dataflow
//! from services "such as RabbitMQ, SQLite, MLflow, and file systems
//! without modifying application code", normalizing what they see into task
//! provenance messages.

use prov_model::{json, TaskMessage, TaskMessageBuilder, Value};
use prov_stream::{topics, StreamingHub, Subscription};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// An adapter converts foreign observations into task messages.
pub trait ObservabilityAdapter: Send {
    /// Adapter name for logs.
    fn name(&self) -> &'static str;

    /// Poll the observed source once, returning newly observed messages.
    fn poll(&mut self) -> Vec<TaskMessage>;
}

/// Pump an adapter into the hub: polls once and publishes everything
/// observed. Returns how many messages were published.
pub fn pump(adapter: &mut dyn ObservabilityAdapter, hub: &StreamingHub) -> usize {
    let msgs = adapter.poll();
    let n = msgs.len();
    if n > 0 {
        let _ = hub.publish_batch(topics::TASKS, msgs);
    }
    n
}

/// Watches a directory for `*.json` files containing task messages
/// (the "file system" adapter). Files already seen are skipped by name.
pub struct FileSystemAdapter {
    dir: PathBuf,
    seen: Vec<PathBuf>,
}

impl FileSystemAdapter {
    /// Watch `dir` (created lazily by the producer; missing dir = empty poll).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            seen: Vec::new(),
        }
    }

    /// The watched directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl ObservabilityAdapter for FileSystemAdapter {
    fn name(&self) -> &'static str {
        "filesystem"
    }

    fn poll(&mut self) -> Vec<TaskMessage> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .filter(|p| !self.seen.contains(p))
            .collect();
        paths.sort();
        let mut out = Vec::new();
        for p in paths {
            if let Ok(text) = std::fs::read_to_string(&p) {
                if let Some(msg) = TaskMessage::from_json(&text) {
                    out.push(msg);
                }
            }
            self.seen.push(p);
        }
        out
    }
}

/// Observes an MLflow-like experiment-tracking record stream: each record
/// is a JSON object with `run_id`, `params`, `metrics`; the adapter maps
/// params→`used` and metrics→`generated`.
pub struct MlflowLikeAdapter {
    records: Vec<Value>,
    cursor: usize,
    experiment: String,
}

impl MlflowLikeAdapter {
    /// Adapter over an in-memory record feed (a real deployment would poll
    /// the tracking server's REST API).
    pub fn new(experiment: impl Into<String>, records: Vec<Value>) -> Self {
        Self {
            records,
            cursor: 0,
            experiment: experiment.into(),
        }
    }

    /// Append new records to the feed.
    pub fn push_record(&mut self, record: Value) {
        self.records.push(record);
    }
}

impl ObservabilityAdapter for MlflowLikeAdapter {
    fn name(&self) -> &'static str {
        "mlflow"
    }

    fn poll(&mut self) -> Vec<TaskMessage> {
        let mut out = Vec::new();
        while self.cursor < self.records.len() {
            let r = &self.records[self.cursor];
            self.cursor += 1;
            let Some(run_id) = r.get("run_id").and_then(Value::as_str) else {
                continue;
            };
            let mut b = TaskMessageBuilder::new(
                format!("mlflow-{run_id}"),
                self.experiment.clone(),
                "mlflow_run",
            );
            if let Some(params) = r.get("params") {
                b = b.used(params.clone());
            }
            if let Some(metrics) = r.get("metrics") {
                b = b.generated(metrics.clone());
            }
            let started = r.get("start_time").and_then(Value::as_f64).unwrap_or(0.0);
            let ended = r.get("end_time").and_then(Value::as_f64).unwrap_or(started);
            out.push(b.span(started, ended).build());
        }
        out
    }
}

/// Bridges a foreign broker topic into the provenance tasks topic (the
/// "RabbitMQ/Redis queue" adapter): subscribes upstream and re-publishes.
pub struct QueueBridgeAdapter {
    upstream: Subscription,
    forwarded: AtomicU64,
}

impl QueueBridgeAdapter {
    /// Bridge from an existing subscription.
    pub fn new(upstream: Subscription) -> Self {
        Self {
            upstream,
            forwarded: AtomicU64::new(0),
        }
    }

    /// Messages forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }
}

impl ObservabilityAdapter for QueueBridgeAdapter {
    fn name(&self) -> &'static str {
        "queue-bridge"
    }

    fn poll(&mut self) -> Vec<TaskMessage> {
        let msgs: Vec<TaskMessage> = self
            .upstream
            .drain()
            .into_iter()
            .map(|arc| (*arc).clone())
            .collect();
        self.forwarded
            .fetch_add(msgs.len() as u64, Ordering::Relaxed);
        msgs
    }
}

/// Observes a TensorBoard-like scalar event stream: `(step, tag, value,
/// wall_time)` records, as a training loop's `add_scalar` calls would
/// produce. Events are grouped by step; each completed step becomes one
/// task message with every tag of that step in `generated`.
pub struct TensorboardLikeAdapter {
    run: String,
    events: Vec<(i64, String, f64, f64)>,
    cursor: usize,
}

impl TensorboardLikeAdapter {
    /// Adapter over an in-memory event feed (a real deployment would tail
    /// the event file).
    pub fn new(run: impl Into<String>) -> Self {
        Self {
            run: run.into(),
            events: Vec::new(),
            cursor: 0,
        }
    }

    /// Record one scalar event.
    pub fn add_scalar(&mut self, step: i64, tag: impl Into<String>, value: f64, wall_time: f64) {
        self.events.push((step, tag.into(), value, wall_time));
    }
}

impl ObservabilityAdapter for TensorboardLikeAdapter {
    fn name(&self) -> &'static str {
        "tensorboard"
    }

    fn poll(&mut self) -> Vec<TaskMessage> {
        // A step is complete once an event for a *later* step exists; the
        // trailing step stays buffered until then.
        type StepEvents = Vec<(String, f64, f64)>;
        let mut by_step: Vec<(i64, StepEvents)> = Vec::new();
        for (step, tag, value, t) in &self.events[self.cursor..] {
            match by_step.iter_mut().find(|(s, _)| s == step) {
                Some((_, v)) => v.push((tag.clone(), *value, *t)),
                None => by_step.push((*step, vec![(tag.clone(), *value, *t)])),
            }
        }
        by_step.sort_by_key(|(s, _)| *s);
        let Some(&(last_step, _)) = by_step.last() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut consumed = 0;
        for (step, tags) in by_step {
            if step == last_step {
                break; // possibly still accumulating
            }
            consumed += tags.len();
            let mut generated = prov_model::Map::new();
            let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
            for (tag, value, t) in &tags {
                generated.insert(
                    prov_model::Sym::from(tag.replace('/', ".")),
                    Value::Float(*value),
                );
                t_min = t_min.min(*t);
                t_max = t_max.max(*t);
            }
            out.push(
                TaskMessageBuilder::new(
                    format!("tb-{}-step-{step}", self.run),
                    self.run.clone(),
                    "training_step",
                )
                .uses("step", step)
                .generated(Value::object(generated))
                .span(t_min, t_max)
                .build(),
            );
        }
        self.cursor += consumed;
        out
    }
}

/// Observes a Dask-like scheduler transition log: `(key, state, time)`
/// events. A task message is emitted when a key reaches a terminal state
/// (`memory` = finished, `erred` = error), spanning `processing → done`.
pub struct DaskLikeAdapter {
    scheduler_id: String,
    transitions: Vec<(String, String, f64)>,
    emitted: Vec<String>,
}

impl DaskLikeAdapter {
    /// Adapter over an in-memory transition feed.
    pub fn new(scheduler_id: impl Into<String>) -> Self {
        Self {
            scheduler_id: scheduler_id.into(),
            transitions: Vec::new(),
            emitted: Vec::new(),
        }
    }

    /// Record one scheduler transition.
    pub fn transition(&mut self, key: impl Into<String>, state: impl Into<String>, time: f64) {
        self.transitions.push((key.into(), state.into(), time));
    }
}

impl ObservabilityAdapter for DaskLikeAdapter {
    fn name(&self) -> &'static str {
        "dask"
    }

    fn poll(&mut self) -> Vec<TaskMessage> {
        let mut out = Vec::new();
        let keys: Vec<String> = self
            .transitions
            .iter()
            .map(|(k, _, _)| k.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for key in keys {
            if self.emitted.contains(&key) {
                continue;
            }
            let of_key: Vec<&(String, String, f64)> = self
                .transitions
                .iter()
                .filter(|(k, _, _)| *k == key)
                .collect();
            let Some(terminal) = of_key
                .iter()
                .find(|(_, s, _)| s == "memory" || s == "erred")
            else {
                continue; // still running
            };
            let started = of_key
                .iter()
                .find(|(_, s, _)| s == "processing")
                .map(|(_, _, t)| *t)
                .unwrap_or(terminal.2);
            let status = if terminal.1 == "erred" {
                prov_model::TaskStatus::Error
            } else {
                prov_model::TaskStatus::Finished
            };
            // Dask keys look like "name-hash"; the name is the activity.
            let activity = key.rsplit_once('-').map(|(n, _)| n).unwrap_or(&key);
            out.push(
                TaskMessageBuilder::new(format!("dask-{key}"), self.scheduler_id.clone(), activity)
                    .uses("dask_key", key.as_str())
                    .span(started, terminal.2)
                    .status(status)
                    .build(),
            );
            self.emitted.push(key);
        }
        out
    }
}

/// Runs a set of adapters on a background polling thread, pumping
/// everything they observe into the hub — the deployment shape of Fig 2's
/// observability-adapter column.
pub struct AdapterHost {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    published: std::sync::Arc<AtomicU64>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl AdapterHost {
    /// Start polling `adapters` every `interval`, publishing into `hub`.
    pub fn start(
        adapters: Vec<Box<dyn ObservabilityAdapter>>,
        hub: &StreamingHub,
        interval: std::time::Duration,
    ) -> Self {
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let published = std::sync::Arc::new(AtomicU64::new(0));
        let hub = hub.clone();
        let stop2 = stop.clone();
        let published2 = published.clone();
        let worker = std::thread::Builder::new()
            .name("adapter-host".into())
            .spawn(move || {
                let mut adapters = adapters;
                loop {
                    for a in adapters.iter_mut() {
                        let n = pump(a.as_mut(), &hub);
                        published2.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn adapter host");
        Self {
            stop,
            published,
            worker: Some(worker),
        }
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Stop and join (a final poll runs before exit).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for AdapterHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Parse a JSON lines string (e.g. from a SQLite export or log file) into
/// messages, skipping malformed lines. Used by tests and the file adapter.
pub fn parse_jsonl(text: &str) -> Vec<TaskMessage> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| json::from_str(l).ok())
        .filter_map(|v| TaskMessage::from_value(&v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::obj;

    fn msg(id: &str) -> TaskMessage {
        TaskMessageBuilder::new(id, "wf", "act").build()
    }

    #[test]
    fn filesystem_adapter_picks_up_new_files() {
        let dir = std::env::temp_dir().join(format!("prov-fs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut adapter = FileSystemAdapter::new(&dir);
        assert!(adapter.poll().is_empty());

        std::fs::write(dir.join("a.json"), msg("fa").to_json()).unwrap();
        std::fs::write(dir.join("b.json"), msg("fb").to_json()).unwrap();
        std::fs::write(dir.join("junk.txt"), "not json").unwrap();
        let got = adapter.poll();
        assert_eq!(got.len(), 2);
        // Already-seen files are not re-emitted.
        assert!(adapter.poll().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mlflow_adapter_maps_params_and_metrics() {
        let mut adapter = MlflowLikeAdapter::new(
            "exp-1",
            vec![obj! {
                "run_id" => "r1",
                "params" => obj! {"lr" => 0.001, "epochs" => 10},
                "metrics" => obj! {"loss" => 0.12, "accuracy" => 0.97},
                "start_time" => 100.0,
                "end_time" => 160.0,
            }],
        );
        let got = adapter.poll();
        assert_eq!(got.len(), 1);
        let m = &got[0];
        assert_eq!(m.activity_id.as_str(), "mlflow_run");
        assert_eq!(m.used.get("lr").and_then(Value::as_f64), Some(0.001));
        assert_eq!(
            m.generated.get("accuracy").and_then(Value::as_f64),
            Some(0.97)
        );
        assert_eq!(m.duration(), 60.0);
        // Incremental: new record appears on next poll.
        adapter.push_record(obj! {"run_id" => "r2"});
        assert_eq!(adapter.poll().len(), 1);
    }

    #[test]
    fn queue_bridge_forwards() {
        let foreign = StreamingHub::in_memory();
        let tasks_hub = StreamingHub::in_memory();
        let sub_out = tasks_hub.subscribe_tasks();
        let mut bridge = QueueBridgeAdapter::new(foreign.subscribe("app.events"));
        foreign.publish("app.events", msg("e1")).unwrap();
        foreign.publish("app.events", msg("e2")).unwrap();
        let n = pump(&mut bridge, &tasks_hub);
        assert_eq!(n, 2);
        assert_eq!(bridge.forwarded(), 2);
        assert_eq!(sub_out.drain().len(), 2);
    }

    #[test]
    fn jsonl_parsing_skips_garbage() {
        let text = format!(
            "{}\nnot json\n\n{}\n",
            msg("a").to_json(),
            msg("b").to_json()
        );
        let got = parse_jsonl(&text);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn tensorboard_adapter_groups_scalars_by_step() {
        let mut tb = TensorboardLikeAdapter::new("train-run-1");
        tb.add_scalar(0, "loss/train", 1.2, 100.0);
        tb.add_scalar(0, "accuracy", 0.4, 100.1);
        tb.add_scalar(1, "loss/train", 0.9, 101.0);
        // Step 0 is complete (step 1 exists); step 1 stays buffered.
        let got = tb.poll();
        assert_eq!(got.len(), 1);
        let m = &got[0];
        assert_eq!(m.activity_id.as_str(), "training_step");
        assert_eq!(m.used.get("step").and_then(Value::as_i64), Some(0));
        assert_eq!(
            m.generated.get("loss.train").and_then(Value::as_f64),
            Some(1.2)
        );
        assert_eq!(
            m.generated.get("accuracy").and_then(Value::as_f64),
            Some(0.4)
        );
        // Nothing new until a later step arrives.
        assert!(tb.poll().is_empty());
        tb.add_scalar(2, "loss/train", 0.7, 102.0);
        let got = tb.poll();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].used.get("step").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn dask_adapter_emits_on_terminal_states() {
        let mut dask = DaskLikeAdapter::new("scheduler-1");
        dask.transition("sum_parts-abc123", "processing", 10.0);
        dask.transition("load_csv-def456", "processing", 10.5);
        assert!(dask.poll().is_empty(), "no terminal state yet");
        dask.transition("sum_parts-abc123", "memory", 12.0);
        dask.transition("load_csv-def456", "erred", 13.0);
        let got = dask.poll();
        assert_eq!(got.len(), 2);
        let ok = got
            .iter()
            .find(|m| m.task_id.as_str() == "dask-sum_parts-abc123")
            .unwrap();
        assert_eq!(ok.activity_id.as_str(), "sum_parts");
        assert_eq!(ok.status, prov_model::TaskStatus::Finished);
        assert_eq!(ok.duration(), 2.0);
        let bad = got
            .iter()
            .find(|m| m.task_id.as_str() == "dask-load_csv-def456")
            .unwrap();
        assert_eq!(bad.status, prov_model::TaskStatus::Error);
        // Terminal tasks emit exactly once.
        assert!(dask.poll().is_empty());
    }

    #[test]
    fn adapter_host_pumps_on_a_schedule() {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        let mut tb = TensorboardLikeAdapter::new("run");
        for step in 0..5 {
            tb.add_scalar(step, "loss", 1.0 / (step + 1) as f64, step as f64);
        }
        let mut dask = DaskLikeAdapter::new("sched");
        dask.transition("work-1", "processing", 0.0);
        dask.transition("work-1", "memory", 1.0);
        let host = AdapterHost::start(
            vec![Box::new(tb), Box::new(dask)],
            &hub,
            std::time::Duration::from_millis(5),
        );
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while host.published() < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        host.stop();
        // 4 completed training steps + 1 dask task.
        assert_eq!(sub.drain().len(), 5);
    }
}
