//! Direct code instrumentation — the Rust analogue of Flowcept's Python
//! decorators (§2.3): "lightweight hooks ... to capture fine-grained
//! task-level metadata from functions".
//!
//! A [`CaptureContext`] carries the campaign/workflow identity, clock,
//! telemetry synthesizer and buffered emitter; [`CaptureContext::instrument`]
//! wraps a closure, captures its inputs/outputs as `used`/`generated`,
//! timestamps and telemetry, and emits the task message asynchronously.

use prov_model::{
    ActivityId, CampaignId, IdGenerator, SharedClock, TaskId, TaskMessage, TaskMessageBuilder,
    TaskStatus, TelemetrySynth, Value, WorkflowId,
};
use prov_stream::{BufferedEmitter, FlushStrategy, StreamingHub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared capture context for one workflow execution.
pub struct CaptureContext {
    /// Campaign identity.
    pub campaign_id: CampaignId,
    /// Workflow execution identity.
    pub workflow_id: WorkflowId,
    /// Simulated executing host (round-robin across a node list).
    hosts: Vec<String>,
    clock: SharedClock,
    synth: TelemetrySynth,
    ids: IdGenerator,
    emitter: Arc<BufferedEmitter>,
    ordinal: AtomicU64,
}

/// The result of one instrumented execution.
#[derive(Debug, Clone)]
pub struct CapturedTask {
    /// Task id assigned to this execution.
    pub task_id: TaskId,
    /// The emitted provenance message.
    pub message: TaskMessage,
}

impl CaptureContext {
    /// Create a context bound to a hub, with a deterministic id/telemetry
    /// stream derived from `seed`.
    pub fn new(
        hub: &StreamingHub,
        campaign_id: impl Into<CampaignId>,
        workflow_id: impl Into<WorkflowId>,
        clock: SharedClock,
        seed: u64,
    ) -> Self {
        Self {
            campaign_id: campaign_id.into(),
            workflow_id: workflow_id.into(),
            hosts: (0..4)
                .map(|i| format!("frontier{:05}.frontier.olcf.ornl.gov", 80 + i))
                .collect(),
            clock,
            synth: TelemetrySynth::frontier(seed),
            ids: IdGenerator::new(seed),
            emitter: hub.task_emitter(FlushStrategy::bulk()),
            ordinal: AtomicU64::new(0),
        }
    }

    /// Override the simulated host list.
    pub fn with_hosts(mut self, hosts: Vec<String>) -> Self {
        if !hosts.is_empty() {
            self.hosts = hosts;
        }
        self
    }

    /// Use a custom flush strategy (e.g. [`FlushStrategy::immediate`] for
    /// the capture-overhead ablation bench).
    pub fn with_flush_strategy(mut self, hub: &StreamingHub, strategy: FlushStrategy) -> Self {
        self.emitter = hub.task_emitter(strategy);
        self
    }

    /// Run `f` as an instrumented task.
    ///
    /// * `activity` — the workflow step name;
    /// * `used` — application inputs recorded under `used`;
    /// * `intensity` — telemetry load hint in `[0,1]`;
    /// * `depends_on` — upstream task ids (dataflow lineage);
    /// * `f` — the task body, returning the `generated` object.
    ///
    /// Returns the captured message (already queued for emission) and the
    /// closure's output value.
    pub fn instrument<F>(
        &self,
        activity: impl Into<ActivityId>,
        used: Value,
        intensity: f64,
        depends_on: &[TaskId],
        f: F,
    ) -> CapturedTask
    where
        F: FnOnce(&Value) -> Result<Value, String>,
    {
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed);
        let started_at = self.clock.now();
        let tel_start = self.synth.snapshot(ordinal, 0, intensity);
        let result = f(&used);
        let ended_at = self.clock.now();
        let tel_end = self.synth.snapshot(ordinal, 1, intensity);
        let activity = activity.into();
        let task_id = self.ids.task(started_at, 0, ordinal as u32);
        let host = &self.hosts[(ordinal as usize) % self.hosts.len()];

        let (generated, status) = match result {
            Ok(v) => (v, TaskStatus::Finished),
            Err(e) => {
                let mut v = Value::Null;
                v.insert("error", e);
                (v, TaskStatus::Error)
            }
        };

        let mut builder =
            TaskMessageBuilder::new(task_id.clone(), self.workflow_id.clone(), activity)
                .campaign(self.campaign_id.clone())
                .used(used)
                .generated(generated)
                .span(started_at, ended_at)
                .host(host.clone())
                .telemetry(tel_start, tel_end)
                .status(status);
        for dep in depends_on {
            builder = builder.depends_on(dep.clone());
        }
        let message = builder.build();
        // Fire-and-forget: capture must not fail the workflow (§4.1).
        let _ = self.emitter.emit(message.clone());
        CapturedTask { task_id, message }
    }

    /// Flush buffered messages now (e.g. at workflow end).
    pub fn flush(&self) {
        let _ = self.emitter.flush();
    }

    /// Number of tasks instrumented so far.
    pub fn task_count(&self) -> u64 {
        self.ordinal.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{obj, sim_clock};
    use std::time::Duration;

    fn context(hub: &StreamingHub) -> CaptureContext {
        CaptureContext::new(hub, "camp-1", "wf-1", sim_clock(), 42)
    }

    #[test]
    fn instrument_captures_io_and_telemetry() {
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        let ctx = context(&hub);
        let t = ctx.instrument(
            "square_and_divide",
            obj! {"x" => 4.0, "divisor" => 2.0},
            0.3,
            &[],
            |used| {
                let x = used.get("x").unwrap().as_f64().unwrap();
                let d = used.get("divisor").unwrap().as_f64().unwrap();
                Ok(obj! {"result" => x * x / d})
            },
        );
        ctx.flush();
        let got = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.task_id, t.task_id);
        assert_eq!(
            got.generated.get("result").and_then(Value::as_f64),
            Some(8.0)
        );
        assert!(got.telemetry_at_start.is_some());
        assert!(got.ended_at > got.started_at);
        assert!(got.hostname.contains("frontier"));
    }

    #[test]
    fn errors_become_error_status() {
        let hub = StreamingHub::in_memory();
        let ctx = context(&hub);
        let t = ctx.instrument("bad_step", obj! {"x" => 1}, 0.1, &[], |_| {
            Err("division by zero".to_string())
        });
        assert_eq!(t.message.status, TaskStatus::Error);
        assert_eq!(
            t.message.generated.get("error").and_then(Value::as_str),
            Some("division by zero")
        );
    }

    #[test]
    fn dependencies_recorded() {
        let hub = StreamingHub::in_memory();
        let ctx = context(&hub);
        let a = ctx.instrument("a", obj! {}, 0.1, &[], |_| Ok(obj! {"v" => 1}));
        let b = ctx.instrument("b", obj! {}, 0.1, std::slice::from_ref(&a.task_id), |_| {
            Ok(obj! {"v" => 2})
        });
        assert_eq!(b.message.depends_on, vec![a.task_id]);
    }

    #[test]
    fn deterministic_given_seed() {
        let hub1 = StreamingHub::in_memory();
        let hub2 = StreamingHub::in_memory();
        let c1 = context(&hub1);
        let c2 = context(&hub2);
        let t1 = c1.instrument("a", obj! {"x" => 1}, 0.5, &[], |_| Ok(obj! {}));
        let t2 = c2.instrument("a", obj! {"x" => 1}, 0.5, &[], |_| Ok(obj! {}));
        assert_eq!(t1.message.task_id, t2.message.task_id);
        assert_eq!(t1.message.telemetry_at_end, t2.message.telemetry_at_end);
    }

    #[test]
    fn hosts_round_robin() {
        let hub = StreamingHub::in_memory();
        let ctx = context(&hub).with_hosts(vec!["h0".into(), "h1".into()]);
        let a = ctx.instrument("a", obj! {}, 0.1, &[], |_| Ok(obj! {}));
        let b = ctx.instrument("b", obj! {}, 0.1, &[], |_| Ok(obj! {}));
        let c = ctx.instrument("c", obj! {}, 0.1, &[], |_| Ok(obj! {}));
        assert_eq!(a.message.hostname, "h0");
        assert_eq!(b.message.hostname, "h1");
        assert_eq!(c.message.hostname, "h0");
    }
}
