//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the two pieces this workspace uses — MPMC channels
//! (`crossbeam::channel`) and scoped threads (`crossbeam::thread::scope`) —
//! over `std::sync` primitives, because the build environment cannot reach
//! crates.io. Semantics match crossbeam where the workspace relies on them:
//! cloneable receivers (work-queue fan-out), disconnect detection on both
//! ends, and scoped spawns whose closures receive a scope argument.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half of an unbounded MPMC channel (cloneable: receivers
    /// compete for messages, work-queue style).
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}
    impl std::error::Error for TryRecvError {}

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

pub mod thread {
    //! Scoped threads in the crossbeam 0.8 shape, over `std::thread::scope`.

    /// Placeholder passed to spawned closures in place of crossbeam's nested
    /// scope handle (every call site in this workspace ignores it).
    pub struct ScopeRef(());

    /// A thread scope; spawned threads may borrow from the enclosing stack
    /// frame and are joined when the scope ends.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure's argument mirrors
        /// crossbeam's nested-scope parameter.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&ScopeRef) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&ScopeRef(()))),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Unlike crossbeam, a panicking child propagates the
    /// panic (via `std::thread::scope`) instead of surfacing as `Err` — all
    /// call sites in this workspace `expect()` the result anyway.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn mpmc_fanout_work_queue() {
        let (tx, rx) = unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let (a, b) = std::thread::scope(|s| {
            let h1 = s.spawn(|| std::iter::from_fn(|| rx.recv().ok()).count());
            let h2 = s.spawn(|| std::iter::from_fn(|| rx2.recv().ok()).count());
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert_eq!(a + b, 100);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_after_receivers_gone_fails() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scoped_threads_borrow_stack() {
        let data = [1u64, 2, 3, 4];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u64>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
