//! The [`Strategy`] trait and the combinators the workspace's properties
//! use: ranges, `Just`, `any`, tuples, `prop_map`, `prop_recursive`,
//! unions (`prop_oneof!`), and boxed strategies.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A generator of values for property tests (no shrinking in this shim).
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: up to `depth` nested applications of
    /// `branch` around `self` as the leaf strategy. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let leaf: BoxedStrategy<Self::Value> = boxed(self);
        let branch = Arc::new(move |s: BoxedStrategy<Self::Value>| boxed(branch(s)));
        Recursive {
            leaf,
            branch,
            depth,
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Erase a strategy's concrete type.
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    BoxedStrategy(Arc::new(s))
}

/// `prop_recursive` combinator: each generation picks a nesting depth in
/// `0..=depth`, wraps the leaf that many times, and samples the result.
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    branch: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            branch: self.branch.clone(),
            depth: self.depth,
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.usize_in(0..(self.depth as usize + 1));
        let mut s = self.leaf.clone();
        for _ in 0..levels {
            s = (self.branch)(s);
        }
        s.generate(rng)
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from type-erased options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Values with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String-class strategies: a `&str` literal is parsed as a regex-lite
/// pattern (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($option)),+])
    };
}
