//! Config, RNG, and error types for the `proptest!` macro machinery.

use std::fmt;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (`prop_assert!` family).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic 64-bit RNG (SplitMix64). Each property gets a stream
/// seeded from its own name, so runs are reproducible without a seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (typically the property name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label gives a well-spread starting state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform usize in `range` (empty ranges yield the start).
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Expands to the property functions. Mirrors `proptest::proptest!`
/// closely enough for blocks of `fn name(arg in strategy, ...) { body }`
/// items with optional `#![proptest_config(...)]` headers.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                $(let $arg = $strat;)+ // bind strategies once, outside the loop
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    // Render inputs before the body takes ownership, so a
                    // failing case can still be reported (no shrinking).
                    let __inputs = format!("{:?}", ($(&$arg,)+));
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __outcome {
                        panic!(
                            "property `{}` failed at case {}:\n{}\n(inputs: {})",
                            stringify!($name),
                            __case,
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    }};
}
