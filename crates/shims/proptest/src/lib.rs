//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_recursive`, numeric-range,
//! boolean, tuple, `Just`, regex-lite string, collection (`vec`,
//! `btree_map`) and `prop_oneof!` union strategies, plus the `proptest!`,
//! `prop_assert!` and `prop_assert_eq!` macros. Failing cases are reported
//! with their generated inputs but are **not shrunk** — good enough for the
//! deterministic invariants this repo checks.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod num {
    //! Numeric strategy constants.
    pub mod f64 {
        /// Strategy producing finite, normal (non-zero, non-subnormal)
        /// doubles of moderate magnitude. Mirrors `proptest::num::f64::NORMAL`
        /// closely enough for round-trip and boundedness properties; the
        /// exponent range is capped so sums of ~64 samples cannot overflow.
        pub const NORMAL: NormalF64 = NormalF64;

        /// See [`NORMAL`].
        #[derive(Clone, Copy, Debug)]
        pub struct NormalF64;

        impl crate::strategy::Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut crate::test_runner::TestRng) -> f64 {
                // sign * mantissa * 10^exp, exp in [-30, 30]
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                let exp = (rng.next_u64() % 61) as i32 - 30;
                let v = sign * (mantissa + 0.1) * 10f64.powi(exp);
                if v.is_normal() {
                    v
                } else {
                    sign * 0.5 // fall back to a plain normal value
                }
            }
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_map`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with a size drawn from
    /// `size` (duplicate keys collapse, as in real proptest).
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `proptest::collection::btree_map`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// `proptest::prelude` — the glob import the tests use.
pub mod prelude {
    pub use crate::strategy::{any, boxed, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// `prop::…` paths (`prop::collection`, `prop::num`) as used under the
/// prelude glob.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let u = (1usize..4).generate(&mut rng);
            assert!((1..4).contains(&u));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn regex_lite_strings_match_class() {
        let mut rng = crate::test_runner::TestRng::deterministic("strings");
        for _ in 0..500 {
            let s = "[a-z_][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first == '_' || first.is_ascii_lowercase());
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_machinery_works(xs in crate::collection::vec(0i64..10, 0..8), flag in any::<bool>()) {
            prop_assert!(xs.len() < 8);
            let _ = flag;
            // Iterator plumbing of the generated Vec stays consistent.
            prop_assert_eq!(xs.iter().copied().count(), xs.len());
        }
    }
}
