//! Regex-lite string generation.
//!
//! Real proptest interprets `&str` strategies as full regexes. The
//! workspace's patterns all have the shape
//! `[class]{n,m} [class] literal …` — sequences of character classes with
//! optional `{n}` / `{n,m}` counts, plus literal characters — so that is
//! what this parser supports. Unsupported syntax panics loudly rather than
//! generating non-matching strings.

use crate::test_runner::TestRng;

enum Piece {
    /// One char drawn uniformly from the class, repeated `min..=max` times.
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
    /// A literal char (repetition folded in for `x{3}`-style patterns).
    Literal { ch: char, min: usize, max: usize },
}

/// Generate a string matching the regex-lite `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        match piece {
            Piece::Class { chars, min, max } => {
                let n = rng.usize_in(*min..(*max + 1));
                for _ in 0..n {
                    out.push(chars[rng.usize_in(0..chars.len())]);
                }
            }
            Piece::Literal { ch, min, max } => {
                let n = rng.usize_in(*min..(*max + 1));
                for _ in 0..n {
                    out.push(*ch);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                let (min, max, next) = parse_count(&chars, i, pattern);
                i = next;
                pieces.push(Piece::Class {
                    chars: class,
                    min,
                    max,
                });
            }
            '\\' => {
                let ch = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| unsupported(pattern, "trailing backslash"));
                i += 2;
                let (min, max, next) = parse_count(&chars, i, pattern);
                i = next;
                pieces.push(Piece::Literal { ch, min, max });
            }
            c if "(){}*+?|^$.".contains(c) => {
                unsupported(pattern, "only [class]{n,m} sequences and literals")
            }
            c => {
                i += 1;
                let (min, max, next) = parse_count(&chars, i, pattern);
                i = next;
                pieces.push(Piece::Literal { ch: c, min, max });
            }
        }
    }
    pieces
}

/// Parse the inside of `[...]` starting at `start`; returns the expanded
/// character set and the index after the closing `]`.
fn parse_class(chars: &[char], start: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    let mut i = start;
    while i < chars.len() && chars[i] != ']' {
        let c = chars[i];
        if c == '\\' {
            set.push(
                *chars
                    .get(i + 1)
                    .unwrap_or_else(|| unsupported(pattern, "trailing backslash in class")),
            );
            i += 2;
            continue;
        }
        // `a-z` range (a `-` immediately before `]` is a literal dash).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (c as u32, chars[i + 2] as u32);
            if lo > hi {
                unsupported(pattern, "inverted class range");
            }
            for cp in lo..=hi {
                if let Some(ch) = char::from_u32(cp) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    if i >= chars.len() {
        unsupported(pattern, "unterminated character class");
    }
    if set.is_empty() {
        unsupported(pattern, "empty character class");
    }
    (set, i + 1) // skip ']'
}

/// Parse an optional `{n}` / `{n,m}` count at `i`; defaults to `{1}`.
fn parse_count(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    if chars.get(i) != Some(&'{') {
        return (1, 1, i);
    }
    let close = (i + 1..chars.len())
        .find(|&j| chars[j] == '}')
        .unwrap_or_else(|| unsupported(pattern, "unterminated count"));
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((a, b)) => (
            a.trim()
                .parse()
                .unwrap_or_else(|_| unsupported(pattern, "bad count")),
            b.trim()
                .parse()
                .unwrap_or_else(|_| unsupported(pattern, "bad count")),
        ),
        None => {
            let n = body
                .trim()
                .parse()
                .unwrap_or_else(|_| unsupported(pattern, "bad count"));
            (n, n)
        }
    };
    (min, max, close + 1)
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!("proptest shim: unsupported regex `{pattern}` ({what})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn classes_ranges_and_counts() {
        let mut rng = TestRng::deterministic("string-shim");
        for _ in 0..500 {
            let s = generate_matching("[a-zA-Z0-9 _.:/-]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.:/-".contains(c)));
        }
        let s = generate_matching("[a-z]{4}", &mut rng);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn literal_dash_at_class_end() {
        let mut rng = TestRng::deterministic("dash");
        for _ in 0..200 {
            let s = generate_matching("[A-Za-z0-9_-]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_-".contains(c)));
        }
    }
}
