//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this API-compatible subset implemented over `std::sync`. The visible
//! difference from real `parking_lot` is performance only; the semantic
//! difference is that poisoning is swallowed (`parking_lot` has no poisoning,
//! so a panicked writer does not wedge every later reader here either).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock (API subset of `parking_lot::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
