//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros, and `Bencher::iter` —
//! with a plain wall-clock measurement loop instead of criterion's
//! statistical machinery. Reports mean/min per benchmark to stdout.
//! Passing `--test` (as `cargo test --benches` does) runs each benchmark
//! body exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // First free arg that isn't a flag is a substring filter, mirroring
        // `cargo bench -- <filter>`.
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty())
            .cloned();
        Self { test_mode, filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Identifier for a parameterized benchmark (`BenchmarkId::new("f", n)`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (each sample is ≥ 1 iteration).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut body: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        body(&mut bencher);
        if bencher.test_mode {
            println!("test-mode {full}: ok");
        } else if let Some(stats) = bencher.stats() {
            println!(
                "bench {full:<55} mean {:>12}  min {:>12}  ({} samples)",
                format_duration(stats.mean),
                format_duration(stats.min),
                stats.samples
            );
        }
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

struct Stats {
    mean: Duration,
    min: Duration,
    samples: usize,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up + calibration: time one run to size the sample loop.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let budget = self.measurement_time;
        let per_sample = (budget.as_nanos() / self.sample_size.max(1) as u128).max(1);
        let iters_per_sample = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u32;
        let deadline = Instant::now() + budget;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn stats(&self) -> Option<Stats> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        Some(Stats {
            mean: total / self.samples.len() as u32,
            min: *self.samples.iter().min().unwrap(),
            samples: self.samples.len(),
        })
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_records_samples() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(5).measurement_time(Duration::from_millis(50));
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("ingest", 100_000);
        assert_eq!(id.id, "ingest/100000");
    }
}
